//! Parser tests, including every syntactic fragment attested in the paper.

use excess_lang::ops::{OpAssoc, OperatorTable};
use excess_lang::*;

fn parse(src: &str) -> Stmt {
    parse_statement(src, &OperatorTable::new())
        .unwrap_or_else(|e| panic!("parse failed for {src:?}: {e}"))
}

fn parse_err(src: &str) -> ParseError {
    parse_statement(src, &OperatorTable::new())
        .err()
        .unwrap_or_else(|| panic!("expected parse error for {src:?}"))
}

/// Round-trip: print then re-parse must be identical.
fn round_trip(src: &str) -> Stmt {
    let ast = parse(src);
    let printed = ast.to_string();
    let again = parse_statement(&printed, &OperatorTable::new())
        .unwrap_or_else(|e| panic!("re-parse failed for printed {printed:?}: {e}"));
    assert_eq!(ast, again, "round-trip mismatch via {printed:?}");
    ast
}

// --- DDL: the paper's Figure 1 style definitions ---------------------------

#[test]
fn figure1_define_person() {
    let ast = round_trip(
        "define type Person \
         (name: varchar, ssnum: int4, birthday: Date, kids: { own ref Person })",
    );
    match ast {
        Stmt::DefineType {
            name,
            inherits,
            attrs,
        } => {
            assert_eq!(name, "Person");
            assert!(inherits.is_empty());
            assert_eq!(attrs.len(), 4);
            assert_eq!(attrs[0].qty.ty, TypeExpr::Named("varchar".into()));
            assert_eq!(attrs[0].qty.mode, Mode::Own, "own is the default");
            match &attrs[3].qty.ty {
                TypeExpr::Set(elem) => {
                    assert_eq!(elem.mode, Mode::OwnRef);
                    assert_eq!(elem.ty, TypeExpr::Named("Person".into()));
                }
                other => panic!("kids should be a set, got {other:?}"),
            }
        }
        other => panic!("expected DefineType, got {other:?}"),
    }
}

#[test]
fn define_type_with_inheritance_and_rename() {
    // Paper Figure 3: conflict resolution via renaming.
    let ast = round_trip(
        "define type TA inherits Student rename dept to enrolled_dept, \
         Employee rename dept to works_in_dept (hours: int4)",
    );
    match ast {
        Stmt::DefineType { inherits, .. } => {
            assert_eq!(inherits.len(), 2);
            assert_eq!(inherits[0].base, "Student");
            assert_eq!(
                inherits[0].renames,
                vec![("dept".into(), "enrolled_dept".into())]
            );
            assert_eq!(
                inherits[1].renames,
                vec![("dept".into(), "works_in_dept".into())]
            );
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn define_type_complex_constructors() {
    round_trip(
        "define type Lab (title: char(40), grade: enum(a, b, c), \
         readings: [10] float8, notes: [] varchar, \
         pos: (x: float8, y: float8))",
    );
}

#[test]
fn create_statements_paper_forms() {
    // "create {Employee} Employees", single objects, arrays.
    match round_trip("create { own ref Employee } Employees") {
        Stmt::Create { qty, name, .. } => {
            assert_eq!(name, "Employees");
            match qty.ty {
                TypeExpr::Set(e) => assert_eq!(e.mode, Mode::OwnRef),
                other => panic!("{other:?}"),
            }
        }
        other => panic!("{other:?}"),
    }
    round_trip("create Employee StarEmployee");
    match round_trip("create [10] ref Employee TopTen") {
        Stmt::Create { qty, .. } => {
            assert_eq!(
                qty.ty,
                TypeExpr::Array(
                    Some(10),
                    Box::new(QualTypeExpr {
                        mode: Mode::Ref,
                        ty: TypeExpr::Named("Employee".into())
                    })
                )
            );
        }
        other => panic!("{other:?}"),
    }
    round_trip("create Date Today");
    round_trip("destroy Employees");
    round_trip("drop type Employee");
}

#[test]
fn analyze_statement() {
    match round_trip("analyze Employees") {
        Stmt::Analyze { collection } => assert_eq!(collection, "Employees"),
        other => panic!("{other:?}"),
    }
    // `analyze` still works as the explain modifier it shadows.
    match round_trip("explain analyze retrieve (E.name)") {
        Stmt::Explain { analyze, .. } => assert!(analyze),
        other => panic!("{other:?}"),
    }
    parse_err("analyze");
}

// --- Range statements -------------------------------------------------------

#[test]
fn range_statements() {
    match round_trip("range of E is Employees") {
        Stmt::RangeOf {
            var,
            universal,
            path,
        } => {
            assert_eq!(var, "E");
            assert!(!universal);
            assert_eq!(path, Expr::var("Employees"));
        }
        other => panic!("{other:?}"),
    }
    // Paper: "range of C is Employees.kids".
    match round_trip("range of C is Employees.kids") {
        Stmt::RangeOf { path, .. } => {
            assert_eq!(path, Expr::path(Expr::var("Employees"), &["kids"]));
        }
        other => panic!("{other:?}"),
    }
    // Universal quantification.
    match round_trip("range of E is all Employees") {
        Stmt::RangeOf { universal, .. } => assert!(universal),
        other => panic!("{other:?}"),
    }
}

// --- Retrieve ----------------------------------------------------------------

#[test]
fn figure_direct_retrievals() {
    // retrieve (Today); retrieve (StarEmployee.name, StarEmployee.salary);
    // retrieve (TopTen[1].name, TopTen[1].salary).
    round_trip("retrieve (Today)");
    round_trip("retrieve (StarEmployee.name, StarEmployee.salary)");
    match round_trip("retrieve (TopTen[1].name, TopTen[1].salary)") {
        Stmt::Retrieve { targets, .. } => {
            assert_eq!(
                targets[0].expr,
                Expr::Path(
                    Box::new(Expr::Index(
                        Box::new(Expr::var("TopTen")),
                        Box::new(Expr::Lit(Lit::Int(1)))
                    )),
                    "name".into()
                )
            );
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn figure_nested_set_query() {
    // "retrieve (C.name) from C in Employees.kids
    //  where Employees.dept.floor = 2".
    let ast =
        round_trip("retrieve (C.name) from C in Employees.kids where Employees.dept.floor = 2");
    match ast {
        Stmt::Retrieve {
            targets,
            from,
            qual,
            ..
        } => {
            assert_eq!(targets.len(), 1);
            assert_eq!(from.len(), 1);
            assert_eq!(from[0].var, "C");
            assert_eq!(from[0].path, Expr::path(Expr::var("Employees"), &["kids"]));
            assert_eq!(
                qual.unwrap(),
                Expr::Binary(
                    BinOp::Eq,
                    Box::new(Expr::path(Expr::var("Employees"), &["dept", "floor"])),
                    Box::new(Expr::Lit(Lit::Int(2)))
                )
            );
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn retrieve_into_and_order_by() {
    round_trip("retrieve into Rich (E.name, pay = E.salary) where E.salary > 100000.0");
    match round_trip("retrieve (E.name) order by E.salary desc") {
        Stmt::Retrieve {
            order_by: Some((_, asc)),
            ..
        } => assert!(!asc),
        other => panic!("{other:?}"),
    }
}

#[test]
fn named_targets() {
    match parse("retrieve (total = E.salary + E.bonus)") {
        Stmt::Retrieve { targets, .. } => {
            assert_eq!(targets[0].name.as_deref(), Some("total"));
        }
        other => panic!("{other:?}"),
    }
}

// --- Expressions --------------------------------------------------------------

fn expr_of(src: &str) -> Expr {
    match parse(&format!("retrieve ({src})")) {
        Stmt::Retrieve { mut targets, .. } => targets.remove(0).expr,
        other => panic!("{other:?}"),
    }
}

#[test]
fn precedence_and_associativity() {
    assert_eq!(
        expr_of("1 + 2 * 3"),
        Expr::Binary(
            BinOp::Add,
            Box::new(Expr::Lit(Lit::Int(1))),
            Box::new(Expr::Binary(
                BinOp::Mul,
                Box::new(Expr::Lit(Lit::Int(2))),
                Box::new(Expr::Lit(Lit::Int(3)))
            ))
        )
    );
    // Left associativity: 1 - 2 - 3 = (1-2)-3.
    assert_eq!(
        expr_of("1 - 2 - 3"),
        Expr::Binary(
            BinOp::Sub,
            Box::new(Expr::Binary(
                BinOp::Sub,
                Box::new(Expr::Lit(Lit::Int(1))),
                Box::new(Expr::Lit(Lit::Int(2)))
            )),
            Box::new(Expr::Lit(Lit::Int(3)))
        )
    );
    // and binds tighter than or; not tighter than and.
    assert_eq!(
        expr_of("a or b and not c"),
        Expr::Binary(
            BinOp::Or,
            Box::new(Expr::var("a")),
            Box::new(Expr::Binary(
                BinOp::And,
                Box::new(Expr::var("b")),
                Box::new(Expr::Unary(UnOp::Not, Box::new(Expr::var("c"))))
            ))
        )
    );
}

#[test]
fn is_isnot_in_contains() {
    assert_eq!(
        expr_of("E.dept is D"),
        Expr::Binary(
            BinOp::Is,
            Box::new(Expr::path(Expr::var("E"), &["dept"])),
            Box::new(Expr::var("D"))
        )
    );
    expr_of("E.dept isnot D");
    expr_of("C in E.kids");
    expr_of("E.kids contains C");
    // Set operators bind tighter than comparisons:
    // `a in s union t` = `a in (s union t)`.
    assert_eq!(
        expr_of("a in s union t"),
        Expr::Binary(
            BinOp::In,
            Box::new(Expr::var("a")),
            Box::new(Expr::Binary(
                BinOp::Union,
                Box::new(Expr::var("s")),
                Box::new(Expr::var("t"))
            ))
        )
    );
}

#[test]
fn calls_both_syntaxes() {
    // Paper §4.1: "CnumPair.val1.Add(CnumPair.val2)" and
    // "Add(CnumPair.val1, CnumPair.val2)".
    let method = expr_of("CnumPair.val1.Add(CnumPair.val2)");
    match method {
        Expr::Call {
            recv: Some(r),
            name,
            args,
        } => {
            assert_eq!(*r, Expr::path(Expr::var("CnumPair"), &["val1"]));
            assert_eq!(name, "Add");
            assert_eq!(args.len(), 1);
        }
        other => panic!("{other:?}"),
    }
    let sym = expr_of("Add(CnumPair.val1, CnumPair.val2)");
    match sym {
        Expr::Call {
            recv: None,
            name,
            args,
        } => {
            assert_eq!(name, "Add");
            assert_eq!(args.len(), 2);
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn aggregates_with_over_by_where() {
    match expr_of("avg(E.salary over E by E.dept.dname where E.age > 30)") {
        Expr::Agg(a) => {
            assert_eq!(a.func, "avg");
            assert_eq!(a.over, vec!["E".to_string()]);
            assert_eq!(a.by.len(), 1);
            assert!(a.qual.is_some());
        }
        other => panic!("{other:?}"),
    }
    expr_of("count(E over E)");
    expr_of("sum(C.age over C, E)");
    match expr_of("unique(E.dept.dname over E)") {
        Expr::Agg(a) => assert_eq!(a.func, "unique"),
        other => panic!("{other:?}"),
    }
    // User-defined set function with aggregate syntax.
    match expr_of("median(E.salary over E)") {
        Expr::Agg(a) => assert_eq!(a.func, "median"),
        other => panic!("{other:?}"),
    }
    // Plain call stays a call.
    match expr_of("median(E.salary)") {
        Expr::Call { name, .. } => assert_eq!(name, "median"),
        other => panic!("{other:?}"),
    }
}

#[test]
fn set_literals_and_indexing() {
    expr_of("{1, 2, 3}");
    expr_of("E.readings[2] + E.readings[3]");
    expr_of("{\"a\", \"b\"} union {\"c\"}");
}

// --- Updates -------------------------------------------------------------------

#[test]
fn append_forms() {
    match round_trip("append to Employees (name = \"ann\", age = 30)") {
        Stmt::Append {
            value: AppendValue::Assignments(a),
            ..
        } => assert_eq!(a.len(), 2),
        other => panic!("{other:?}"),
    }
    // Whole-value append; `to` optional.
    match parse("append Employees E2") {
        Stmt::Append {
            value: AppendValue::Expr(e),
            ..
        } => assert_eq!(e, Expr::var("E2")),
        other => panic!("{other:?}"),
    }
    round_trip("append to E.kids (name = \"junior\", age = 1)");
}

#[test]
fn delete_replace_execute() {
    round_trip("delete E where E.age > 99");
    round_trip("replace E (salary = E.salary * 1.1) where E.dept.floor = 2");
    match round_trip("execute GiveRaise(1000.0, D.dname) where D.floor = 2") {
        Stmt::Execute { proc, args, qual } => {
            assert_eq!(proc, "GiveRaise");
            assert_eq!(args.len(), 2);
            assert!(qual.is_some());
        }
        other => panic!("{other:?}"),
    }
}

// --- Functions, procedures, authorization ---------------------------------------

#[test]
fn define_function() {
    let ast = round_trip(
        "define function earns (e: Employee) returns float8 \
         as retrieve (e.salary * 2.0)",
    );
    match ast {
        Stmt::DefineFunction { name, params, .. } => {
            assert_eq!(name, "earns");
            assert_eq!(params.len(), 1);
            assert_eq!(params[0].qty.ty, TypeExpr::Named("Employee".into()));
        }
        other => panic!("{other:?}"),
    }
    round_trip(
        "define function KidsOf (e: Employee) returns { ref Person } \
         as retrieve (C) from C in e.kids",
    );
}

#[test]
fn define_procedure_multi_statement() {
    let ast = round_trip(
        "define procedure Raise (amount: float8) as \
         replace E (salary = E.salary + amount); \
         append to Log (note = \"raised\") end",
    );
    match ast {
        Stmt::DefineProcedure { body, .. } => assert_eq!(body.len(), 2),
        other => panic!("{other:?}"),
    }
    round_trip("drop procedure Raise");
    round_trip("drop function earns");
}

#[test]
fn authorization_statements() {
    match round_trip("grant read, append on Employees to alice, staff") {
        Stmt::Grant {
            privileges,
            object,
            grantees,
        } => {
            assert_eq!(privileges, vec![Privilege::Read, Privilege::Append]);
            assert_eq!(object, "Employees");
            assert_eq!(grantees, vec!["alice".to_string(), "staff".to_string()]);
        }
        other => panic!("{other:?}"),
    }
    round_trip("revoke all on Employees from bob");
    round_trip("create user alice");
    round_trip("create group staff");
    round_trip("add user alice to group staff");
    round_trip("grant execute on earns to all_users");
}

#[test]
fn define_index() {
    round_trip("define index emp_name on Employees (name)");
}

// --- Registered operators ----------------------------------------------------------

#[test]
fn registered_operator_parses_with_precedence() {
    let mut ops = OperatorTable::new();
    ops.register("&&&", 3, OpAssoc::Left, false);
    let stmt = parse_statement("retrieve (a &&& b + c)", &ops).unwrap();
    match stmt {
        Stmt::Retrieve { targets, .. } => {
            // Level 3 → binds like a comparison, so + (40) binds tighter.
            assert_eq!(
                targets[0].expr,
                Expr::UserOp(
                    "&&&".into(),
                    vec![
                        Expr::var("a"),
                        Expr::Binary(
                            BinOp::Add,
                            Box::new(Expr::var("b")),
                            Box::new(Expr::var("c"))
                        ),
                    ]
                )
            );
        }
        other => panic!("{other:?}"),
    }
}

// --- Programs and errors --------------------------------------------------------------

#[test]
fn program_with_multiple_statements() {
    let prog = parse_program(
        "range of E is Employees; \
         retrieve (E.name) where E.age > 30; \
         delete E where E.age > 99",
        &OperatorTable::new(),
    )
    .unwrap();
    assert_eq!(prog.len(), 3);
}

#[test]
fn error_reporting() {
    let e = parse_err("retrieve E.name");
    assert!(e.message.contains("expected '('"), "{e}");
    let e = parse_err("define type (x: int4)");
    assert!(e.message.contains("identifier"), "{e}");
    let e = parse_err("retrieve (1 +)");
    assert!(e.message.contains("expression"), "{e}");
    parse_err("range of E Employees");
    parse_err("create [0] int4 Zeroes");
    parse_err("grant fly on X to y");
}
