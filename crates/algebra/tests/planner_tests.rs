//! Physical-planner tests: access-path selection, predicate pushdown, and
//! join ordering over a mock catalog.

use std::collections::HashMap;

use excess_algebra::{plan_retrieve, Physical, PlannerConfig};
use excess_lang::{parse_statement, OperatorTable, Stmt};
use excess_sema::resolve::Resolver;
use excess_sema::{
    CatalogLookup, FunctionDef, IndexInfo, NamedObject, ProcedureDef, RangeEnv, SemaCtx,
};
use exodus_storage::Oid;
use extra_model::{AdtRegistry, Attribute, QualType, Type, TypeRegistry};

struct MockCatalog {
    named: HashMap<String, NamedObject>,
    sizes: HashMap<String, u64>,
    indexes: Vec<IndexInfo>,
}

impl CatalogLookup for MockCatalog {
    fn named(&self, name: &str) -> Option<NamedObject> {
        self.named.get(name).cloned()
    }
    fn functions_named(&self, _name: &str) -> Vec<FunctionDef> {
        Vec::new()
    }
    fn procedure(&self, _name: &str) -> Option<ProcedureDef> {
        None
    }
    fn index_on(&self, collection: &str, attr: &str) -> Option<IndexInfo> {
        self.indexes
            .iter()
            .find(|i| i.collection == collection && i.attr == attr)
            .cloned()
    }
    fn collection_size(&self, name: &str) -> Option<u64> {
        self.sizes.get(name).copied()
    }
}

struct Fixture {
    types: TypeRegistry,
    adts: AdtRegistry,
    catalog: MockCatalog,
}

fn fixture() -> Fixture {
    let mut types = TypeRegistry::new();
    let adts = AdtRegistry::with_builtins();
    let dept = types
        .define(
            "Department",
            vec![],
            vec![
                Attribute::own("dname", Type::varchar()),
                Attribute::own("floor", Type::int4()),
            ],
        )
        .unwrap();
    let emp = types
        .define(
            "Employee",
            vec![],
            vec![
                Attribute::own("name", Type::varchar()),
                Attribute::own("salary", Type::float8()),
                Attribute::reference("dept", Type::Schema(dept)),
            ],
        )
        .unwrap();
    let coll = |name: &str, oid, tid| NamedObject {
        name: name.into(),
        oid: Oid(oid),
        qty: QualType::own(Type::Set(Box::new(QualType::own_ref(Type::Schema(tid))))),
        is_collection: true,
    };
    let mut named = HashMap::new();
    named.insert("Employees".into(), coll("Employees", 1, emp));
    named.insert("Departments".into(), coll("Departments", 2, dept));
    let mut sizes = HashMap::new();
    sizes.insert("Employees".into(), 100_000);
    sizes.insert("Departments".into(), 50);
    let indexes = vec![IndexInfo {
        name: "emp_salary".into(),
        collection: "Employees".into(),
        attr: "salary".into(),
        root: 99,
        unique: false,
    }];
    Fixture {
        types,
        adts,
        catalog: MockCatalog {
            named,
            sizes,
            indexes,
        },
    }
}

fn plan_with(f: &Fixture, src: &str, cfg: PlannerConfig) -> Physical {
    let ctx = SemaCtx::new(&f.types, &f.adts, &f.catalog);
    let env = RangeEnv::default();
    let stmt = parse_statement(src, &OperatorTable::new()).unwrap();
    let checked = Resolver::new(&ctx, &env).check_retrieve(&stmt).unwrap();
    plan_retrieve(&stmt, &checked, &ctx, cfg).unwrap()
}

fn plan(f: &Fixture, src: &str) -> Physical {
    plan_with(f, src, PlannerConfig::default())
}

fn render(p: &Physical) -> String {
    p.to_string()
}

#[test]
fn index_selected_for_equality_on_indexed_attr() {
    let f = fixture();
    let p = plan(
        &f,
        "retrieve (E.name) from E in Employees where E.salary = 50000.0",
    );
    let s = render(&p);
    assert!(s.contains("IndexScan"), "{s}");
    assert!(
        !s.contains("Filter"),
        "equality fully covered by the index:\n{s}"
    );
}

#[test]
fn index_selected_for_range_predicates() {
    let f = fixture();
    for op in ["<", "<=", ">", ">="] {
        let p = plan(
            &f,
            &format!("retrieve (E.name) from E in Employees where E.salary {op} 50000.0"),
        );
        assert!(render(&p).contains("IndexScan"), "op {op}: {}", render(&p));
    }
}

#[test]
fn no_index_without_matching_attr_or_flag() {
    let f = fixture();
    let p = plan(
        &f,
        "retrieve (E.name) from E in Employees where E.name = \"x\"",
    );
    assert!(render(&p).contains("SeqScan"), "{}", render(&p));
    let p = plan_with(
        &f,
        "retrieve (E.name) from E in Employees where E.salary = 1.0",
        PlannerConfig {
            use_indexes: false,
            ..Default::default()
        },
    );
    assert!(render(&p).contains("SeqScan"), "{}", render(&p));
}

#[test]
fn non_constant_predicates_do_not_use_index() {
    let f = fixture();
    let p = plan(
        &f,
        "retrieve (E.name) from E in Employees, E2 in Employees \
         where E.salary = E2.salary",
    );
    assert!(!render(&p).contains("IndexScan"), "{}", render(&p));
}

#[test]
fn pushdown_places_single_var_filters_below_join() {
    let f = fixture();
    let p = plan(
        &f,
        "retrieve (E.name, D.dname) from E in Employees, D in Departments \
         where E.name = \"x\" and D.floor = 2 and E.dept is D",
    );
    let s = render(&p);
    // Each single-variable conjunct sits directly on its scan; only the
    // join conjunct gates the nested loop.
    let nl = s.find("NestedLoop").expect("a join");
    let e_filter = s.find("Filter (E.name").expect("E filter");
    let d_filter = s.find("Filter (D.floor").expect("D filter");
    let join_filter = s.find("Filter (E.dept is D)").expect("join filter");
    assert!(join_filter < nl, "join predicate above the loop:\n{s}");
    assert!(
        e_filter > nl && d_filter > nl,
        "single-var filters pushed below:\n{s}"
    );
}

#[test]
fn pushdown_disabled_leaves_one_filter_on_top() {
    let f = fixture();
    let p = plan_with(
        &f,
        "retrieve (E.name, D.dname) from E in Employees, D in Departments \
         where E.name = \"x\" and D.floor = 2",
        PlannerConfig::naive(),
    );
    let s = render(&p);
    assert_eq!(s.matches("Filter").count(), 1, "one combined filter:\n{s}");
    let nl = s.find("NestedLoop").unwrap();
    assert!(
        s.find("Filter").unwrap() < nl,
        "filter above the join:\n{s}"
    );
}

#[test]
fn join_order_puts_small_collection_outer() {
    let f = fixture();
    let p = plan(
        &f,
        "retrieve (E.name, D.dname) from E in Employees, D in Departments \
         where E.dept is D",
    );
    let s = render(&p);
    // Departments (50) must be scanned on the outer side, Employees
    // (100k) inner.
    let d_pos = s.find("over Departments").unwrap();
    let e_pos = s.find("over Employees").unwrap();
    assert!(d_pos < e_pos, "small outer first:\n{s}");
    // Without reordering, declaration order (E first) wins.
    let p = plan_with(
        &f,
        "retrieve (E.name, D.dname) from E in Employees, D in Departments \
         where E.dept is D",
        PlannerConfig {
            reorder_joins: false,
            ..Default::default()
        },
    );
    let s = render(&p);
    let d_pos = s.find("over Departments").unwrap();
    let e_pos = s.find("over Employees").unwrap();
    assert!(e_pos < d_pos, "declaration order preserved:\n{s}");
}

#[test]
fn selective_filter_shrinks_estimated_outer() {
    let f = fixture();
    // With an equality filter on Employees, its estimated cardinality
    // (100k × 0.05 = 5k... still > 50) keeps Departments outer; with an
    // indexed equality the index scan estimate (5k) also stays inner.
    // Sanity: the plan still contains both scans and one loop.
    let p = plan(
        &f,
        "retrieve (E.name, D.dname) from E in Employees, D in Departments \
         where E.salary = 1.0 and E.dept is D",
    );
    let s = render(&p);
    assert_eq!(s.matches("NestedLoop").count(), 1, "{s}");
    assert!(s.contains("IndexScan"), "{s}");
}

#[test]
fn universal_bindings_become_universal_filter() {
    let f = fixture();
    let ctx = SemaCtx::new(&f.types, &f.adts, &f.catalog);
    let mut env = RangeEnv::default();
    let range = parse_statement("range of X is all Employees", &OperatorTable::new()).unwrap();
    match range {
        Stmt::RangeOf {
            var,
            universal,
            path,
        } => env.declare(&var, universal, path),
        _ => unreachable!(),
    }
    let stmt = parse_statement(
        "retrieve (D.dname) from D in Departments where X.salary < D.floor",
        &OperatorTable::new(),
    )
    .unwrap();
    let checked = Resolver::new(&ctx, &env).check_retrieve(&stmt).unwrap();
    let p = plan_retrieve(&stmt, &checked, &ctx, PlannerConfig::default()).unwrap();
    let s = render(&p);
    assert!(s.contains("UniversalFilter forall X"), "{s}");
}

#[test]
fn adt_literal_bounds_compile_into_index_scan() {
    let mut f = fixture();
    // Add a Date attribute + index.
    let date = Type::Adt(f.adts.lookup("Date").unwrap());
    let hired = f
        .types
        .define(
            "Hire",
            vec![],
            vec![
                Attribute::own("who", Type::varchar()),
                Attribute::own("day", date),
            ],
        )
        .unwrap();
    f.catalog.named.insert(
        "Hires".into(),
        NamedObject {
            name: "Hires".into(),
            oid: Oid(7),
            qty: QualType::own(Type::Set(Box::new(QualType::own(Type::Schema(hired))))),
            is_collection: true,
        },
    );
    f.catalog.indexes.push(IndexInfo {
        name: "hire_day".into(),
        collection: "Hires".into(),
        attr: "day".into(),
        root: 123,
        unique: false,
    });
    let p = plan(
        &f,
        "retrieve (H.who) from H in Hires where H.day < Date(\"1/1/1980\")",
    );
    assert!(render(&p).contains("IndexScan"), "{}", render(&p));
    // Complex is unordered → key_encode fails → no index even if present.
    // (applicability table consulted.)
}

#[test]
fn constant_query_plans_to_unit() {
    let f = fixture();
    let p = plan(&f, "retrieve (1 + 2)");
    let s = render(&p);
    assert!(s.contains("Unit"), "{s}");
    assert!(!s.contains("Scan"), "{s}");
}
