//! # excess-algebra
//!
//! The EXCESS query algebra, rule-based rewriter, and cost-based physical
//! planner.
//!
//! The paper defers the algebra design to future work but fixes its
//! requirements (§4.1, §6): a rule-based optimizer in the style of the
//! EXODUS optimizer generator \[Grae87\], with *table-driven* lookup of
//! access-method applicability for ADTs (so ADTs can be added
//! dynamically), and functions/operators treated uniformly. This crate
//! implements to those requirements:
//!
//! * [`plan`] — logical and physical operator trees, with `EXPLAIN`
//!   rendering;
//! * [`builder`] — translation of a checked `retrieve` into the logical
//!   algebra (range bindings become scans/unnests; universal bindings
//!   become a universal selection);
//! * [`rules`] — rewrite rules: conjunct splitting and predicate pushdown;
//! * [`cost`] — cardinality/cost estimation from catalog statistics and
//!   `analyze` histograms;
//! * [`join`] — statistics-gated batch-join rewrites (hash / index
//!   joins for explicit equi joins and implicit path dereferences);
//! * [`physical`] — access-path selection (sequential vs B+-tree index
//!   scan, consulting the ADT applicability table for ADT-typed keys),
//!   greedy join ordering by estimated cardinality, and final plan
//!   assembly.

#![deny(rustdoc::broken_intra_doc_links)]
pub mod builder;
pub mod cost;
pub mod join;
pub mod physical;
pub mod plan;
pub mod rules;

pub use builder::build_logical;
pub use physical::{optimize, plan_retrieve, plan_retrieve_dop, PlannerConfig};
pub use plan::{Logical, Physical};
