//! Translating a checked `retrieve` into the logical algebra.

use excess_lang::{Expr, Stmt};
use excess_sema::{CheckedRetrieve, ResolvedRange, SemaError, SemaResult};

use crate::plan::Logical;
use crate::rules::{conjuncts, free_vars};

/// Build the canonical (unoptimized) logical plan for a retrieve:
/// all ranges stacked in dependency order, one big selection, universal
/// selection, sort, projection.
pub fn build_logical(stmt: &Stmt, checked: &CheckedRetrieve) -> SemaResult<Logical> {
    let Stmt::Retrieve {
        targets,
        qual,
        order_by,
        ..
    } = stmt
    else {
        return Err(SemaError::Other("build_logical expects a retrieve".into()));
    };

    let (universal, existential): (Vec<ResolvedRange>, Vec<ResolvedRange>) =
        checked.bindings.iter().cloned().partition(|b| b.universal);
    let universal_vars: Vec<String> = universal.iter().map(|b| b.var.clone()).collect();

    let mut plan = Logical::Unit;
    for b in existential {
        plan = Logical::Range {
            input: Box::new(plan),
            binding: b,
        };
    }

    // Split the qualification: conjuncts touching universal variables
    // belong to the universal selection.
    let mut existential_pred: Option<Expr> = None;
    let mut universal_pred: Option<Expr> = None;
    if let Some(q) = qual {
        for c in conjuncts(q) {
            let vars = free_vars(&c);
            let is_universal = vars.iter().any(|v| universal_vars.contains(v));
            let slot = if is_universal {
                &mut universal_pred
            } else {
                &mut existential_pred
            };
            *slot = Some(match slot.take() {
                None => c,
                Some(prev) => Expr::Binary(excess_lang::BinOp::And, Box::new(prev), Box::new(c)),
            });
        }
    }
    if let Some(p) = existential_pred {
        plan = Logical::Select {
            input: Box::new(plan),
            pred: p,
        };
    }
    match (universal.is_empty(), universal_pred) {
        (true, None) => {}
        (false, Some(p)) => {
            plan = Logical::UniversalSelect {
                input: Box::new(plan),
                bindings: universal,
                pred: p,
            };
        }
        (false, None) => {
            // A universal range with no constraining predicate is vacuous.
        }
        (true, Some(_)) => unreachable!("universal conjuncts need universal bindings"),
    }

    if let Some((key, asc)) = order_by {
        plan = Logical::Sort {
            input: Box::new(plan),
            key: key.clone(),
            asc: *asc,
        };
    }

    let named: Vec<(String, Expr)> = checked
        .output
        .iter()
        .zip(targets.iter())
        .map(|((name, _), t)| (name.clone(), t.expr.clone()))
        .collect();
    Ok(Logical::Project {
        input: Box::new(plan),
        targets: named,
    })
}
