//! Cardinality and cost estimation.
//!
//! Deliberately simple, System R-flavored: collection sizes come from the
//! catalog, predicate selectivities from fixed factors, set fan-out from a
//! default. The estimates only need to rank alternatives consistently
//! (scan vs index, join orders); the benchmark suite (experiment E8)
//! checks the rankings, not the absolute numbers.

use excess_lang::{BinOp, Expr};
use excess_sema::{CatalogLookup, ResolvedRange, RootSource};

use crate::plan::Physical;
use crate::rules::conjuncts;

/// Default members per nested set when no statistics exist.
pub const DEFAULT_FANOUT: f64 = 4.0;
/// Default collection size when the catalog has no count.
pub const DEFAULT_SIZE: f64 = 1000.0;
/// Selectivity of an equality predicate.
pub const SEL_EQ: f64 = 0.05;
/// Selectivity of a range predicate.
pub const SEL_RANGE: f64 = 0.33;
/// Selectivity of any other predicate.
pub const SEL_OTHER: f64 = 0.5;

/// Estimated selectivity of a predicate.
pub fn selectivity(pred: &Expr) -> f64 {
    conjuncts(pred)
        .iter()
        .map(|c| match c {
            Expr::Binary(BinOp::Eq | BinOp::Is, _, _) => SEL_EQ,
            Expr::Binary(BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge, _, _) => SEL_RANGE,
            _ => SEL_OTHER,
        })
        .product()
}

/// Estimated members produced by iterating a binding once.
pub fn binding_cardinality(b: &ResolvedRange, catalog: &dyn CatalogLookup) -> f64 {
    match &b.root {
        RootSource::Collection(obj) => {
            let base = catalog.collection_size(&obj.name).map(|n| n as f64).unwrap_or(DEFAULT_SIZE);
            // Steps beyond the collection unnest one nested set.
            if b.steps.is_empty() {
                base
            } else {
                base * DEFAULT_FANOUT
            }
        }
        RootSource::Object(_) => {
            if b.steps.is_empty() {
                1.0
            } else {
                DEFAULT_FANOUT
            }
        }
        RootSource::Var(_) => DEFAULT_FANOUT,
    }
}

/// Estimated output cardinality of a physical plan.
pub fn cardinality(plan: &Physical, catalog: &dyn CatalogLookup) -> f64 {
    match plan {
        Physical::Unit => 1.0,
        Physical::SeqScan { binding } => binding_cardinality(binding, catalog),
        Physical::IndexScan { binding, lower, upper, .. } => {
            let base = binding_cardinality(binding, catalog);
            let sel = match (lower, upper) {
                (std::ops::Bound::Included(a), std::ops::Bound::Included(b)) if a == b => SEL_EQ,
                (std::ops::Bound::Unbounded, _) | (_, std::ops::Bound::Unbounded) => SEL_RANGE,
                _ => SEL_RANGE,
            };
            (base * sel).max(1.0)
        }
        Physical::Unnest { input, binding } => {
            cardinality(input, catalog) * binding_cardinality(binding, catalog)
        }
        Physical::NestedLoop { outer, inner } => {
            cardinality(outer, catalog) * cardinality(inner, catalog)
        }
        Physical::Filter { input, pred } => {
            (cardinality(input, catalog) * selectivity(pred)).max(1.0)
        }
        Physical::UniversalFilter { input, .. } => {
            (cardinality(input, catalog) * SEL_OTHER).max(1.0)
        }
        Physical::Project { input, .. } | Physical::Sort { input, .. } => {
            cardinality(input, catalog)
        }
    }
}

/// Estimated cost (abstract units ≈ member visits).
pub fn cost(plan: &Physical, catalog: &dyn CatalogLookup) -> f64 {
    match plan {
        Physical::Unit => 0.0,
        Physical::SeqScan { binding } => binding_cardinality(binding, catalog),
        Physical::IndexScan { binding, .. } => {
            let n = binding_cardinality(binding, catalog).max(2.0);
            n.log2() + cardinality(plan, catalog)
        }
        Physical::Unnest { input, binding } => {
            cost(input, catalog)
                + cardinality(input, catalog) * binding_cardinality(binding, catalog)
        }
        Physical::NestedLoop { outer, inner } => {
            cost(outer, catalog) + cardinality(outer, catalog) * cost(inner, catalog)
        }
        Physical::Filter { input, .. } => cost(input, catalog) + cardinality(input, catalog),
        Physical::UniversalFilter { input, bindings, .. } => {
            let universe: f64 =
                bindings.iter().map(|b| binding_cardinality(b, catalog)).product();
            cost(input, catalog) + cardinality(input, catalog) * universe
        }
        Physical::Project { input, .. } => cost(input, catalog) + cardinality(input, catalog),
        Physical::Sort { input, .. } => {
            let n = cardinality(input, catalog).max(2.0);
            cost(input, catalog) + n * n.log2()
        }
    }
}
