//! Cardinality and cost estimation.
//!
//! Deliberately simple, System R-flavored: collection sizes come from the
//! catalog, predicate selectivities from fixed factors, set fan-out from a
//! default. The estimates only need to rank alternatives consistently
//! (scan vs index, join orders); the benchmark suite (experiment E8)
//! checks the rankings, not the absolute numbers.
//!
//! The executor is batched (see `excess-exec`): operators exchange
//! [`BATCH_ROWS`]-row column batches, so an operator's cost has a
//! dominant per-row term plus a small per-batch dispatch term
//! ([`batch_overhead`]). The per-batch term is kept small and monotone
//! in cardinality so it refines absolute estimates without flipping any
//! ranking the per-row terms establish.

use excess_lang::{BinOp, Expr};
use excess_sema::{CatalogLookup, ResolvedRange, RootSource};

use crate::plan::Physical;
use crate::rules::conjuncts;

/// Default members per nested set when no statistics exist.
pub const DEFAULT_FANOUT: f64 = 4.0;
/// Default collection size when the catalog has no count.
pub const DEFAULT_SIZE: f64 = 1000.0;
/// Selectivity of an equality predicate.
pub const SEL_EQ: f64 = 0.05;
/// Selectivity of a range predicate.
pub const SEL_RANGE: f64 = 0.33;
/// Selectivity of any other predicate.
pub const SEL_OTHER: f64 = 0.5;
/// Rows per execution batch assumed by the cost model (mirrors the
/// executor's default batch size).
pub const BATCH_ROWS: f64 = 1024.0;
/// Fixed cost of pushing one batch through an operator (cursor dispatch,
/// column bookkeeping) — small relative to one row's worth of work.
pub const COST_PER_BATCH: f64 = 0.1;

/// Amortized per-batch dispatch overhead for a stream of `rows` rows: at
/// least one batch, then one more per [`BATCH_ROWS`] rows.
pub fn batch_overhead(rows: f64) -> f64 {
    (rows / BATCH_ROWS).ceil().max(1.0) * COST_PER_BATCH
}

/// Minimum estimated rows at the leftmost scan before the planner
/// considers fanning a pipeline out to worker threads. Mirrored by the
/// executor's runtime gate, since aggregate `over` sub-plans bypass the
/// planner.
pub const PARALLEL_MIN_ROWS: f64 = 4096.0;
/// Per-worker startup/teardown charge (thread spawn, per-worker context,
/// partition bookkeeping) in row-cost units.
pub const PARALLEL_STARTUP_COST: f64 = 256.0;
/// Per-row cost of merging worker output back into the serial tail in
/// deterministic order.
pub const PARALLEL_MERGE_COST: f64 = 0.01;

/// Cost of running a pipeline of serial cost `input_cost` under a
/// parallel exchange at degree `dop`: the pipeline work divides across
/// workers, while startup scales with `dop` and the ordered merge scales
/// with the output rows. At `dop = 1` this degenerates to the serial
/// cost plus startup, so the planner never prefers a one-worker exchange.
pub fn parallel_cost(input_cost: f64, out_rows: f64, dop: usize) -> f64 {
    let d = dop.max(1) as f64;
    input_cost / d
        + d * PARALLEL_STARTUP_COST
        + out_rows * PARALLEL_MERGE_COST
        + batch_overhead(out_rows)
}

/// Estimated selectivity of a predicate.
pub fn selectivity(pred: &Expr) -> f64 {
    conjuncts(pred)
        .iter()
        .map(|c| match c {
            Expr::Binary(BinOp::Eq | BinOp::Is, _, _) => SEL_EQ,
            Expr::Binary(BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge, _, _) => SEL_RANGE,
            _ => SEL_OTHER,
        })
        .product()
}

/// Estimated members produced by iterating a binding once.
pub fn binding_cardinality(b: &ResolvedRange, catalog: &dyn CatalogLookup) -> f64 {
    match &b.root {
        RootSource::Collection(obj) => {
            let base = catalog
                .collection_size(&obj.name)
                .map(|n| n as f64)
                .unwrap_or(DEFAULT_SIZE);
            // Steps beyond the collection unnest one nested set.
            if b.steps.is_empty() {
                base
            } else {
                base * DEFAULT_FANOUT
            }
        }
        RootSource::Object(_) => {
            if b.steps.is_empty() {
                1.0
            } else {
                DEFAULT_FANOUT
            }
        }
        RootSource::Var(_) => DEFAULT_FANOUT,
    }
}

/// Estimated output cardinality of a physical plan.
pub fn cardinality(plan: &Physical, catalog: &dyn CatalogLookup) -> f64 {
    match plan {
        Physical::Unit => 1.0,
        Physical::SeqScan { binding } => binding_cardinality(binding, catalog),
        Physical::IndexScan {
            binding,
            lower,
            upper,
            ..
        } => {
            let base = binding_cardinality(binding, catalog);
            let sel = match (lower, upper) {
                (std::ops::Bound::Included(a), std::ops::Bound::Included(b)) if a == b => SEL_EQ,
                (std::ops::Bound::Unbounded, _) | (_, std::ops::Bound::Unbounded) => SEL_RANGE,
                _ => SEL_RANGE,
            };
            (base * sel).max(1.0)
        }
        Physical::Unnest { input, binding } => {
            cardinality(input, catalog) * binding_cardinality(binding, catalog)
        }
        Physical::NestedLoop { outer, inner } => {
            cardinality(outer, catalog) * cardinality(inner, catalog)
        }
        Physical::Filter { input, pred } => {
            (cardinality(input, catalog) * selectivity(pred)).max(1.0)
        }
        Physical::UniversalFilter { input, .. } => {
            (cardinality(input, catalog) * SEL_OTHER).max(1.0)
        }
        Physical::Project { input, .. }
        | Physical::Sort { input, .. }
        | Physical::Parallel { input, .. } => cardinality(input, catalog),
    }
}

/// Pre-order `(label, estimated rows)` annotations for every node of a
/// physical plan, in the same order the executor's profiler indexes its
/// compiled tree: node first, then children — `NestedLoop` outer before
/// inner, `UniversalFilter` descending only into its input (the
/// universal bindings have no cursor of their own). Used to pair
/// estimated-vs-actual rows in `EXPLAIN ANALYZE` output.
pub fn annotate_preorder(plan: &Physical, catalog: &dyn CatalogLookup) -> Vec<(String, f64)> {
    fn walk(node: &Physical, catalog: &dyn CatalogLookup, out: &mut Vec<(String, f64)>) {
        out.push((node.label(), cardinality(node, catalog)));
        match node {
            Physical::Unit | Physical::SeqScan { .. } | Physical::IndexScan { .. } => {}
            Physical::NestedLoop { outer, inner } => {
                walk(outer, catalog, out);
                walk(inner, catalog, out);
            }
            Physical::Unnest { input, .. }
            | Physical::Filter { input, .. }
            | Physical::UniversalFilter { input, .. }
            | Physical::Project { input, .. }
            | Physical::Sort { input, .. }
            | Physical::Parallel { input, .. } => walk(input, catalog, out),
        }
    }
    let mut out = Vec::new();
    walk(plan, catalog, &mut out);
    out
}

/// Estimated cost (abstract units ≈ member visits). Each operator pays
/// its per-row work plus [`batch_overhead`] for the batches it emits.
pub fn cost(plan: &Physical, catalog: &dyn CatalogLookup) -> f64 {
    match plan {
        Physical::Unit => 0.0,
        Physical::SeqScan { binding } => {
            let n = binding_cardinality(binding, catalog);
            n + batch_overhead(n)
        }
        Physical::IndexScan { binding, .. } => {
            let n = binding_cardinality(binding, catalog).max(2.0);
            let out = cardinality(plan, catalog);
            n.log2() + out + batch_overhead(out)
        }
        Physical::Unnest { input, binding } => {
            let out = cardinality(input, catalog) * binding_cardinality(binding, catalog);
            cost(input, catalog) + out + batch_overhead(out)
        }
        Physical::NestedLoop { outer, inner } => {
            let out = cardinality(plan, catalog);
            cost(outer, catalog)
                + cardinality(outer, catalog) * cost(inner, catalog)
                + batch_overhead(out)
        }
        Physical::Filter { input, .. } => {
            let n = cardinality(input, catalog);
            cost(input, catalog) + n + batch_overhead(n)
        }
        Physical::UniversalFilter {
            input, bindings, ..
        } => {
            let universe: f64 = bindings
                .iter()
                .map(|b| binding_cardinality(b, catalog))
                .product();
            let n = cardinality(input, catalog);
            cost(input, catalog) + n * universe + batch_overhead(n)
        }
        Physical::Project { input, .. } => {
            let n = cardinality(input, catalog);
            cost(input, catalog) + n + batch_overhead(n)
        }
        Physical::Sort { input, .. } => {
            let n = cardinality(input, catalog).max(2.0);
            cost(input, catalog) + n * n.log2() + batch_overhead(n)
        }
        Physical::Parallel { input, dop } => {
            parallel_cost(cost(input, catalog), cardinality(input, catalog), *dop)
        }
    }
}
