//! Cardinality and cost estimation.
//!
//! Deliberately simple, System R-flavored: collection sizes come from the
//! catalog, predicate selectivities from fixed factors, set fan-out from a
//! default. The estimates only need to rank alternatives consistently
//! (scan vs index, join orders); the benchmark suite (experiment E8)
//! checks the rankings, not the absolute numbers.
//!
//! The executor is batched (see `excess-exec`): operators exchange
//! [`BATCH_ROWS`]-row column batches, so an operator's cost has a
//! dominant per-row term plus a small per-batch dispatch term
//! ([`batch_overhead`]). The per-batch term is kept small and monotone
//! in cardinality so it refines absolute estimates without flipping any
//! ranking the per-row terms establish.

use std::collections::HashMap;

use excess_lang::{BinOp, Expr, Lit, UnOp};
use excess_sema::{AttrStats, CatalogLookup, ResolvedRange, RootSource, StatOp};
use extra_model::Value;

use crate::plan::Physical;
use crate::rules::conjuncts;

/// Default members per nested set when no statistics exist.
pub const DEFAULT_FANOUT: f64 = 4.0;
/// Default collection size when the catalog has no count.
pub const DEFAULT_SIZE: f64 = 1000.0;
/// Selectivity of an equality predicate.
pub const SEL_EQ: f64 = 0.05;
/// Selectivity of a range predicate.
pub const SEL_RANGE: f64 = 0.33;
/// Selectivity of any other predicate.
pub const SEL_OTHER: f64 = 0.5;
/// Rows per execution batch assumed by the cost model (mirrors the
/// executor's default batch size).
pub const BATCH_ROWS: f64 = 1024.0;
/// Fixed cost of pushing one batch through an operator (cursor dispatch,
/// column bookkeeping) — small relative to one row's worth of work.
pub const COST_PER_BATCH: f64 = 0.1;
/// Modeled cost of one row-at-a-time reference dereference during
/// expression evaluation (a buffer-pool visit plus record decode) — what
/// the deref-hoisting hash-join rewrite competes against.
pub const DEREF_COST: f64 = 4.0;

/// Amortized per-batch dispatch overhead for a stream of `rows` rows: at
/// least one batch, then one more per [`BATCH_ROWS`] rows.
pub fn batch_overhead(rows: f64) -> f64 {
    (rows / BATCH_ROWS).ceil().max(1.0) * COST_PER_BATCH
}

/// Minimum estimated rows at the leftmost scan before the planner
/// considers fanning a pipeline out to worker threads. Mirrored by the
/// executor's runtime gate, since aggregate `over` sub-plans bypass the
/// planner.
pub const PARALLEL_MIN_ROWS: f64 = 4096.0;
/// Per-worker startup/teardown charge (thread spawn, per-worker context,
/// partition bookkeeping) in row-cost units.
pub const PARALLEL_STARTUP_COST: f64 = 256.0;
/// Per-row cost of merging worker output back into the serial tail in
/// deterministic order.
pub const PARALLEL_MERGE_COST: f64 = 0.01;
/// Assumed rows in a `sys.*` virtual collection. System views carry no
/// statistics machinery — a fixed small default keeps them cheap enough
/// to sit on a join's inner side without ever dominating a plan.
pub const SYSTEM_VIEW_ROWS: f64 = 64.0;

/// Cost of running a pipeline of serial cost `input_cost` under a
/// parallel exchange at degree `dop`: the pipeline work divides across
/// workers, while startup scales with `dop` and the ordered merge scales
/// with the output rows. At `dop = 1` this degenerates to the serial
/// cost plus startup, so the planner never prefers a one-worker exchange.
pub fn parallel_cost(input_cost: f64, out_rows: f64, dop: usize) -> f64 {
    let d = dop.max(1) as f64;
    input_cost / d
        + d * PARALLEL_STARTUP_COST
        + out_rows * PARALLEL_MERGE_COST
        + batch_overhead(out_rows)
}

/// Estimated selectivity of a predicate from fixed factors alone (no
/// statistics).
pub fn selectivity(pred: &Expr) -> f64 {
    conjuncts(pred)
        .iter()
        .map(fixed_conjunct_selectivity)
        .product()
}

fn fixed_conjunct_selectivity(c: &Expr) -> f64 {
    match c {
        Expr::Binary(BinOp::Eq | BinOp::Is, _, _) => SEL_EQ,
        Expr::Binary(BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge, _, _) => SEL_RANGE,
        _ => SEL_OTHER,
    }
}

/// Map each range variable of `plan` to the collection it scans (bare
/// collection bindings only — the shapes statistics describe).
pub fn scan_collections(plan: &Physical, out: &mut HashMap<String, String>) {
    let mut add = |b: &ResolvedRange| {
        if let RootSource::Collection(obj) = &b.root {
            if b.steps.is_empty() {
                out.insert(b.var.clone(), obj.name.clone());
            }
        }
    };
    match plan {
        Physical::Unit | Physical::SystemScan { .. } => {}
        Physical::SeqScan { binding } | Physical::IndexScan { binding, .. } => add(binding),
        Physical::Unnest { input, binding }
        | Physical::HashJoin { input, binding, .. }
        | Physical::IndexJoin { input, binding, .. } => {
            add(binding);
            scan_collections(input, out);
        }
        Physical::NestedLoop { outer, inner } => {
            scan_collections(outer, out);
            scan_collections(inner, out);
        }
        Physical::Filter { input, .. }
        | Physical::UniversalFilter { input, .. }
        | Physical::Project { input, .. }
        | Physical::Sort { input, .. }
        | Physical::Parallel { input, .. } => scan_collections(input, out),
    }
}

/// Comparison shape statistics can answer, or `None` for operators they
/// cannot (`is`, `in`, ...).
fn stat_op(op: BinOp) -> Option<StatOp> {
    match op {
        BinOp::Eq => Some(StatOp::Eq),
        BinOp::Ne => Some(StatOp::Ne),
        BinOp::Lt => Some(StatOp::Lt),
        BinOp::Le => Some(StatOp::Le),
        BinOp::Gt => Some(StatOp::Gt),
        BinOp::Ge => Some(StatOp::Ge),
        _ => None,
    }
}

/// Mirror a comparison across its operands (`5 < E.age` ≡ `E.age > 5`).
fn flip_stat_op(op: StatOp) -> StatOp {
    match op {
        StatOp::Lt => StatOp::Gt,
        StatOp::Le => StatOp::Ge,
        StatOp::Gt => StatOp::Lt,
        StatOp::Ge => StatOp::Le,
        other => other,
    }
}

/// Numeric literal value of an expression, for histogram probes.
fn lit_f64(e: &Expr) -> Option<f64> {
    match e {
        Expr::Lit(Lit::Int(i)) => Some(*i as f64),
        Expr::Lit(Lit::Float(f)) => Some(*f),
        Expr::Unary(UnOp::Neg, inner) => Some(-lit_f64(inner)?),
        _ => None,
    }
}

/// Numeric view of a constant [`Value`], for histogram probes.
pub(crate) fn value_f64(v: &Value) -> Option<f64> {
    match v {
        Value::Int(i) => Some(*i as f64),
        Value::Float(f) => Some(*f),
        _ => None,
    }
}

/// Selectivity of a single comparison against one attribute's
/// statistics. `None` when the statistics cannot answer it (no
/// histogram and a non-equality operator, or no numeric constant).
fn attr_selectivity(a: &AttrStats, op: StatOp, value: Option<f64>) -> Option<f64> {
    match op {
        StatOp::Eq => Some(a.eq_selectivity()),
        StatOp::Ne => Some((1.0 - a.null_frac - a.eq_selectivity()).clamp(0.0, 1.0)),
        _ => a.cmp_selectivity(op, value?),
    }
}

/// Selectivity of one conjunct, consulting `analyze` statistics for
/// `V.attr <op> const` shapes over known scan sources and falling back
/// to the fixed factors otherwise — so unanalyzed collections see
/// exactly the constant-based estimates.
fn conjunct_selectivity(
    c: &Expr,
    sources: &HashMap<String, String>,
    catalog: &dyn CatalogLookup,
) -> f64 {
    if let Expr::Binary(op, lhs, rhs) = c {
        if let Some(sop) = stat_op(*op) {
            let sides = [(lhs, rhs, sop), (rhs, lhs, flip_stat_op(sop))];
            for (attr_side, const_side, sop) in sides {
                let Expr::Path(base, attr) = &**attr_side else {
                    continue;
                };
                let Expr::Var(v) = &**base else { continue };
                let Some(stats) = sources.get(v).and_then(|c| catalog.stats_for(c)) else {
                    continue;
                };
                let Some(a) = stats.attr(attr) else { continue };
                if let Some(sel) = attr_selectivity(a, sop, lit_f64(const_side)) {
                    return sel;
                }
            }
        }
    }
    fixed_conjunct_selectivity(c)
}

/// Estimated selectivity of a predicate given the scan sources of the
/// plan it filters (statistics-aware variant of [`selectivity`]).
pub fn selectivity_with(
    pred: &Expr,
    sources: &HashMap<String, String>,
    catalog: &dyn CatalogLookup,
) -> f64 {
    conjuncts(pred)
        .iter()
        .map(|c| conjunct_selectivity(c, sources, catalog))
        .product()
}

/// Collection a bare collection binding scans, if that is its shape.
pub(crate) fn binding_collection(b: &ResolvedRange) -> Option<&str> {
    match &b.root {
        RootSource::Collection(obj) if b.steps.is_empty() => Some(&obj.name),
        _ => None,
    }
}

/// Selectivity of an equi join probe against `binding`'s collection on
/// `attr`: expected fraction of build members matching one probe key.
fn eq_join_selectivity(b: &ResolvedRange, attr: &str, catalog: &dyn CatalogLookup) -> f64 {
    binding_collection(b)
        .and_then(|c| catalog.stats_for(c))
        .and_then(|s| s.attr(attr).map(AttrStats::eq_selectivity))
        .unwrap_or(SEL_EQ)
}

/// Estimated members produced by iterating a binding once.
pub fn binding_cardinality(b: &ResolvedRange, catalog: &dyn CatalogLookup) -> f64 {
    match &b.root {
        RootSource::Collection(obj) => {
            let base = catalog
                .collection_size(&obj.name)
                .map(|n| n as f64)
                .or_else(|| catalog.stats_for(&obj.name).map(|s| s.row_count as f64))
                .unwrap_or(DEFAULT_SIZE);
            // Steps beyond the collection unnest one nested set.
            if b.steps.is_empty() {
                base
            } else {
                base * DEFAULT_FANOUT
            }
        }
        RootSource::Object(_) => {
            if b.steps.is_empty() {
                1.0
            } else {
                DEFAULT_FANOUT
            }
        }
        RootSource::Var(_) => DEFAULT_FANOUT,
        RootSource::System(_) => SYSTEM_VIEW_ROWS,
    }
}

/// Estimated output cardinality of a physical plan.
pub fn cardinality(plan: &Physical, catalog: &dyn CatalogLookup) -> f64 {
    match plan {
        Physical::Unit => 1.0,
        Physical::SeqScan { binding } | Physical::SystemScan { binding, .. } => {
            binding_cardinality(binding, catalog)
        }
        Physical::IndexScan {
            binding,
            index,
            lower,
            upper,
            pred,
        } => {
            let base = binding_cardinality(binding, catalog);
            let from_stats = pred.as_ref().and_then(|(op, v)| {
                let sop = stat_op(*op)?;
                let stats = catalog.stats_for(binding_collection(binding)?)?;
                attr_selectivity(stats.attr(&index.attr)?, sop, value_f64(v))
            });
            let sel = from_stats.unwrap_or_else(|| match (lower, upper) {
                (std::ops::Bound::Included(a), std::ops::Bound::Included(b)) if a == b => SEL_EQ,
                _ => SEL_RANGE,
            });
            (base * sel).max(1.0)
        }
        Physical::Unnest { input, binding } => {
            cardinality(input, catalog) * binding_cardinality(binding, catalog)
        }
        Physical::NestedLoop { outer, inner } => {
            cardinality(outer, catalog) * cardinality(inner, catalog)
        }
        Physical::Filter { input, pred } => {
            let mut sources = HashMap::new();
            scan_collections(input, &mut sources);
            (cardinality(input, catalog) * selectivity_with(pred, &sources, catalog)).max(1.0)
        }
        Physical::HashJoin {
            input, binding, on, ..
        } => {
            let n = cardinality(input, catalog);
            match on {
                // Deref hoist is 1:1 with its input.
                None => n,
                Some(attr) => {
                    let t = binding_cardinality(binding, catalog);
                    (n * t * eq_join_selectivity(binding, attr, catalog)).max(1.0)
                }
            }
        }
        Physical::IndexJoin {
            input,
            binding,
            index,
            ..
        } => {
            let n = cardinality(input, catalog);
            let t = binding_cardinality(binding, catalog);
            (n * t * eq_join_selectivity(binding, &index.attr, catalog)).max(1.0)
        }
        Physical::UniversalFilter { input, .. } => {
            (cardinality(input, catalog) * SEL_OTHER).max(1.0)
        }
        Physical::Project { input, .. }
        | Physical::Sort { input, .. }
        | Physical::Parallel { input, .. } => cardinality(input, catalog),
    }
}

/// Pre-order `(label, estimated rows)` annotations for every node of a
/// physical plan, in the same order the executor's profiler indexes its
/// compiled tree: node first, then children — `NestedLoop` outer before
/// inner, `UniversalFilter` descending only into its input (the
/// universal bindings have no cursor of their own). Used to pair
/// estimated-vs-actual rows in `EXPLAIN ANALYZE` output.
pub fn annotate_preorder(plan: &Physical, catalog: &dyn CatalogLookup) -> Vec<(String, f64)> {
    fn walk(node: &Physical, catalog: &dyn CatalogLookup, out: &mut Vec<(String, f64)>) {
        out.push((node.label(), cardinality(node, catalog)));
        match node {
            Physical::Unit
            | Physical::SeqScan { .. }
            | Physical::SystemScan { .. }
            | Physical::IndexScan { .. } => {}
            Physical::NestedLoop { outer, inner } => {
                walk(outer, catalog, out);
                walk(inner, catalog, out);
            }
            Physical::Unnest { input, .. }
            | Physical::Filter { input, .. }
            | Physical::UniversalFilter { input, .. }
            | Physical::Project { input, .. }
            | Physical::Sort { input, .. }
            | Physical::HashJoin { input, .. }
            | Physical::IndexJoin { input, .. }
            | Physical::Parallel { input, .. } => walk(input, catalog, out),
        }
    }
    let mut out = Vec::new();
    walk(plan, catalog, &mut out);
    out
}

/// Estimated cost (abstract units ≈ member visits). Each operator pays
/// its per-row work plus [`batch_overhead`] for the batches it emits.
pub fn cost(plan: &Physical, catalog: &dyn CatalogLookup) -> f64 {
    match plan {
        Physical::Unit => 0.0,
        Physical::SeqScan { binding } | Physical::SystemScan { binding, .. } => {
            let n = binding_cardinality(binding, catalog);
            n + batch_overhead(n)
        }
        Physical::IndexScan { binding, .. } => {
            let n = binding_cardinality(binding, catalog).max(2.0);
            let out = cardinality(plan, catalog);
            n.log2() + out + batch_overhead(out)
        }
        Physical::Unnest { input, binding } => {
            let out = cardinality(input, catalog) * binding_cardinality(binding, catalog);
            cost(input, catalog) + out + batch_overhead(out)
        }
        Physical::NestedLoop { outer, inner } => {
            let out = cardinality(plan, catalog);
            cost(outer, catalog)
                + cardinality(outer, catalog) * cost(inner, catalog)
                + batch_overhead(out)
        }
        Physical::Filter { input, .. } => {
            let n = cardinality(input, catalog);
            cost(input, catalog) + n + batch_overhead(n)
        }
        Physical::UniversalFilter {
            input, bindings, ..
        } => {
            let universe: f64 = bindings
                .iter()
                .map(|b| binding_cardinality(b, catalog))
                .product();
            let n = cardinality(input, catalog);
            cost(input, catalog) + n * universe + batch_overhead(n)
        }
        Physical::Project { input, .. } => {
            let n = cardinality(input, catalog);
            cost(input, catalog) + n + batch_overhead(n)
        }
        Physical::Sort { input, .. } => {
            let n = cardinality(input, catalog).max(2.0);
            cost(input, catalog) + n * n.log2() + batch_overhead(n)
        }
        Physical::HashJoin { input, binding, .. } => {
            // Build scans and dereferences every member once; probes are
            // then O(1) hash lookups, plus one emit per matching row.
            let n = cardinality(input, catalog);
            let t = binding_cardinality(binding, catalog);
            let out = cardinality(plan, catalog);
            cost(input, catalog) + 2.0 * t + n + out + batch_overhead(out)
        }
        Physical::IndexJoin { input, binding, .. } => {
            let n = cardinality(input, catalog);
            let t = binding_cardinality(binding, catalog).max(2.0);
            let out = cardinality(plan, catalog);
            cost(input, catalog) + n * t.log2() + out + batch_overhead(out)
        }
        Physical::Parallel { input, dop } => {
            parallel_cost(cost(input, catalog), cardinality(input, catalog), *dop)
        }
    }
}
