//! Physical planning: access-path selection, join ordering, predicate
//! pushdown.

use std::collections::HashMap;
use std::ops::Bound;

use excess_lang::{BinOp, Expr, Stmt};
use excess_sema::{CheckedRetrieve, ResolvedRange, RootSource, SemaCtx, SemaError, SemaResult};
use extra_model::{Type, Value};

use crate::cost::cardinality;
use crate::plan::Physical;
use crate::rules::{conjoin, conjuncts, free_vars, indexable_pred};

/// Planner switches — each corresponds to an ablation in experiment E8.
#[derive(Debug, Clone, Copy)]
pub struct PlannerConfig {
    /// Consider B+-tree index scans (consulting the ADT applicability
    /// table for ADT-typed keys).
    pub use_indexes: bool,
    /// Push selection conjuncts below joins/unnests.
    pub pushdown: bool,
    /// Reorder independent scans by estimated cardinality.
    pub reorder_joins: bool,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        PlannerConfig {
            use_indexes: true,
            pushdown: true,
            reorder_joins: true,
        }
    }
}

impl PlannerConfig {
    /// Everything off: the naive evaluator baseline.
    pub fn naive() -> Self {
        PlannerConfig {
            use_indexes: false,
            pushdown: false,
            reorder_joins: false,
        }
    }
}

/// Plan a checked retrieve into a physical plan (serial: DOP fixed at 1).
pub fn plan_retrieve(
    stmt: &Stmt,
    checked: &CheckedRetrieve,
    ctx: &SemaCtx<'_>,
    config: PlannerConfig,
) -> SemaResult<Physical> {
    plan_retrieve_dop(stmt, checked, ctx, config, 1)
}

/// Plan a checked retrieve with up to `dop` worker threads available.
/// At `dop <= 1` this is exactly [`plan_retrieve`], so all serial plan
/// rankings are preserved; above that the planner may wrap the
/// scan→unnest→filter pipeline in a [`Physical::Parallel`] exchange when
/// the [`crate::cost::parallel_cost`] model says fan-out wins.
pub fn plan_retrieve_dop(
    stmt: &Stmt,
    checked: &CheckedRetrieve,
    ctx: &SemaCtx<'_>,
    config: PlannerConfig,
    dop: usize,
) -> SemaResult<Physical> {
    let Stmt::Retrieve {
        targets,
        qual,
        order_by,
        ..
    } = stmt
    else {
        return Err(SemaError::Other("plan_retrieve expects a retrieve".into()));
    };

    let (universal, existential): (Vec<ResolvedRange>, Vec<ResolvedRange>) =
        checked.bindings.iter().cloned().partition(|b| b.universal);
    let universal_vars: Vec<&str> = universal.iter().map(|b| b.var.as_str()).collect();
    let binding_vars: Vec<String> = checked.bindings.iter().map(|b| b.var.clone()).collect();

    // Partition conjuncts.
    let mut existential_conjuncts: Vec<Expr> = Vec::new();
    let mut universal_conjuncts: Vec<Expr> = Vec::new();
    if let Some(q) = qual {
        for c in conjuncts(q) {
            let vars = free_vars(&c);
            if vars.iter().any(|v| universal_vars.contains(&v.as_str())) {
                universal_conjuncts.push(c);
            } else {
                existential_conjuncts.push(c);
            }
        }
    }

    // Build chains: each root binding plus its transitive dependents.
    let children: HashMap<&str, Vec<&ResolvedRange>> = {
        let mut m: HashMap<&str, Vec<&ResolvedRange>> = HashMap::new();
        for b in &existential {
            if let Some(p) = b.depends_on() {
                m.entry(p).or_default().push(b);
            }
        }
        m
    };
    let mut chains: Vec<Physical> = Vec::new();
    // A chain root either has no parent or depends on an outer-scope
    // variable (function/procedure parameter) that the plan does not bind.
    let is_root = |b: &ResolvedRange| match b.depends_on() {
        None => true,
        Some(p) => !existential.iter().any(|x| x.var == p),
    };
    for root in existential.iter().filter(|b| is_root(b)) {
        let mut plan = plan_root(root, &mut existential_conjuncts, ctx, config)?;
        // DFS over dependents, preserving declaration order.
        let mut stack: Vec<&ResolvedRange> =
            children.get(root.var.as_str()).cloned().unwrap_or_default();
        stack.reverse();
        while let Some(b) = stack.pop() {
            plan = Physical::Unnest {
                input: Box::new(plan),
                binding: b.clone(),
            };
            let mut kids = children.get(b.var.as_str()).cloned().unwrap_or_default();
            kids.reverse();
            stack.extend(kids);
        }
        chains.push(plan);
    }

    // Early pushdown of single-chain conjuncts before ordering, so the
    // cardinality estimates see them.
    if config.pushdown {
        existential_conjuncts.retain(|c| {
            let vars: Vec<String> = free_vars(c)
                .into_iter()
                .filter(|v| binding_vars.contains(v))
                .collect();
            for chain in chains.iter_mut() {
                let bound = chain.bound_vars();
                if !vars.is_empty() && vars.iter().all(|v| bound.contains(v)) {
                    *chain = attach_filter(std::mem::replace(chain, Physical::Unit), c, &vars);
                    return false;
                }
            }
            true
        });
    }

    // Join ordering: pick the cheapest nested-loop order by estimated
    // cost (exhaustive for up to four chains; greedy-by-cardinality
    // beyond that). Minimizing estimated *cost*, not outer cardinality —
    // a tiny outer side is a loss when the inner must be fully rescanned.
    if config.reorder_joins && chains.len() > 1 {
        if chains.len() <= 4 {
            chains = best_permutation(chains, ctx);
        } else {
            chains.sort_by(|a, b| {
                cardinality(a, ctx.catalog)
                    .partial_cmp(&cardinality(b, ctx.catalog))
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
        }
    }
    let mut plan = match chains.len() {
        0 => Physical::Unit,
        _ => {
            let mut it = chains.into_iter();
            let first = it.next().expect("nonempty");
            it.fold(first, |outer, inner| Physical::NestedLoop {
                outer: Box::new(outer),
                inner: Box::new(inner),
            })
        }
    };

    // Remaining conjuncts (cross-chain, or everything when pushdown is
    // off) gate the joined stream.
    if let Some(p) = conjoin(existential_conjuncts) {
        plan = Physical::Filter {
            input: Box::new(plan),
            pred: p,
        };
    }
    // The fully filtered pipeline is the widest parallel-safe prefix:
    // everything above (universal quantification, sort, projection) runs
    // in the serial tail.
    plan = maybe_parallelize(plan, ctx, dop);
    if !universal.is_empty() {
        if let Some(p) = conjoin(universal_conjuncts) {
            plan = Physical::UniversalFilter {
                input: Box::new(plan),
                bindings: universal,
                pred: p,
            };
        }
    }
    if let Some((key, asc)) = order_by {
        plan = Physical::Sort {
            input: Box::new(plan),
            key: key.clone(),
            asc: *asc,
        };
    }
    let named: Vec<(String, Expr)> = checked
        .output
        .iter()
        .zip(targets.iter())
        .map(|((name, _), t)| (name.clone(), t.expr.clone()))
        .collect();
    let plan = Physical::Project {
        input: Box::new(plan),
        targets: named,
    };
    // Statistics-gated join rewrites run over the assembled plan; with
    // no `analyze` statistics recorded they are no-ops, so plans over
    // unanalyzed collections keep their exact prior shapes.
    Ok(crate::join::apply_join_rewrites(plan, ctx))
}

/// Wrap `plan` in a parallel exchange when (a) workers are available,
/// (b) its leftmost leaf is a partitionable scan big enough to clear
/// [`crate::cost::PARALLEL_MIN_ROWS`], and (c) the DOP-aware cost model
/// says dividing the pipeline across workers beats running it serially.
fn maybe_parallelize(plan: Physical, ctx: &SemaCtx<'_>, dop: usize) -> Physical {
    if dop < 2 {
        return plan;
    }
    let Some(scan_rows) = leftmost_scan_rows(&plan, ctx) else {
        return plan;
    };
    if scan_rows < crate::cost::PARALLEL_MIN_ROWS {
        return plan;
    }
    let serial = crate::cost::cost(&plan, ctx.catalog);
    let out = cardinality(&plan, ctx.catalog);
    if crate::cost::parallel_cost(serial, out, dop) >= serial {
        return plan;
    }
    Physical::Parallel {
        input: Box::new(plan),
        dop,
    }
}

/// Estimated rows of the leftmost scan of a parallel-safe pipeline, or
/// `None` when the pipeline bottoms out in something unpartitionable
/// (`Unit`, or operators that must stay in the serial tail).
fn leftmost_scan_rows(plan: &Physical, ctx: &SemaCtx<'_>) -> Option<f64> {
    match plan {
        Physical::SeqScan { .. } | Physical::IndexScan { .. } => {
            Some(cardinality(plan, ctx.catalog))
        }
        Physical::Unnest { input, .. }
        | Physical::Filter { input, .. }
        | Physical::Project { input, .. }
        | Physical::HashJoin { input, .. }
        | Physical::IndexJoin { input, .. }
        | Physical::Parallel { input, .. } => leftmost_scan_rows(input, ctx),
        Physical::NestedLoop { outer, .. } => leftmost_scan_rows(outer, ctx),
        // System scans are snapshot-at-open and tiny: never partitioned,
        // so sys.* plans are identical at every DOP by construction.
        Physical::Unit
        | Physical::SystemScan { .. }
        | Physical::UniversalFilter { .. }
        | Physical::Sort { .. } => None,
    }
}

/// Exhaustively pick the nested-loop order with the lowest estimated
/// cost.
fn best_permutation(chains: Vec<Physical>, ctx: &SemaCtx<'_>) -> Vec<Physical> {
    let mut best: Option<(f64, Vec<usize>)> = None;
    let mut perm: Vec<usize> = (0..chains.len()).collect();
    // Heap's algorithm, iterative.
    let n = perm.len();
    let mut c = vec![0usize; n];
    let evaluate = |perm: &[usize], best: &mut Option<(f64, Vec<usize>)>| {
        let plan = perm
            .iter()
            .map(|&i| chains[i].clone())
            .reduce(|outer, inner| Physical::NestedLoop {
                outer: Box::new(outer),
                inner: Box::new(inner),
            })
            .expect("nonempty");
        let cost = crate::cost::cost(&plan, ctx.catalog);
        if best.as_ref().map(|(b, _)| cost < *b).unwrap_or(true) {
            *best = Some((cost, perm.to_vec()));
        }
    };
    evaluate(&perm, &mut best);
    let mut i = 0;
    while i < n {
        if c[i] < i {
            if i % 2 == 0 {
                perm.swap(0, i);
            } else {
                perm.swap(c[i], i);
            }
            evaluate(&perm, &mut best);
            c[i] += 1;
            i = 0;
        } else {
            c[i] = 0;
            i += 1;
        }
    }
    let order = best.expect("at least one permutation").1;
    // Reassemble chains in the chosen order.
    let mut slots: Vec<Option<Physical>> = chains.into_iter().map(Some).collect();
    order
        .into_iter()
        .map(|i| slots[i].take().expect("each index once"))
        .collect()
}

/// Plan the access path for a root binding, possibly consuming an
/// index-usable conjunct.
fn plan_root(
    root: &ResolvedRange,
    remaining: &mut Vec<Expr>,
    ctx: &SemaCtx<'_>,
    config: PlannerConfig,
) -> SemaResult<Physical> {
    if let RootSource::System(view) = &root.root {
        // System views have no indexes or statistics; the scan
        // materializes one provider snapshot and filters apply above.
        return Ok(Physical::SystemScan {
            binding: root.clone(),
            view: view.clone(),
        });
    }
    let RootSource::Collection(obj) = &root.root else {
        // Object-rooted ranges unnest straight off the named object.
        return Ok(Physical::Unnest {
            input: Box::new(Physical::Unit),
            binding: root.clone(),
        });
    };
    // Only a direct member iteration can use a member-attribute index.
    if config.use_indexes && root.steps.is_empty() {
        for (i, c) in remaining.iter().enumerate() {
            let Some(p) = indexable_pred(c, &root.var, ctx.adts) else {
                continue;
            };
            let Some(index) = ctx.catalog.index_on(&obj.name, &p.attr) else {
                continue;
            };
            // Coerce the probe constant to the attribute's declared type
            // so its key encoding matches the index entries.
            let attr_ty = ctx.attr_type(&root.elem, &p.attr)?;
            let value = coerce(&p.value, &attr_ty.ty);
            let Some(key) = value.key_encode(ctx.adts) else {
                continue;
            };
            let (lower, upper) = match p.op {
                BinOp::Eq => (Bound::Included(key.clone()), Bound::Included(key)),
                BinOp::Lt => (Bound::Unbounded, Bound::Excluded(key)),
                BinOp::Le => (Bound::Unbounded, Bound::Included(key)),
                BinOp::Gt => (Bound::Excluded(key), Bound::Unbounded),
                BinOp::Ge => (Bound::Included(key), Bound::Unbounded),
                _ => unreachable!("indexable_pred filters operators"),
            };
            remaining.remove(i);
            return Ok(Physical::IndexScan {
                binding: root.clone(),
                index,
                lower,
                upper,
                pred: Some((p.op, value)),
            });
        }
    }
    if root.steps.is_empty() {
        Ok(Physical::SeqScan {
            binding: root.clone(),
        })
    } else {
        // A collection-with-steps root should not occur (the resolver
        // introduces an implicit member binding), but plan it as scan +
        // self-unnest defensively.
        let base = ResolvedRange {
            var: format!("${}", obj.name),
            universal: false,
            root: root.root.clone(),
            steps: Vec::new(),
            elem: root.elem.clone(),
        };
        let scan = Physical::SeqScan { binding: base };
        let mut dep = root.clone();
        dep.root = RootSource::Var(format!("${}", obj.name));
        Ok(Physical::Unnest {
            input: Box::new(scan),
            binding: dep,
        })
    }
}

fn coerce(v: &Value, ty: &Type) -> Value {
    match (v, ty) {
        (Value::Int(i), Type::Base(b)) if b.is_float() => Value::Float(*i as f64),
        (Value::Float(f), Type::Base(b)) if b.is_integer() && f.fract() == 0.0 => {
            Value::Int(*f as i64)
        }
        _ => v.clone(),
    }
}

/// Attach a filter at the lowest point in `plan` where `vars` are bound.
fn attach_filter(plan: Physical, pred: &Expr, vars: &[String]) -> Physical {
    let covered = |p: &Physical| {
        let bound = p.bound_vars();
        vars.iter().all(|v| bound.contains(v))
    };
    match plan {
        Physical::Unnest { input, binding } => {
            if covered(&input) {
                Physical::Unnest {
                    input: Box::new(attach_filter(*input, pred, vars)),
                    binding,
                }
            } else {
                Physical::Filter {
                    input: Box::new(Physical::Unnest { input, binding }),
                    pred: pred.clone(),
                }
            }
        }
        Physical::NestedLoop { outer, inner } => {
            if covered(&outer) {
                Physical::NestedLoop {
                    outer: Box::new(attach_filter(*outer, pred, vars)),
                    inner,
                }
            } else if covered(&inner) {
                Physical::NestedLoop {
                    outer,
                    inner: Box::new(attach_filter(*inner, pred, vars)),
                }
            } else {
                Physical::Filter {
                    input: Box::new(Physical::NestedLoop { outer, inner }),
                    pred: pred.clone(),
                }
            }
        }
        Physical::Filter {
            input,
            pred: existing,
        } => {
            if covered(&input) {
                Physical::Filter {
                    input: Box::new(attach_filter(*input, pred, vars)),
                    pred: existing,
                }
            } else {
                Physical::Filter {
                    input: Box::new(Physical::Filter {
                        input,
                        pred: existing,
                    }),
                    pred: pred.clone(),
                }
            }
        }
        other => Physical::Filter {
            input: Box::new(other),
            pred: pred.clone(),
        },
    }
}

/// Convenience: a retrieve's *unoptimized* plan, for the E8 ablation.
pub fn optimize(stmt: &Stmt, checked: &CheckedRetrieve, ctx: &SemaCtx<'_>) -> SemaResult<Physical> {
    plan_retrieve(stmt, checked, ctx, PlannerConfig::default())
}
