//! Statistics-gated join rewrites.
//!
//! Two rules run over every assembled physical plan, both strictly
//! gated on `analyze` statistics for the build-side collection — a plan
//! over unanalyzed collections is returned byte-identical, so enabling
//! the rewrites never perturbs existing plan shapes or rankings.
//!
//! 1. **Equi-join selection** (`rewrite_equi_joins`): a cross-chain
//!    equality conjunct `<outer expr> = W.attr` gating a
//!    [`Physical::NestedLoop`] whose inner side is a bare collection
//!    scan becomes a [`Physical::HashJoin`] (build once, probe with
//!    whole batches) or a [`Physical::IndexJoin`] (index nested loop on
//!    a secondary index over `attr`) — whichever the cost model ranks
//!    cheapest, with the original nested loop kept when it wins.
//!
//! 2. **Dereference hoisting** (`hoist_derefs`): an implicit path
//!    query stepping through a reference attribute (`E.dept.floor`)
//!    normally dereferences the target object row by row during
//!    expression evaluation. When the target collection has statistics
//!    and the cost model expects the build to pay off, a reference-mode
//!    [`Physical::HashJoin`] is inserted directly above the binder of
//!    the path's root variable, binding a hidden variable (`$E__dept`)
//!    to the dereferenced target tuple; every `E.dept.<rest>` path in
//!    the plan is rewritten to `$E__dept.<rest>`. Probe misses fall
//!    back to an ordinary dereference, so results are unchanged.

use std::collections::HashMap;

use excess_lang::{BinOp, Expr};
use excess_sema::{NamedObject, ResolvedRange, RootSource, SemaCtx};
use extra_model::{Ownership, QualType, Type, TypeId};

use crate::cost::{binding_cardinality, cost, DEREF_COST};
use crate::plan::Physical;
use crate::rules::{conjoin, conjuncts, free_vars};

/// Run both statistics-gated join rewrites over an assembled plan.
pub fn apply_join_rewrites(plan: Physical, ctx: &SemaCtx<'_>) -> Physical {
    let plan = rewrite_equi_joins(plan, ctx);
    hoist_derefs(plan, ctx)
}

/// Rebuild a node around transformed children.
fn map_inputs(plan: Physical, f: &mut dyn FnMut(Physical) -> Physical) -> Physical {
    match plan {
        Physical::Unit
        | Physical::SeqScan { .. }
        | Physical::SystemScan { .. }
        | Physical::IndexScan { .. } => plan,
        Physical::Unnest { input, binding } => Physical::Unnest {
            input: Box::new(f(*input)),
            binding,
        },
        Physical::NestedLoop { outer, inner } => Physical::NestedLoop {
            outer: Box::new(f(*outer)),
            inner: Box::new(f(*inner)),
        },
        Physical::Filter { input, pred } => Physical::Filter {
            input: Box::new(f(*input)),
            pred,
        },
        Physical::UniversalFilter {
            input,
            bindings,
            pred,
        } => Physical::UniversalFilter {
            input: Box::new(f(*input)),
            bindings,
            pred,
        },
        Physical::Project { input, targets } => Physical::Project {
            input: Box::new(f(*input)),
            targets,
        },
        Physical::Sort { input, key, asc } => Physical::Sort {
            input: Box::new(f(*input)),
            key,
            asc,
        },
        Physical::HashJoin {
            input,
            binding,
            key,
            on,
        } => Physical::HashJoin {
            input: Box::new(f(*input)),
            binding,
            key,
            on,
        },
        Physical::IndexJoin {
            input,
            binding,
            index,
            key,
        } => Physical::IndexJoin {
            input: Box::new(f(*input)),
            binding,
            index,
            key,
        },
        Physical::Parallel { input, dop } => Physical::Parallel {
            input: Box::new(f(*input)),
            dop,
        },
    }
}

// ---------------------------------------------------------------------
// Rule 1: equi-join selection.
// ---------------------------------------------------------------------

/// Rewrite qualifying `Filter` + `NestedLoop` shapes into batch joins,
/// recursing through the whole plan.
fn rewrite_equi_joins(plan: Physical, ctx: &SemaCtx<'_>) -> Physical {
    let plan = map_inputs(plan, &mut |c| rewrite_equi_joins(c, ctx));
    if let Physical::Filter { input, pred } = plan {
        if let Physical::NestedLoop { outer, inner } = *input {
            return try_equi_join(*outer, *inner, pred, ctx);
        }
        return Physical::Filter { input, pred };
    }
    plan
}

/// Attempt the equi-join rewrite on one filtered nested loop, returning
/// the cheapest of the original shape, a hash join, and an index join.
fn try_equi_join(outer: Physical, inner: Physical, pred: Expr, ctx: &SemaCtx<'_>) -> Physical {
    let original = |outer: Physical, inner: Physical, pred: Expr| Physical::Filter {
        input: Box::new(Physical::NestedLoop {
            outer: Box::new(outer),
            inner: Box::new(inner),
        }),
        pred,
    };
    // The inner side must be a bare collection scan whose collection has
    // been analyzed (the statistics gate).
    let Physical::SeqScan { binding } = &inner else {
        return original(outer, inner, pred);
    };
    let Some(collection) = crate::cost::binding_collection(binding) else {
        return original(outer, inner, pred);
    };
    if ctx.catalog.stats_for(collection).is_none() {
        return original(outer, inner, pred);
    }
    let w = binding.var.clone();
    let outer_bound = outer.bound_vars();
    // Find an equality conjunct `<outer expr> = W.attr` (either operand
    // order); every range variable the outer expression uses must be
    // bound by the outer side.
    let cs = conjuncts(&pred);
    let mut found: Option<(usize, String, Expr)> = None;
    'search: for (i, c) in cs.iter().enumerate() {
        let Expr::Binary(BinOp::Eq, lhs, rhs) = c else {
            continue;
        };
        for (attr_side, key_side) in [(lhs, rhs), (rhs, lhs)] {
            let Expr::Path(base, attr) = &**attr_side else {
                continue;
            };
            let Expr::Var(v) = &**base else { continue };
            if *v != w {
                continue;
            }
            let key_vars = free_vars(key_side);
            if key_vars.contains(&w) || !key_vars.iter().all(|kv| outer_bound.contains(kv)) {
                continue;
            }
            found = Some((i, attr.clone(), (**key_side).clone()));
            break 'search;
        }
    }
    let Some((ci, attr, key)) = found else {
        return original(outer, inner, pred);
    };
    let remaining = conjoin(
        cs.iter()
            .enumerate()
            .filter(|(i, _)| *i != ci)
            .map(|(_, c)| c.clone())
            .collect(),
    );
    let wrap = |joined: Physical| match &remaining {
        Some(p) => Physical::Filter {
            input: Box::new(joined),
            pred: p.clone(),
        },
        None => joined,
    };
    let mut candidates = vec![original(outer.clone(), inner.clone(), pred.clone())];
    candidates.push(wrap(Physical::HashJoin {
        input: Box::new(outer.clone()),
        binding: binding.clone(),
        key: key.clone(),
        on: Some(attr.clone()),
    }));
    if let Some(index) = ctx.catalog.index_on(collection, &attr) {
        candidates.push(wrap(Physical::IndexJoin {
            input: Box::new(outer),
            binding: binding.clone(),
            index,
            key,
        }));
    }
    candidates
        .into_iter()
        .map(|p| (cost(&p, ctx.catalog), p))
        .min_by(|(a, _), (b, _)| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal))
        .expect("nonempty candidate set")
        .1
}

// ---------------------------------------------------------------------
// Rule 2: dereference hoisting.
// ---------------------------------------------------------------------

/// One accepted hoist: paths `var.attr.<rest>` become
/// `hidden.<rest>` and a reference-mode hash join binding `hidden` is
/// inserted above `var`'s binder.
pub struct Hoist {
    /// Root range variable of the hoisted paths.
    pub var: String,
    /// Reference attribute stepped through.
    pub attr: String,
    /// Hidden binding (`$var__attr`) over the analyzed target
    /// collection; its element is the dereferenced (owned) tuple.
    pub binding: ResolvedRange,
}

/// Hoist row-at-a-time reference dereferences into build-once hash
/// joins where statistics say the build pays off.
fn hoist_derefs(plan: Physical, ctx: &SemaCtx<'_>) -> Physical {
    let mut binders: HashMap<String, ResolvedRange> = HashMap::new();
    collect_binders(&plan, &mut binders);
    let mut uses: HashMap<(String, String), usize> = HashMap::new();
    count_plan_uses(&plan, &binders, &mut uses);
    let hoists = accept_hoists(&binders, uses, ctx);
    if hoists.is_empty() {
        return plan;
    }
    let renames: HashMap<(String, String), String> = hoists
        .iter()
        .map(|h| ((h.var.clone(), h.attr.clone()), h.binding.var.clone()))
        .collect();
    let plan = insert_hoists(plan, &hoists);
    rewrite_plan_paths(plan, &renames)
}

/// Apply the statistics and cost gates to counted dereference uses,
/// producing the accepted hoists in deterministic order.
fn accept_hoists(
    binders: &HashMap<String, ResolvedRange>,
    uses: HashMap<(String, String), usize>,
    ctx: &SemaCtx<'_>,
) -> Vec<Hoist> {
    // Deterministic candidate order (the map iterates in hash order).
    let mut candidates: Vec<((String, String), usize)> = uses.into_iter().collect();
    candidates.sort();
    let mut hoists: Vec<Hoist> = Vec::new();
    for ((var, attr), n_uses) in candidates {
        let root_binding = &binders[&var];
        // The attribute must be a reference to a schema-typed object.
        let Ok(aqty) = ctx.attr_type(&root_binding.elem, &attr) else {
            continue;
        };
        if aqty.mode == Ownership::Own {
            continue;
        }
        let Type::Schema(tid) = aqty.ty else { continue };
        // Find an analyzed collection holding the target type.
        let Some((target, build_rows)) = target_collection(ctx, tid) else {
            continue;
        };
        // Cost gate: one build scan + dereference of every build member
        // must beat `n_uses` row-at-a-time dereferences per probe row.
        let probe_rows = binding_cardinality(root_binding, ctx.catalog);
        if 2.0 * build_rows + probe_rows >= n_uses as f64 * probe_rows * DEREF_COST {
            continue;
        }
        let hidden = format!("${var}__{attr}");
        hoists.push(Hoist {
            var,
            attr,
            binding: ResolvedRange {
                var: hidden,
                universal: false,
                root: RootSource::Collection(target),
                steps: Vec::new(),
                elem: QualType::own(Type::Schema(tid)),
            },
        });
    }
    hoists
}

/// Dereference hoists for an aggregate's `over` plan. The executor
/// builds those plans itself (they never pass through the planner), so
/// it calls this with the aggregate's resolved range bindings and inner
/// expressions, inserts a reference-mode hash join per hoist above the
/// prepared plan, and rewrites the expressions with
/// [`rewrite_expr_paths`]. Gating is identical to the top-level rule.
pub fn agg_hoists(bindings: &[ResolvedRange], exprs: &[&Expr], ctx: &SemaCtx<'_>) -> Vec<Hoist> {
    let mut binders: HashMap<String, ResolvedRange> = HashMap::new();
    for b in bindings {
        if crate::cost::binding_collection(b).is_some() {
            binders.insert(b.var.clone(), b.clone());
        }
    }
    let mut uses: HashMap<(String, String), usize> = HashMap::new();
    for e in exprs {
        count_expr_uses(e, &binders, &mut uses);
    }
    accept_hoists(&binders, uses, ctx)
}

/// Map every range variable bound by a plan node to its binding, for
/// bare collection bindings (the shapes statistics and the hash build
/// understand).
fn collect_binders(plan: &Physical, out: &mut HashMap<String, ResolvedRange>) {
    let mut add = |b: &ResolvedRange| {
        if crate::cost::binding_collection(b).is_some() {
            out.insert(b.var.clone(), b.clone());
        }
    };
    match plan {
        Physical::Unit | Physical::SystemScan { .. } => {}
        Physical::SeqScan { binding } | Physical::IndexScan { binding, .. } => add(binding),
        Physical::Unnest { input, binding }
        | Physical::HashJoin { input, binding, .. }
        | Physical::IndexJoin { input, binding, .. } => {
            add(binding);
            collect_binders(input, out);
        }
        Physical::NestedLoop { outer, inner } => {
            collect_binders(outer, out);
            collect_binders(inner, out);
        }
        Physical::Filter { input, .. }
        | Physical::UniversalFilter { input, .. }
        | Physical::Project { input, .. }
        | Physical::Sort { input, .. }
        | Physical::Parallel { input, .. } => collect_binders(input, out),
    }
}

/// The analyzed collection whose members have schema type `tid`,
/// preferring the largest (ties broken by name for determinism).
/// `None` when no analyzed collection matches — which disables the
/// hoist.
fn target_collection(ctx: &SemaCtx<'_>, tid: TypeId) -> Option<(NamedObject, f64)> {
    let mut best: Option<(u64, NamedObject)> = None;
    let mut objs = ctx.catalog.collections();
    objs.sort_by(|a, b| a.name.cmp(&b.name));
    for obj in objs {
        if !obj.is_collection {
            continue;
        }
        let Type::Set(elem) = &obj.qty.ty else {
            continue;
        };
        if elem.ty != Type::Schema(tid) {
            continue;
        }
        let Some(stats) = ctx.catalog.stats_for(&obj.name) else {
            continue;
        };
        if best
            .as_ref()
            .map(|(r, _)| stats.row_count > *r)
            .unwrap_or(true)
        {
            best = Some((stats.row_count, obj));
        }
    }
    best.map(|(rows, obj)| (obj, rows as f64))
}

/// Count `var.attr.<rest>` path-prefix uses across every expression of
/// the plan (aggregates excluded — the executor hoists inside aggregate
/// `over` plans itself, under its own environment).
fn count_plan_uses(
    plan: &Physical,
    binders: &HashMap<String, ResolvedRange>,
    out: &mut HashMap<(String, String), usize>,
) {
    let mut each = |e: &Expr| count_expr_uses(e, binders, out);
    match plan {
        Physical::Filter { pred, .. } | Physical::UniversalFilter { pred, .. } => each(pred),
        Physical::Project { targets, .. } => {
            for (_, e) in targets {
                each(e);
            }
        }
        Physical::Sort { key, .. } => each(key),
        Physical::HashJoin { key, .. } | Physical::IndexJoin { key, .. } => each(key),
        _ => {}
    }
    match plan {
        Physical::Unit
        | Physical::SeqScan { .. }
        | Physical::SystemScan { .. }
        | Physical::IndexScan { .. } => {}
        Physical::NestedLoop { outer, inner } => {
            count_plan_uses(outer, binders, out);
            count_plan_uses(inner, binders, out);
        }
        Physical::Unnest { input, .. }
        | Physical::Filter { input, .. }
        | Physical::UniversalFilter { input, .. }
        | Physical::Project { input, .. }
        | Physical::Sort { input, .. }
        | Physical::HashJoin { input, .. }
        | Physical::IndexJoin { input, .. }
        | Physical::Parallel { input, .. } => count_plan_uses(input, binders, out),
    }
}

/// Count multi-step path prefixes `Var(v).a.<rest>` rooted at known
/// binders. Stops at aggregates.
pub fn count_expr_uses(
    e: &Expr,
    binders: &HashMap<String, ResolvedRange>,
    out: &mut HashMap<(String, String), usize>,
) {
    match e {
        Expr::Path(base, _) => {
            if let Expr::Path(inner, a) = &**base {
                if let Expr::Var(v) = &**inner {
                    if binders.contains_key(v) {
                        *out.entry((v.clone(), a.clone())).or_insert(0) += 1;
                        return;
                    }
                }
            }
            count_expr_uses(base, binders, out);
        }
        Expr::Lit(_) | Expr::Var(_) | Expr::Agg(_) => {}
        Expr::Index(base, idx) => {
            count_expr_uses(base, binders, out);
            count_expr_uses(idx, binders, out);
        }
        Expr::Call { recv, args, .. } => {
            if let Some(r) = recv {
                count_expr_uses(r, binders, out);
            }
            for a in args {
                count_expr_uses(a, binders, out);
            }
        }
        Expr::Unary(_, a) => count_expr_uses(a, binders, out),
        Expr::Binary(_, a, b) => {
            count_expr_uses(a, binders, out);
            count_expr_uses(b, binders, out);
        }
        Expr::UserOp(_, args) | Expr::SetLit(args) => {
            for a in args {
                count_expr_uses(a, binders, out);
            }
        }
        Expr::TupleLit(fields) => {
            for (_, a) in fields {
                count_expr_uses(a, binders, out);
            }
        }
    }
}

/// Insert each hoist's hash join directly above the node binding its
/// root variable.
fn insert_hoists(plan: Physical, hoists: &[Hoist]) -> Physical {
    let plan = map_inputs(plan, &mut |c| insert_hoists(c, hoists));
    let bound_here = match &plan {
        Physical::SeqScan { binding }
        | Physical::IndexScan { binding, .. }
        | Physical::Unnest { binding, .. }
        | Physical::HashJoin { binding, .. }
        | Physical::IndexJoin { binding, .. } => Some(binding.var.clone()),
        _ => None,
    };
    let Some(var) = bound_here else { return plan };
    let mut plan = plan;
    for h in hoists.iter().filter(|h| h.var == var) {
        plan = Physical::HashJoin {
            input: Box::new(plan),
            binding: h.binding.clone(),
            key: Expr::Path(Box::new(Expr::Var(h.var.clone())), h.attr.clone()),
            on: None,
        };
    }
    plan
}

/// Rewrite every hoisted path prefix in the plan's expressions.
fn rewrite_plan_paths(plan: Physical, renames: &HashMap<(String, String), String>) -> Physical {
    let mut plan = map_inputs(plan, &mut |c| rewrite_plan_paths(c, renames));
    match &mut plan {
        Physical::Filter { pred, .. } | Physical::UniversalFilter { pred, .. } => {
            rewrite_expr_paths(pred, renames);
        }
        Physical::Project { targets, .. } => {
            for (_, e) in targets {
                rewrite_expr_paths(e, renames);
            }
        }
        Physical::Sort { key, .. } => rewrite_expr_paths(key, renames),
        // Reference-mode keys (`on: None`) are the hoisted prefixes
        // themselves; rewriting one would probe with the hidden
        // variable it defines. Equi keys are ordinary outer
        // expressions.
        Physical::HashJoin {
            key, on: Some(_), ..
        } => rewrite_expr_paths(key, renames),
        Physical::IndexJoin { key, .. } => rewrite_expr_paths(key, renames),
        _ => {}
    }
    plan
}

/// Rewrite `Var(v).a.<rest>` into `Var(hidden).<rest>` everywhere
/// outside aggregates.
pub fn rewrite_expr_paths(e: &mut Expr, renames: &HashMap<(String, String), String>) {
    if let Expr::Path(base, _) = e {
        let hidden = match &**base {
            Expr::Path(inner, a) => match &**inner {
                Expr::Var(v) => renames.get(&(v.clone(), a.clone())).cloned(),
                _ => None,
            },
            _ => None,
        };
        if let Some(h) = hidden {
            **base = Expr::Var(h);
        }
    }
    match e {
        Expr::Lit(_) | Expr::Var(_) | Expr::Agg(_) => {}
        Expr::Path(base, _) => rewrite_expr_paths(base, renames),
        Expr::Index(base, idx) => {
            rewrite_expr_paths(base, renames);
            rewrite_expr_paths(idx, renames);
        }
        Expr::Call { recv, args, .. } => {
            if let Some(r) = recv {
                rewrite_expr_paths(r, renames);
            }
            for a in args {
                rewrite_expr_paths(a, renames);
            }
        }
        Expr::Unary(_, a) => rewrite_expr_paths(a, renames),
        Expr::Binary(_, a, b) => {
            rewrite_expr_paths(a, renames);
            rewrite_expr_paths(b, renames);
        }
        Expr::UserOp(_, args) | Expr::SetLit(args) => {
            for a in args {
                rewrite_expr_paths(a, renames);
            }
        }
        Expr::TupleLit(fields) => {
            for (_, a) in fields {
                rewrite_expr_paths(a, renames);
            }
        }
    }
}
