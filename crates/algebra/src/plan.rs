//! Logical and physical operator trees.

use std::fmt;
use std::ops::Bound;

use excess_lang::Expr;
use excess_sema::{IndexInfo, ResolvedRange};

/// A logical plan node.
#[derive(Debug, Clone)]
pub enum Logical {
    /// Produces a single empty environment (for constant queries like
    /// `retrieve (Today)`).
    Unit,
    /// Extend each input environment with one range binding (iterating a
    /// collection, or unnesting a set reached from a parent binding /
    /// named object).
    Range {
        /// Input.
        input: Box<Logical>,
        /// The binding added.
        binding: ResolvedRange,
    },
    /// Filter by a predicate.
    Select {
        /// Input.
        input: Box<Logical>,
        /// Boolean predicate.
        pred: Expr,
    },
    /// Keep environments for which `pred` holds for *all* bindings of the
    /// universal ranges (`range of V is all ...`).
    UniversalSelect {
        /// Input.
        input: Box<Logical>,
        /// The universally quantified bindings.
        bindings: Vec<ResolvedRange>,
        /// Predicate that must hold for every universal binding.
        pred: Expr,
    },
    /// Compute the output columns.
    Project {
        /// Input.
        input: Box<Logical>,
        /// `(column name, expression)` pairs.
        targets: Vec<(String, Expr)>,
    },
    /// Order the result.
    Sort {
        /// Input.
        input: Box<Logical>,
        /// Sort key.
        key: Expr,
        /// Ascending?
        asc: bool,
    },
}

/// A physical plan node, directly executable by `excess-exec`.
#[derive(Debug, Clone)]
pub enum Physical {
    /// One empty environment.
    Unit,
    /// Sequential scan of a collection, binding `binding.var`.
    SeqScan {
        /// The binding (root must be a collection).
        binding: ResolvedRange,
    },
    /// Scan of a `sys.<view>` virtual collection: rows are materialized
    /// from live engine state by the catalog's system-view provider, as
    /// one consistent snapshot per cursor open.
    SystemScan {
        /// The binding (root must be [`excess_sema::RootSource::System`]).
        binding: ResolvedRange,
        /// View name without the `sys.` prefix.
        view: String,
    },
    /// B+-tree index scan with key bounds.
    IndexScan {
        /// The binding (root must be a collection).
        binding: ResolvedRange,
        /// The index used.
        index: IndexInfo,
        /// Lower key bound (encoded).
        lower: Bound<Vec<u8>>,
        /// Upper key bound (encoded).
        upper: Bound<Vec<u8>>,
        /// The source predicate the bounds encode (`attr <op> value`),
        /// kept for plan labels and statistics-based cardinality (the
        /// encoded bounds cannot be decoded back to values).
        pred: Option<(excess_lang::BinOp, extra_model::Value)>,
    },
    /// Unnest a set/array reached from a parent binding or named object,
    /// extending each input environment.
    Unnest {
        /// Input.
        input: Box<Physical>,
        /// The dependent binding.
        binding: ResolvedRange,
    },
    /// Cross product: re-run `inner` for every outer environment
    /// (predicates have been pushed into the inputs).
    NestedLoop {
        /// Outer side.
        outer: Box<Physical>,
        /// Inner side (independent of the outer).
        inner: Box<Physical>,
    },
    /// Filter.
    Filter {
        /// Input.
        input: Box<Physical>,
        /// Predicate.
        pred: Expr,
    },
    /// Universal-quantification filter: keep input environments for which
    /// `pred` holds under *every* joint binding of `bindings`.
    UniversalFilter {
        /// Input.
        input: Box<Physical>,
        /// Universal bindings (dependency order).
        bindings: Vec<ResolvedRange>,
        /// Predicate.
        pred: Expr,
    },
    /// Projection.
    Project {
        /// Input.
        input: Box<Physical>,
        /// `(column name, expression)` pairs.
        targets: Vec<(String, Expr)>,
    },
    /// Sort.
    Sort {
        /// Input.
        input: Box<Physical>,
        /// Sort key.
        key: Expr,
        /// Ascending?
        asc: bool,
    },
    /// Hash join: build a hash table over `binding`'s collection once,
    /// then probe it with whole input batches, extending each input row
    /// with one member binding.
    ///
    /// Two modes, distinguished by `on`:
    /// - `on = None` (*deref hoist*): `key` evaluates to a reference
    ///   into the build collection; the hidden `binding.var` is bound to
    ///   the **dereferenced** member tuple (1:1 with the input). Probe
    ///   misses fall back to an ordinary store dereference, so results
    ///   match row-at-a-time evaluation exactly.
    /// - `on = Some(attr)` (*equi join*): the table is keyed on member
    ///   attribute `attr`; `binding.var` is bound to the **original**
    ///   member value (a reference for `{ own ref T }` collections, so
    ///   `is`-identity semantics are preserved). Null keys match
    ///   nothing, exactly like the `NestedLoop` + `Filter` it replaces.
    HashJoin {
        /// Probe side (the existing pipeline).
        input: Box<Physical>,
        /// The build-side binding (root must be a collection).
        binding: ResolvedRange,
        /// Probe key, evaluated against each input row.
        key: Expr,
        /// Build-side member attribute for an equi join; `None` selects
        /// reference (deref-hoist) mode.
        on: Option<String>,
    },
    /// Index nested-loop join: for each input row, probe a secondary
    /// index on `index.attr` with the value of `key` (equality only) and
    /// emit one output row per match, binding `binding.var` to the
    /// matching member.
    IndexJoin {
        /// Probe side (the existing pipeline).
        input: Box<Physical>,
        /// The matched binding (root must be a collection).
        binding: ResolvedRange,
        /// The index probed.
        index: IndexInfo,
        /// Probe key, evaluated against each input row.
        key: Expr,
    },
    /// Parallel exchange: partition the leftmost scan of `input` into
    /// morsels and fan the pipeline out to `dop` worker threads, merging
    /// the output batches back in deterministic scan order. Everything
    /// above the exchange stays single-threaded.
    Parallel {
        /// The pipeline to parallelize (scan → unnest/filter prefix).
        input: Box<Physical>,
        /// Degree of parallelism (worker thread count).
        dop: usize,
    },
}

fn indent(f: &mut fmt::Formatter<'_>, depth: usize) -> fmt::Result {
    for _ in 0..depth {
        write!(f, "  ")?;
    }
    Ok(())
}

impl Logical {
    fn fmt_at(&self, f: &mut fmt::Formatter<'_>, depth: usize) -> fmt::Result {
        indent(f, depth)?;
        match self {
            Logical::Unit => writeln!(f, "Unit"),
            Logical::Range { input, binding } => {
                writeln!(
                    f,
                    "Range {} over {}{}",
                    binding.var,
                    range_source(binding),
                    if binding.universal { " (all)" } else { "" }
                )?;
                input.fmt_at(f, depth + 1)
            }
            Logical::Select { input, pred } => {
                writeln!(f, "Select {pred}")?;
                input.fmt_at(f, depth + 1)
            }
            Logical::UniversalSelect {
                input,
                bindings,
                pred,
            } => {
                let vars: Vec<&str> = bindings.iter().map(|b| b.var.as_str()).collect();
                writeln!(f, "UniversalSelect forall {} : {pred}", vars.join(", "))?;
                input.fmt_at(f, depth + 1)
            }
            Logical::Project { input, targets } => {
                let cols: Vec<String> = targets.iter().map(|(n, e)| format!("{n} = {e}")).collect();
                writeln!(f, "Project [{}]", cols.join(", "))?;
                input.fmt_at(f, depth + 1)
            }
            Logical::Sort { input, key, asc } => {
                writeln!(f, "Sort by {key} {}", if *asc { "asc" } else { "desc" })?;
                input.fmt_at(f, depth + 1)
            }
        }
    }
}

/// Human-readable description of where a binding iterates.
pub fn range_source(b: &ResolvedRange) -> String {
    let root = match &b.root {
        excess_sema::RootSource::Collection(o) => o.name.clone(),
        excess_sema::RootSource::Object(o) => o.name.clone(),
        excess_sema::RootSource::Var(v) => v.clone(),
        excess_sema::RootSource::System(v) => format!("sys.{v}"),
    };
    if b.steps.is_empty() {
        root
    } else {
        format!("{root}.{}", b.steps.join("."))
    }
}

impl fmt::Display for Logical {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_at(f, 0)
    }
}

impl Physical {
    /// One-line operator label, shared by [`fmt::Display`] and the
    /// profiler's annotated plan tree.
    pub fn label(&self) -> String {
        match self {
            Physical::Unit => "Unit".into(),
            Physical::SeqScan { binding } => {
                format!("SeqScan {} over {}", binding.var, range_source(binding))
            }
            Physical::SystemScan { binding, .. } => {
                format!("SystemScan {} over {}", binding.var, range_source(binding))
            }
            Physical::IndexScan {
                binding,
                index,
                pred,
                ..
            } => {
                let bounds = match pred {
                    Some((op, v)) => format!(" ({} {op} {v})", index.attr),
                    None => String::new(),
                };
                format!(
                    "IndexScan {} over {} using {}{bounds}",
                    binding.var,
                    range_source(binding),
                    index.name
                )
            }
            Physical::Unnest { binding, .. } => {
                format!("Unnest {} over {}", binding.var, range_source(binding))
            }
            Physical::NestedLoop { .. } => "NestedLoop".into(),
            Physical::Filter { pred, .. } => format!("Filter {pred}"),
            Physical::UniversalFilter { bindings, pred, .. } => {
                let vars: Vec<&str> = bindings.iter().map(|b| b.var.as_str()).collect();
                format!("UniversalFilter forall {} : {pred}", vars.join(", "))
            }
            Physical::Project { targets, .. } => {
                let cols: Vec<String> = targets.iter().map(|(n, e)| format!("{n} = {e}")).collect();
                format!("Project [{}]", cols.join(", "))
            }
            Physical::Sort { key, asc, .. } => {
                format!("Sort by {key} {}", if *asc { "asc" } else { "desc" })
            }
            Physical::HashJoin {
                binding, key, on, ..
            } => match on {
                Some(attr) => format!(
                    "HashJoin {} over {} on {attr} = {key}",
                    binding.var,
                    range_source(binding)
                ),
                None => format!(
                    "HashJoin {} over {} on ref {key}",
                    binding.var,
                    range_source(binding)
                ),
            },
            Physical::IndexJoin {
                binding,
                index,
                key,
                ..
            } => format!(
                "IndexJoin {} over {} using {} on {} = {key}",
                binding.var,
                range_source(binding),
                index.name,
                index.attr
            ),
            Physical::Parallel { dop, .. } => format!("Parallel dop={dop}"),
        }
    }

    fn fmt_at(&self, f: &mut fmt::Formatter<'_>, depth: usize) -> fmt::Result {
        indent(f, depth)?;
        writeln!(f, "{}", self.label())?;
        match self {
            Physical::Unit
            | Physical::SeqScan { .. }
            | Physical::SystemScan { .. }
            | Physical::IndexScan { .. } => Ok(()),
            Physical::NestedLoop { outer, inner } => {
                outer.fmt_at(f, depth + 1)?;
                inner.fmt_at(f, depth + 1)
            }
            Physical::Unnest { input, .. }
            | Physical::Filter { input, .. }
            | Physical::UniversalFilter { input, .. }
            | Physical::Project { input, .. }
            | Physical::Sort { input, .. }
            | Physical::HashJoin { input, .. }
            | Physical::IndexJoin { input, .. }
            | Physical::Parallel { input, .. } => input.fmt_at(f, depth + 1),
        }
    }

    /// Variables bound by this subtree.
    pub fn bound_vars(&self) -> Vec<String> {
        match self {
            Physical::Unit => Vec::new(),
            Physical::SeqScan { binding }
            | Physical::SystemScan { binding, .. }
            | Physical::IndexScan { binding, .. } => {
                vec![binding.var.clone()]
            }
            Physical::Unnest { input, binding }
            | Physical::HashJoin { input, binding, .. }
            | Physical::IndexJoin { input, binding, .. } => {
                let mut v = input.bound_vars();
                v.push(binding.var.clone());
                v
            }
            Physical::NestedLoop { outer, inner } => {
                let mut v = outer.bound_vars();
                v.extend(inner.bound_vars());
                v
            }
            Physical::Filter { input, .. }
            | Physical::UniversalFilter { input, .. }
            | Physical::Project { input, .. }
            | Physical::Sort { input, .. }
            | Physical::Parallel { input, .. } => input.bound_vars(),
        }
    }
}

impl fmt::Display for Physical {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_at(f, 0)
    }
}
