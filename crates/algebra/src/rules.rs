//! Rewrite rules: conjunct splitting, free-variable analysis, and literal
//! constant evaluation — the building blocks the physical planner applies.
//!
//! The rule set follows the EXODUS optimizer-generator philosophy: each
//! rule is a small syntactic transformation justified by algebraic
//! equivalence; the planner composes them.

use std::collections::HashSet;

use excess_lang::{Aggregate, BinOp, Expr, Lit};
use extra_model::{AdtRegistry, Value};

/// Split a predicate into its top-level conjuncts.
pub fn conjuncts(e: &Expr) -> Vec<Expr> {
    match e {
        Expr::Binary(BinOp::And, a, b) => {
            let mut out = conjuncts(a);
            out.extend(conjuncts(b));
            out
        }
        other => vec![other.clone()],
    }
}

/// Conjoin a list of predicates (`None` for the empty list).
pub fn conjoin(preds: Vec<Expr>) -> Option<Expr> {
    preds
        .into_iter()
        .reduce(|a, b| Expr::Binary(BinOp::And, Box::new(a), Box::new(b)))
}

/// Free variable-position names in an expression (includes named-object
/// uses; the planner intersects with actual binding names).
pub fn free_vars(e: &Expr) -> HashSet<String> {
    let mut out = HashSet::new();
    collect_vars(e, &mut out);
    out
}

fn collect_vars(e: &Expr, out: &mut HashSet<String>) {
    match e {
        Expr::Var(n) => {
            out.insert(n.clone());
        }
        Expr::Lit(_) => {}
        Expr::Path(b, _) => collect_vars(b, out),
        Expr::Index(b, i) => {
            collect_vars(b, out);
            collect_vars(i, out);
        }
        Expr::Call { recv, args, .. } => {
            if let Some(r) = recv {
                collect_vars(r, out);
            }
            for a in args {
                collect_vars(a, out);
            }
        }
        Expr::Unary(_, a) => collect_vars(a, out),
        Expr::Binary(_, a, b) => {
            collect_vars(a, out);
            collect_vars(b, out);
        }
        Expr::UserOp(_, args) | Expr::SetLit(args) => {
            for a in args {
                collect_vars(a, out);
            }
        }
        Expr::Agg(Aggregate {
            arg,
            over,
            by,
            qual,
            ..
        }) => {
            // `over` variables are consumed by the aggregate; they are not
            // free in the enclosing query.
            let mut inner = HashSet::new();
            if let Some(a) = arg {
                collect_vars(a, &mut inner);
            }
            for b in by {
                collect_vars(b, &mut inner);
            }
            if let Some(q) = qual {
                collect_vars(q, &mut inner);
            }
            for v in over {
                inner.remove(v);
            }
            out.extend(inner);
        }
        Expr::TupleLit(fields) => {
            for (_, v) in fields {
                collect_vars(v, out);
            }
        }
    }
}

/// Evaluate a literal-constant expression at plan time (literals and ADT
/// literal constructors); `None` if not constant.
pub fn const_eval(e: &Expr, adts: &AdtRegistry) -> Option<Value> {
    match e {
        Expr::Lit(Lit::Int(i)) => Some(Value::Int(*i)),
        Expr::Lit(Lit::Float(f)) => Some(Value::Float(*f)),
        Expr::Lit(Lit::Str(s)) => Some(Value::Str(s.clone())),
        Expr::Lit(Lit::Bool(b)) => Some(Value::Bool(*b)),
        Expr::Lit(Lit::Null) => Some(Value::Null),
        Expr::Unary(excess_lang::UnOp::Neg, inner) => match const_eval(inner, adts)? {
            Value::Int(i) => Some(Value::Int(-i)),
            Value::Float(f) => Some(Value::Float(-f)),
            _ => None,
        },
        Expr::Call {
            recv: None,
            name,
            args,
        } if args.len() == 1 => {
            let id = adts.lookup(name).ok()?;
            match &args[0] {
                Expr::Lit(Lit::Str(s)) => adts.parse(id, s).ok(),
                _ => None,
            }
        }
        _ => None,
    }
}

/// An index-usable comparison extracted from a conjunct:
/// `var.attr op constant`.
#[derive(Debug, Clone)]
pub struct IndexablePred {
    /// The scan variable.
    pub var: String,
    /// The (single-step) attribute compared.
    pub attr: String,
    /// The comparison, normalized so the attribute is on the left.
    pub op: BinOp,
    /// The constant side.
    pub value: Value,
}

/// Try to view a conjunct as an index-usable predicate for `var`.
pub fn indexable_pred(c: &Expr, var: &str, adts: &AdtRegistry) -> Option<IndexablePred> {
    let Expr::Binary(op, lhs, rhs) = c else {
        return None;
    };
    let flip = |op: BinOp| match op {
        BinOp::Lt => BinOp::Gt,
        BinOp::Le => BinOp::Ge,
        BinOp::Gt => BinOp::Lt,
        BinOp::Ge => BinOp::Le,
        other => other,
    };
    let as_attr = |e: &Expr| -> Option<String> {
        match e {
            Expr::Path(base, attr) => match &**base {
                Expr::Var(v) if v == var => Some(attr.clone()),
                _ => None,
            },
            _ => None,
        }
    };
    if !matches!(
        op,
        BinOp::Eq | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
    ) {
        return None;
    }
    if let (Some(attr), Some(value)) = (as_attr(lhs), const_eval(rhs, adts)) {
        return Some(IndexablePred {
            var: var.into(),
            attr,
            op: *op,
            value,
        });
    }
    if let (Some(attr), Some(value)) = (as_attr(rhs), const_eval(lhs, adts)) {
        return Some(IndexablePred {
            var: var.into(),
            attr,
            op: flip(*op),
            value,
        });
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use excess_lang::{parse_statement, OperatorTable, Stmt};

    fn qual(src: &str) -> Expr {
        match parse_statement(&format!("retrieve (x) where {src}"), &OperatorTable::new()).unwrap()
        {
            Stmt::Retrieve { qual: Some(q), .. } => q,
            _ => unreachable!(),
        }
    }

    #[test]
    fn conjunct_splitting() {
        let q = qual("a = 1 and b = 2 and (c = 3 or d = 4)");
        let cs = conjuncts(&q);
        assert_eq!(cs.len(), 3);
        // or is not split.
        assert!(matches!(cs[2], Expr::Binary(BinOp::Or, _, _)));
        let back = conjoin(cs).unwrap();
        assert_eq!(conjuncts(&back).len(), 3);
    }

    #[test]
    fn free_vars_sees_through_paths_not_over() {
        let q = qual("E.dept.floor = 2 and count(C over C where C.age > K.age) > 0");
        let vars = free_vars(&q);
        assert!(vars.contains("E"));
        assert!(vars.contains("K"), "free inside the aggregate");
        assert!(!vars.contains("C"), "consumed by over");
    }

    #[test]
    fn const_eval_literals_and_adts() {
        let adts = AdtRegistry::with_builtins();
        assert_eq!(const_eval(&qual("x = 3").clone(), &adts), None);
        let three = Expr::Lit(Lit::Int(3));
        assert_eq!(const_eval(&three, &adts), Some(Value::Int(3)));
        let neg = Expr::Unary(excess_lang::UnOp::Neg, Box::new(three));
        assert_eq!(const_eval(&neg, &adts), Some(Value::Int(-3)));
        let date = Expr::Call {
            recv: None,
            name: "Date".into(),
            args: vec![Expr::Lit(Lit::Str("1/2/1987".into()))],
        };
        assert!(matches!(const_eval(&date, &adts), Some(Value::Adt(_, _))));
    }

    #[test]
    fn indexable_pred_extraction() {
        let adts = AdtRegistry::with_builtins();
        let p = indexable_pred(&qual("E.age >= 30"), "E", &adts).unwrap();
        assert_eq!(p.attr, "age");
        assert_eq!(p.op, BinOp::Ge);
        assert_eq!(p.value, Value::Int(30));
        // Flipped side normalizes.
        let p = indexable_pred(&qual("30 > E.age"), "E", &adts).unwrap();
        assert_eq!(p.op, BinOp::Lt);
        // Wrong variable.
        assert!(indexable_pred(&qual("D.age = 30"), "E", &adts).is_none());
        // Non-constant side.
        assert!(indexable_pred(&qual("E.age = D.age"), "E", &adts).is_none());
        // Deep path is not single-attribute indexable.
        assert!(indexable_pred(&qual("E.dept.floor = 2"), "E", &adts).is_none());
        // ADT constant.
        let p = indexable_pred(&qual("E.birthday < Date(\"1/1/1960\")"), "E", &adts).unwrap();
        assert!(matches!(p.value, Value::Adt(_, _)));
    }
}
