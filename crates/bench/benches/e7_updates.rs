//! E7 — update semantics: cascade deletion of `own` component sets vs
//! null-out of shared references, as component count grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use exodus_bench::{university, DeptMode};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e7_updates");
    g.sample_size(10);
    for kids in [0usize, 4, 16] {
        g.bench_function(BenchmarkId::new("cascade_delete", kids), |b| {
            b.iter_with_setup(
                || exodus_bench::university_cascade(500, kids),
                |db| {
                    let mut s = db.session();
                    s.run("range of E is Employees; delete E where E.age >= 20")
                        .unwrap();
                },
            )
        });
    }
    // Null-out: delete departments referenced by many employees.
    for n in [500usize, 2_000] {
        g.bench_function(BenchmarkId::new("nullout_refs", n), |b| {
            b.iter_with_setup(
                || university(4, n, 0, DeptMode::Ref, 16384),
                |u| {
                    let mut s = u.db.session();
                    s.run("range of D is Departments; delete D where D.floor >= 1")
                        .unwrap();
                },
            )
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
