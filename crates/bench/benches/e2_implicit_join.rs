//! E2 — implicit joins: path-expression depth sweep (`X.next.next...`).
//!
//! The paper argues associative path syntax is optimizable; the cost per
//! added hop should stay roughly linear (one OID dereference per level).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use exodus_bench::chain;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e2_implicit_join");
    g.sample_size(10);
    let n = 2_000usize;
    for depth in [1usize, 2, 3, 4] {
        let db = chain(depth, n);
        let mut s = db.session();
        let path = (0..depth).map(|_| "next").collect::<Vec<_>>().join(".");
        let q = format!("retrieve (sum(X.{path}.tag over X)) from X in C0");
        g.bench_with_input(BenchmarkId::new("depth", depth), &depth, |b, _| {
            b.iter(|| {
                let r = s.query(&q).unwrap();
                assert_eq!(r.rows.len(), 1);
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
