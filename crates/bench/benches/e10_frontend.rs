//! E10 — front-end throughput: lexing + parsing the full statement corpus
//! (every paper figure plus representative DML).

use criterion::{criterion_group, criterion_main, Criterion};
use excess_lang::{parse_statement, OperatorTable};
use exodus_bench::statement_corpus;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e10_frontend");
    let ops = OperatorTable::new();
    let corpus = statement_corpus();
    g.bench_function("parse_corpus", |b| {
        b.iter(|| {
            for stmt in &corpus {
                let ast = parse_statement(stmt, &ops).unwrap();
                criterion::black_box(ast);
            }
        })
    });
    // Round-trip through the printer as a stress on both directions.
    g.bench_function("parse_print_parse", |b| {
        b.iter(|| {
            for stmt in &corpus {
                let ast = parse_statement(stmt, &ops).unwrap();
                let printed = ast.to_string();
                let again = parse_statement(&printed, &ops).unwrap();
                criterion::black_box(again);
            }
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
