//! E5 — grouped aggregation (`by`, one cached pass over employees) vs a
//! correlated per-row subquery (employees rescanned for every outer row).
//!
//! Both forms compute, for each employee, the average salary of that
//! employee's department. The `by` form builds the group table once; the
//! correlated form is quadratic.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use exodus_bench::{university, DeptMode};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e5_aggregates");
    g.sample_size(10);
    for n in [200usize, 500, 1_000] {
        let u = university(16, n, 0, DeptMode::Ref, 16384);
        let mut s = u.db.session();
        g.bench_with_input(BenchmarkId::new("grouped_by", n), &n, |b, _| {
            b.iter(|| {
                let r = s
                    .query(
                        "retrieve (E.name, a = avg(E.salary over E by E.dept)) \
                         from E in Employees",
                    )
                    .unwrap();
                assert_eq!(r.rows.len(), n);
            })
        });
        g.bench_with_input(BenchmarkId::new("correlated_subquery", n), &n, |b, _| {
            b.iter(|| {
                let r = s
                    .query(
                        "retrieve (E.name, a = avg(E2.salary over E2 where E2.dept is E.dept)) \
                         from E in Employees, E2 in Employees",
                    )
                    .unwrap();
                assert_eq!(r.rows.len(), n);
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
