//! E6 — EXCESS function invocation overhead vs the inline expression, and
//! dispatch through the inheritance lattice (paper §4.2.1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use exodus_bench::{university, DeptMode};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e6_functions");
    g.sample_size(10);
    let u = university(10, 5_000, 0, DeptMode::Ref, 16384);
    let mut s = u.db.session();
    s.run(
        "define function Yearly (p: Person) returns float8 as retrieve (p.age * 1000.0); \
         define function Bonus (e: Employee) returns float8 as retrieve (e.salary * 0.1); \
         range of E is Employees",
    )
    .unwrap();
    g.bench_function(BenchmarkId::new("inline", "expr"), |b| {
        b.iter(|| {
            let r = s.query("retrieve (sum(E.salary * 0.1 over E))").unwrap();
            let _ = r;
        })
    });
    g.bench_function(BenchmarkId::new("function", "direct"), |b| {
        b.iter(|| {
            let r = s.query("retrieve (sum(E.Bonus() over E))").unwrap();
            let _ = r;
        })
    });
    // Inherited: Yearly is defined for Person, invoked on Employees.
    g.bench_function(BenchmarkId::new("function", "inherited"), |b| {
        b.iter(|| {
            let r = s.query("retrieve (sum(E.Yearly() over E))").unwrap();
            let _ = r;
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
