//! E4 — NF²-style nested sets vs the flattened 1NF encoding.
//!
//! The same logical query — every kid's name with the parent's floor —
//! through (a) EXTRA's nested `kids` set and (b) a flat Kids collection
//! joined back to employees by reference.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use exodus_bench::{flat_kids, university, DeptMode};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e4_nested_sets");
    g.sample_size(10);
    let n = 500usize;
    for fanout in [1usize, 4, 16] {
        let nested = university(10, n, fanout, DeptMode::Ref, 16384);
        let mut sn = nested.db.session();
        g.bench_with_input(BenchmarkId::new("nested", fanout), &fanout, |b, _| {
            b.iter(|| {
                let r = sn
                    .query(
                        "retrieve (C.name, f = Employees.dept.floor) \
                         from C in Employees.kids",
                    )
                    .unwrap();
                let _ = r;
            })
        });
        let flat = flat_kids(n, fanout);
        let mut sf = flat.session();
        g.bench_with_input(BenchmarkId::new("flat_join", fanout), &fanout, |b, _| {
            b.iter(|| {
                let r = sf
                    .query(
                        "retrieve (K.name, E.floor) from K in Kids, E in Emps \
                         where K.parent is E",
                    )
                    .unwrap();
                let _ = r;
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
