//! E9 — the storage substrate: scan throughput vs buffer-pool size
//! (locality), straight against the storage manager.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use exodus_storage::StorageManager;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e9_storage");
    g.sample_size(10);
    // ~2000 pages of data.
    let n_records = 100_000usize;
    let payload = vec![7u8; 128];
    for pool_pages in [64usize, 512, 4096] {
        let sm = StorageManager::in_memory(pool_pages);
        let f = sm.create_file().unwrap();
        for _ in 0..n_records {
            sm.insert(f, &payload).unwrap();
        }
        g.bench_with_input(
            BenchmarkId::new("scan_pool", pool_pages),
            &pool_pages,
            |b, _| {
                b.iter(|| {
                    let count = sm.scan(f).count();
                    assert_eq!(count, n_records);
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
