//! E8 — the rule-based optimizer: full optimization vs ablations vs the
//! naive evaluator, on a three-collection query mix.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use excess_algebra::PlannerConfig;
use exodus_bench::{university_with, DeptMode, University};

/// Build the fixture with the planner fixed at construction time; the
/// deterministic load means every ablation sees identical data.
fn fixture(cfg: PlannerConfig) -> University {
    let u = university_with(50, 5_000, 0, DeptMode::Ref, 16384, |b| b.planner(cfg));
    u.db.run(
        "define index emp_salary on Employees (salary); \
           create { own ref Department } Watch",
    )
    .unwrap();
    u.db.run(
        "range of D is Departments; \
           append to Watch (dname = D.dname, floor = D.floor, budget = D.budget) \
           where D.floor >= 9",
    )
    .unwrap();
    u
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e8_optimizer");
    g.sample_size(10);
    // Selective salary predicate + join against the small Watch set.
    let q = "retrieve (E.name, W.dname) \
             from E in Employees, W in Watch \
             where E.salary > 97000.0 and E.dept.floor = W.floor";
    let configs = [
        ("naive", PlannerConfig::naive()),
        (
            "pushdown_only",
            PlannerConfig {
                pushdown: true,
                use_indexes: false,
                reorder_joins: false,
            },
        ),
        ("full", PlannerConfig::default()),
    ];
    for (label, cfg) in configs {
        let u = fixture(cfg);
        let mut s = u.db.session();
        g.bench_function(BenchmarkId::new("config", label), |b| {
            b.iter(|| {
                let r = s.query(q).unwrap();
                let _ = r;
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
