//! E8 — the rule-based optimizer: full optimization vs ablations vs the
//! naive evaluator, on a three-collection query mix.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use excess_algebra::PlannerConfig;
use exodus_bench::{university, DeptMode};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e8_optimizer");
    g.sample_size(10);
    let u = university(50, 5_000, 0, DeptMode::Ref, 16384);
    let mut s = u.db.session();
    s.run(
        "define index emp_salary on Employees (salary); \
           create { own ref Department } Watch",
    )
    .unwrap();
    s.run(
        "range of D is Departments; \
           append to Watch (dname = D.dname, floor = D.floor, budget = D.budget) \
           where D.floor >= 9",
    )
    .unwrap();
    // Selective salary predicate + join against the small Watch set.
    let q = "retrieve (E.name, W.dname) \
             from E in Employees, W in Watch \
             where E.salary > 97000.0 and E.dept.floor = W.floor";
    let configs = [
        ("naive", PlannerConfig::naive()),
        (
            "pushdown_only",
            PlannerConfig {
                pushdown: true,
                use_indexes: false,
                reorder_joins: false,
            },
        ),
        ("full", PlannerConfig::default()),
    ];
    for (label, cfg) in configs {
        u.db.set_planner(cfg);
        g.bench_function(BenchmarkId::new("config", label), |b| {
            b.iter(|| {
                let r = s.query(q).unwrap();
                let _ = r;
            })
        });
    }
    u.db.set_planner(PlannerConfig::default());
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
