//! E1 — uniform own/ref treatment: the storage cost behind the paper's
//! "casual users can ignore the distinction".
//!
//! Scans N employees reading `E.dept.floor` with the department embedded
//! (`own`, value semantics) vs shared (`ref`, an OID chase per row).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use exodus_bench::{university, DeptMode};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e1_own_vs_ref");
    g.sample_size(10);
    for n in [1_000usize, 10_000] {
        for (label, mode) in [("own", DeptMode::Own), ("ref", DeptMode::Ref)] {
            let u = university(20, n, 0, mode, 8192);
            let mut s = u.db.session();
            s.run("range of E is Employees").unwrap();
            g.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
                b.iter(|| {
                    let r = s.query("retrieve (sum(E.dept.budget over E))").unwrap();
                    assert_eq!(r.rows.len(), 1);
                })
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
