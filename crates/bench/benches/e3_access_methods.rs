//! E3 — access-method extensibility: B+-tree vs sequential scan across
//! selectivities, including an ADT (Date) key — the applicability-table
//! story of §4.1.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use excess_algebra::PlannerConfig;
use exodus_bench::{university, DeptMode};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e3_access_methods");
    g.sample_size(10);
    let n = 20_000usize;
    let u = university(20, n, 0, DeptMode::Ref, 16384);
    let mut s = u.db.session();
    s.run(
        "define index emp_salary on Employees (salary); \
           define index emp_hired on Employees (hired); \
           range of E is Employees",
    )
    .unwrap();
    // Salary is uniform in [20k, 100k): thresholds select ~0.1%, ~10%, ~50%.
    for (label, lo) in [
        ("sel0.1%", 99_920.0),
        ("sel10%", 92_000.0),
        ("sel50%", 60_000.0),
    ] {
        let q = format!("retrieve (E.name) where E.salary >= {lo}");
        for (cfg_label, cfg) in [
            (
                "seqscan",
                PlannerConfig {
                    use_indexes: false,
                    ..Default::default()
                },
            ),
            ("index", PlannerConfig::default()),
        ] {
            u.db.set_planner(cfg);
            g.bench_function(BenchmarkId::new(cfg_label, label), |b| {
                b.iter(|| {
                    let r = s.query(&q).unwrap();
                    criterion::black_box(r);
                })
            });
        }
    }
    // ADT-keyed predicate: the Date index applies because Date is ordered.
    u.db.set_planner(PlannerConfig::default());
    for (cfg_label, cfg) in [
        (
            "seqscan",
            PlannerConfig {
                use_indexes: false,
                ..Default::default()
            },
        ),
        ("index", PlannerConfig::default()),
    ] {
        u.db.set_planner(cfg);
        g.bench_function(BenchmarkId::new(cfg_label, "date_eq"), |b| {
            b.iter(|| {
                let r = s
                    .query("retrieve (E.name) where E.hired < Date(\"1/10/1950\")")
                    .unwrap();
                let _ = r;
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
