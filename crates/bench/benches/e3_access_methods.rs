//! E3 — access-method extensibility: B+-tree vs sequential scan across
//! selectivities, including an ADT (Date) key — the applicability-table
//! story of §4.1.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use excess_algebra::PlannerConfig;
use exodus_bench::{university_with, DeptMode, University};

/// Build the 20k-employee fixture with the planner fixed at construction
/// time (the load is deterministic, so both fixtures hold the same data).
fn fixture(cfg: PlannerConfig) -> University {
    let u = university_with(20, 20_000, 0, DeptMode::Ref, 16384, |b| b.planner(cfg));
    u.db.run(
        "define index emp_salary on Employees (salary); \
           define index emp_hired on Employees (hired)",
    )
    .unwrap();
    u
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e3_access_methods");
    g.sample_size(10);
    let configs = [
        (
            "seqscan",
            fixture(PlannerConfig {
                use_indexes: false,
                ..Default::default()
            }),
        ),
        ("index", fixture(PlannerConfig::default())),
    ];
    // Salary is uniform in [20k, 100k): thresholds select ~0.1%, ~10%, ~50%.
    for (label, lo) in [
        ("sel0.1%", 99_920.0),
        ("sel10%", 92_000.0),
        ("sel50%", 60_000.0),
    ] {
        let q = format!("retrieve (E.name) where E.salary >= {lo}");
        for (cfg_label, u) in &configs {
            let mut s = u.db.session();
            s.run("range of E is Employees").unwrap();
            g.bench_function(BenchmarkId::new(*cfg_label, label), |b| {
                b.iter(|| {
                    let r = s.query(&q).unwrap();
                    criterion::black_box(r);
                })
            });
        }
    }
    // ADT-keyed predicate: the Date index applies because Date is ordered.
    for (cfg_label, u) in &configs {
        let mut s = u.db.session();
        s.run("range of E is Employees").unwrap();
        g.bench_function(BenchmarkId::new(*cfg_label, "date_eq"), |b| {
            b.iter(|| {
                let r = s
                    .query("retrieve (E.name) where E.hired < Date(\"1/10/1950\")")
                    .unwrap();
                let _ = r;
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
