//! Metrics determinism across degrees of parallelism.
//!
//! Counter deltas for an identical workload must not depend on thread
//! scheduling: every run at a given DOP yields *identical* deltas, and
//! DOP-independent counters agree across DOPs. This pins the
//! `HeapFile::partitions` chain cache (the old chain walk re-pinned
//! every heap page on each parallel scan, inflating pool hits at DOP 4
//! by the heap's page count per query) and guards against future
//! scheduling-dependent accounting sneaking in.
//!
//! The workload queries an own-mode snapshot collection (built with
//! `retrieve into`), so scans decode inline values and never chase
//! references: ref-chasing queries populate worker-local deref caches,
//! whose pin pattern legitimately depends on which worker claims which
//! morsel.

use exodus_bench::{university_with, DeptMode};
use exodus_db::MetricsSnapshot;

/// Deref-free selection over the 10k-member snapshot (~1.4%
/// selectivity).
const Q: &str = "retrieve (S.sal) where S.sal > 99000.0";

/// Matching members of [`Q`].
const ROWS: usize = 140;

/// Counter deltas over three identical queries, measured after one
/// warm-up execution (the warm-up lets DOP > 1 build the partition
/// chain cache, whose one-time page walk is a real, documented cost).
fn workload_deltas(dop: usize) -> Vec<(String, u64)> {
    let u = university_with(20, 10_000, 0, DeptMode::Ref, 65_536, |b| {
        b.worker_threads(dop)
    });
    let mut s = u.db.session();
    s.run("range of E is Employees").unwrap();
    s.run("retrieve into Snap (sal = E.salary) from E in Employees")
        .unwrap();
    s.run("range of S is Snap").unwrap();
    s.query(Q).unwrap();
    let before = u.db.metrics_snapshot().unwrap();
    for _ in 0..3 {
        assert_eq!(s.query(Q).unwrap().rows.len(), ROWS);
    }
    let after = u.db.metrics_snapshot().unwrap();
    after
        .check_monotonic_since(&before)
        .expect("counters moved backwards");
    MetricsSnapshot::counter_deltas(&before, &after)
}

/// Counters whose values legitimately depend on the degree of
/// parallelism — still deterministic *within* a DOP (see
/// [`pool_counters_pinned_at_dop_1_and_4`] for the exact per-DOP
/// values):
///
/// * `exec_morsels_total` / `exec_batches_total`: the parallel plan
///   claims morsels and chunks each one independently; the serial plan
///   batches one continuous scan.
/// * `storage_pool_hits_total`: morsel-boundary re-pins follow the
///   partition geometry (a function of `dop × MORSELS_PER_WORKER`),
///   and at DOP ≥ 2 the planner costs the parallel candidate, which
///   re-reads the collection count from its header page a constant
///   four extra times per query.
const DOP_DEPENDENT: [&str; 3] = [
    "exec_batches_total",
    "exec_morsels_total",
    "storage_pool_hits_total",
];

#[test]
fn counters_identical_across_dop() {
    let d1 = workload_deltas(1);
    let d1_again = workload_deltas(1);
    assert_eq!(d1, d1_again, "DOP-1 counter deltas are not deterministic");

    let d4 = workload_deltas(4);
    let d4_again = workload_deltas(4);
    // Which worker claims which morsel varies run to run; the totals
    // may not.
    assert_eq!(d4, d4_again, "DOP-4 counter deltas are not deterministic");

    let strip = |d: &[(String, u64)]| -> Vec<(String, u64)> {
        d.iter()
            .filter(|(n, _)| !DOP_DEPENDENT.contains(&n.as_str()))
            .cloned()
            .collect()
    };
    assert_eq!(
        strip(&d1),
        strip(&d4),
        "DOP-independent counters diverged between DOP 1 and DOP 4 \
         (full deltas: DOP1 {d1:?} vs DOP4 {d4:?})"
    );
}

/// Exact page-pin accounting, pinned per DOP. Every heap record now
/// carries a 16-byte MVCC version-stamp header, so the 10k-member
/// snapshot heap spans 39 pages (it was 19 before versioning); it still
/// sits entirely in the 64Ki-page pool, so every pin is a hit and
/// misses stay zero. Per query:
///
/// * DOP 1 — 49 pins: the header (chain start), each of the 39 pages
///   once, and 9 re-pins where a 1024-row batch boundary lands
///   mid-page.
/// * DOP 4 — 44 pins: the header (`member_count` gate), each page once
///   across all morsels (cached partitions pin nothing; each 3-page
///   morsel holds under 1024 rows, so no chunk-boundary re-pins), and
///   4 planner pins — costing the parallel candidate re-reads the
///   collection count from the header via `leftmost_scan_rows`,
///   `cost`, and `cardinality`.
#[test]
fn pool_counters_pinned_at_dop_1_and_4() {
    let d1 = workload_deltas(1);
    let d4 = workload_deltas(4);
    let counter = |d: &[(String, u64)], name: &str| -> u64 {
        d.iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    };
    for (dop, d, hits) in [(1, &d1, 147), (4, &d4, 132)] {
        assert_eq!(
            counter(d, "storage_pool_hits_total"),
            hits,
            "DOP-{dop} pool hits moved; was 3 × {} per the breakdown above",
            hits / 3
        );
        assert_eq!(counter(d, "storage_pool_misses_total"), 0, "DOP-{dop}");
        assert_eq!(
            counter(d, "exec_rows_total"),
            3 * ROWS as u64,
            "DOP-{dop}; was 3 × {ROWS} matching members"
        );
        assert_eq!(counter(d, "db_statements_total"), 3, "DOP-{dop}");
        assert_eq!(counter(d, "db_statements_retrieve_total"), 3, "DOP-{dop}");
        // The workload is deref-free by construction (see the module
        // doc), so the dereference-cache counters must not move at any
        // DOP.
        for c in [
            "exec_deref_cache_hits_total",
            "exec_deref_cache_misses_total",
            "exec_deref_cache_full_total",
        ] {
            assert_eq!(counter(d, c), 0, "DOP-{dop} {c}: deref-free workload");
        }
    }
    // The DOP-dependent executor counters, pinned per DOP: DOP 1 never
    // touches the morsel queue; DOP 4 splits the 39 pages into 13
    // morsels per query, each small enough to chunk into exactly one
    // batch.
    assert_eq!(counter(&d1, "exec_morsels_total"), 0);
    assert_eq!(counter(&d1, "exec_batches_total"), 30);
    assert_eq!(counter(&d4, "exec_morsels_total"), 39);
    assert_eq!(counter(&d4, "exec_batches_total"), 39);
}

/// Dereference-cache counters, pinned serially (ref-chasing workloads
/// are only DOP-deterministic at DOP 1: worker-local caches make hit
/// patterns depend on morsel claiming).
#[test]
fn deref_cache_counters_pinned() {
    let counter = |d: &[(String, u64)], name: &str| -> u64 {
        d.iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    };
    let deltas = |n_depts: usize, n_emps: usize, q: &str, rows: usize| {
        let u = university_with(n_depts, n_emps, 0, DeptMode::Ref, 65_536, |b| b);
        let mut s = u.db.session();
        s.run("range of E is Employees").unwrap();
        let before = u.db.metrics_snapshot().unwrap();
        assert_eq!(s.query(q).unwrap().rows.len(), rows);
        let after = u.db.metrics_snapshot().unwrap();
        MetricsSnapshot::counter_deltas(&before, &after)
    };

    // 10k employees over 20 departments. Scan rows bind `E` as a
    // reference, so `E.dept` skip-decodes per employee (10 000 misses,
    // every object distinct), then `.budget` misses once per department
    // and hits for the other 9 980 rows. The 10 020 cache inserts
    // overflow the 4 096-entry cap; the 5 924 dropped inserts —
    // previously silent — are counted.
    let d = deltas(20, 10_000, "retrieve (E.dept.budget)", 10_000);
    assert_eq!(counter(&d, "exec_deref_cache_hits_total"), 9_980);
    assert_eq!(counter(&d, "exec_deref_cache_misses_total"), 10_020);
    assert_eq!(counter(&d, "exec_deref_cache_full_total"), 5_924);

    // 5k employees over 5k departments (seeded-random assignment hits
    // 3 606 distinct ones): 5 000 `E.dept` misses + 3 606 first-touch
    // budget misses = 8 606, the remaining 1 394 rows hit, and the
    // 8 606 − 4 096 = 4 510 over-cap inserts are dropped and counted.
    let d = deltas(5_000, 5_000, "retrieve (E.dept.budget)", 5_000);
    assert_eq!(counter(&d, "exec_deref_cache_hits_total"), 1_394);
    assert_eq!(counter(&d, "exec_deref_cache_misses_total"), 8_606);
    assert_eq!(counter(&d, "exec_deref_cache_full_total"), 4_510);
}
