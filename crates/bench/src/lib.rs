//! Workload generators for the experiment suite (EXPERIMENTS.md).
//!
//! The paper has no performance evaluation, so these workloads quantify
//! the design axes it argues qualitatively — see DESIGN.md §6 for the
//! experiment index. Everything is deterministic (seeded RNG) so runs are
//! reproducible.

#![deny(rustdoc::broken_intra_doc_links)]
use std::sync::Arc;

use exodus_db::Database;
use exodus_storage::StorageManager;
use extra_model::Value;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic seed for all workloads.
pub const SEED: u64 = 0x0EC0DE5;

/// How an employee's `dept` attribute is declared — the E1 axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeptMode {
    /// `dept: Department` — an embedded copy (value semantics).
    Own,
    /// `dept: ref Department` — a shared reference.
    Ref,
}

/// A generated university database.
pub struct University {
    /// The database.
    pub db: Arc<Database>,
    /// Employee count.
    pub n_employees: usize,
    /// Department count.
    pub n_departments: usize,
}

/// Department tuple: `(dname, floor, budget)`.
fn department(i: usize) -> Value {
    Value::Tuple(vec![
        Value::Str(format!("dept{i:04}")),
        Value::Int((i % 10) as i64 + 1),
        Value::Float(50_000.0 + (i as f64) * 1000.0),
    ])
}

/// Build the standard university schema and load it.
///
/// * `n_departments`, `n_employees` — collection sizes.
/// * `kids` — children per employee (nested-set fan-out).
/// * `dept_mode` — own (embedded) vs ref (shared) department attribute.
/// * `pool_pages` — buffer-pool frames (E9 locality axis).
pub fn university(
    n_departments: usize,
    n_employees: usize,
    kids: usize,
    dept_mode: DeptMode,
    pool_pages: usize,
) -> University {
    university_with(
        n_departments,
        n_employees,
        kids,
        dept_mode,
        pool_pages,
        |b| b,
    )
}

/// [`university`], with extra construction-time configuration applied to
/// the [`exodus_db::DatabaseBuilder`] (batch size, worker threads, planner rules,
/// profiling). The load is deterministic, so two universities built at
/// the same scale but different configurations hold identical data.
pub fn university_with(
    n_departments: usize,
    n_employees: usize,
    kids: usize,
    dept_mode: DeptMode,
    pool_pages: usize,
    configure: impl FnOnce(exodus_db::DatabaseBuilder) -> exodus_db::DatabaseBuilder,
) -> University {
    let db = configure(Database::builder().storage(StorageManager::in_memory(pool_pages)))
        .build()
        .expect("bench database configuration is valid");
    let mut s = db.session();
    let dept_decl = match dept_mode {
        DeptMode::Own => "dept: Department",
        DeptMode::Ref => "dept: ref Department",
    };
    s.run(&format!(
        r#"
        define type Department (dname: varchar, floor: int4, budget: float8);
        define type Person (name: varchar, age: int4, kids: {{ own Person }});
        define type Employee inherits Person ({dept_decl}, salary: float8, hired: Date);
        create {{ own ref Department }} Departments;
        create {{ own ref Employee }} Employees;
        "#
    ))
    .unwrap();

    let dept_oids = db
        .bulk_append("Departments", (0..n_departments).map(department).collect())
        .unwrap();

    let mut rng = StdRng::seed_from_u64(SEED);
    let adts = extra_model::AdtRegistry::with_builtins();
    let date_id = adts.lookup("Date").unwrap();
    let mut employees = Vec::with_capacity(n_employees);
    for i in 0..n_employees {
        let d = rng.gen_range(0..n_departments.max(1));
        let dept_val = match dept_mode {
            DeptMode::Own => department(d),
            DeptMode::Ref => Value::Ref(dept_oids[d]),
        };
        let kids_val = Value::Set(
            (0..kids)
                .map(|k| {
                    Value::Tuple(vec![
                        Value::Str(format!("kid{i}-{k}")),
                        Value::Int(rng.gen_range(1..18)),
                        Value::Set(vec![]),
                    ])
                })
                .collect(),
        );
        let year = 1950 + rng.gen_range(0..45u32);
        let month = rng.gen_range(1..13u32);
        let day = rng.gen_range(1..29u32);
        let hired = adts
            .parse(date_id, &format!("{month}/{day}/{year}"))
            .unwrap();
        employees.push(Value::Tuple(vec![
            Value::Str(format!("emp{i:06}")),
            Value::Int(rng.gen_range(20..65)),
            kids_val,
            dept_val,
            Value::Float(20_000.0 + rng.gen_range(0..80_000) as f64),
            hired,
        ]));
    }
    db.bulk_append("Employees", employees).unwrap();
    University {
        db,
        n_employees,
        n_departments,
    }
}

/// Build a chain schema for the implicit-join depth sweep (E2):
/// `L0.next.next...` through `depth` ref hops, `n` objects per level.
pub fn chain(depth: usize, n: usize) -> Arc<Database> {
    assert!(depth >= 1);
    let db = Database::in_memory();
    let mut s = db.session();
    // Deepest level first.
    s.run(&format!(
        "define type L{depth} (tag: int4); \
         create {{ own ref L{depth} }} C{depth}"
    ))
    .unwrap();
    for level in (0..depth).rev() {
        s.run(&format!(
            "define type L{level} (tag: int4, next: ref L{next}); \
             create {{ own ref L{level} }} C{level}",
            next = level + 1
        ))
        .unwrap();
    }
    // Load bottom-up, wiring refs.
    let mut prev: Vec<extra_model::Value> = db
        .bulk_append(
            &format!("C{depth}"),
            (0..n)
                .map(|i| Value::Tuple(vec![Value::Int(i as i64)]))
                .collect(),
        )
        .unwrap()
        .into_iter()
        .map(Value::Ref)
        .collect();
    for level in (0..depth).rev() {
        let rows: Vec<Value> = (0..n)
            .map(|i| Value::Tuple(vec![Value::Int(i as i64), prev[i].clone()]))
            .collect();
        prev = db
            .bulk_append(&format!("C{level}"), rows)
            .unwrap()
            .into_iter()
            .map(Value::Ref)
            .collect();
    }
    db
}

/// The flattened variant of the nested-kids schema (E4): kids live in
/// their own collection with a parent reference — the 1NF encoding EXTRA
/// makes unnecessary.
pub fn flat_kids(n_employees: usize, kids: usize) -> Arc<Database> {
    let db = Database::in_memory();
    let mut s = db.session();
    s.run(
        r#"
        define type FlatEmployee (name: varchar, floor: int4);
        define type FlatKid (name: varchar, age: int4, parent: ref FlatEmployee);
        create { own ref FlatEmployee } Emps;
        create { own ref FlatKid } Kids;
    "#,
    )
    .unwrap();
    let mut rng = StdRng::seed_from_u64(SEED);
    let emp_oids = db
        .bulk_append(
            "Emps",
            (0..n_employees)
                .map(|i| {
                    Value::Tuple(vec![
                        Value::Str(format!("emp{i:06}")),
                        Value::Int((i % 10) as i64 + 1),
                    ])
                })
                .collect(),
        )
        .unwrap();
    let mut kid_rows = Vec::with_capacity(n_employees * kids);
    for (i, eo) in emp_oids.iter().enumerate() {
        for k in 0..kids {
            kid_rows.push(Value::Tuple(vec![
                Value::Str(format!("kid{i}-{k}")),
                Value::Int(rng.gen_range(1..18)),
                Value::Ref(*eo),
            ]));
        }
    }
    db.bulk_append("Kids", kid_rows).unwrap();
    db
}

/// Build a schema where employees exclusively own their kids as
/// first-class objects (`kids: { own ref Person }`) — deleting an
/// employee cascades to real object deletions (E7's cascade axis).
pub fn university_cascade(n_employees: usize, kids: usize) -> Arc<Database> {
    use extra_model::{QualType, Type};
    let db = Database::in_memory();
    let mut s = db.session();
    s.run(
        r#"
        define type Person (name: varchar, age: int4, kids: { own ref Person });
        define type Employee inherits Person (salary: float8);
        create { own ref Employee } Employees;
    "#,
    )
    .unwrap();
    let cat = db.read_catalog();
    let store = db.store();
    let person = cat.types.lookup("Person").unwrap();
    let employee = cat.types.lookup("Employee").unwrap();
    let anchor = cat.named.get("Employees").unwrap().oid;
    let person_q = QualType::own(Type::Schema(person));
    let employee_q = QualType::own(Type::Schema(employee));
    let mut rng = StdRng::seed_from_u64(SEED);
    for i in 0..n_employees {
        let kid_refs: Vec<Value> = (0..kids)
            .map(|k| {
                let kid = store
                    .create_object(
                        &cat.types,
                        &person_q,
                        Value::Tuple(vec![
                            Value::Str(format!("kid{i}-{k}")),
                            Value::Int(rng.gen_range(1..18)),
                            Value::Set(vec![]),
                        ]),
                    )
                    .unwrap();
                Value::Ref(kid)
            })
            .collect();
        let emp = store
            .create_object(
                &cat.types,
                &employee_q,
                Value::Tuple(vec![
                    Value::Str(format!("emp{i:06}")),
                    Value::Int(rng.gen_range(20..65)),
                    Value::Set(kid_refs),
                    Value::Float(20_000.0 + rng.gen_range(0..80_000) as f64),
                ]),
            )
            .unwrap();
        store
            .append_member(&cat.types, anchor, Value::Ref(emp))
            .unwrap();
    }
    drop(cat);
    db
}

/// A statement corpus for the front-end throughput experiment (E10):
/// every paper figure plus representative DML.
pub fn statement_corpus() -> Vec<&'static str> {
    vec![
        "define type Person (name: varchar, ssnum: int4, birthday: Date, kids: { own ref Person })",
        "define type Employee inherits Person (salary: float8, dept: ref Department)",
        "create { own ref Employee } Employees",
        "create [10] ref Employee TopTen",
        "range of E is Employees",
        "range of C is Employees.kids",
        "range of E is all Employees",
        "retrieve (Today)",
        "retrieve (StarEmployee.name, StarEmployee.salary)",
        "retrieve (TopTen[1].name, TopTen[1].salary)",
        "retrieve (C.name) from C in Employees.kids where Employees.dept.floor = 2",
        "retrieve (E.name, E.salary) where E.dept.floor = 2 and E.salary > 50000.0 order by E.salary desc",
        "retrieve (D.dname, payroll = sum(E.salary over E where E.dept is D)) from D in Departments",
        "retrieve (unique(E.dept.dname over E))",
        "append to Employees (name = \"x\", salary = 1000.0)",
        "replace E (salary = E.salary * 1.1) where E.dept.floor = 2",
        "delete E where E.age > 99",
        "execute GiveRaise(1000.0, D.dname) where D.floor = 2",
        "define function earns (e: Employee) returns float8 as retrieve (e.salary * 2.0)",
        "define procedure P (x: float8) as replace E (salary = x) where E.salary < x end",
        "grant read, append on Employees to staff",
        "define index emp_salary on Employees (salary)",
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn university_loads_and_queries() {
        let u = university(5, 200, 2, DeptMode::Ref, 1024);
        let mut s = u.db.session();
        let r = s
            .query("retrieve (count(E over E)) from E in Employees")
            .unwrap();
        assert_eq!(r.rows[0][0], Value::Int(200));
        let r = s
            .query("retrieve (E.name) from E in Employees where E.dept.floor = 1")
            .unwrap();
        assert!(!r.is_empty());
        let r = s
            .query("retrieve (count(C over C)) from C in Employees.kids")
            .unwrap();
        assert_eq!(r.rows[0][0], Value::Int(400));
    }

    #[test]
    fn university_own_mode() {
        let u = university(5, 50, 0, DeptMode::Own, 1024);
        let mut s = u.db.session();
        // Path works identically through an embedded copy.
        let r = s
            .query("retrieve (avg(E.dept.budget over E)) from E in Employees")
            .unwrap();
        assert!(matches!(r.rows[0][0], Value::Float(_)));
    }

    #[test]
    fn chain_depth_three() {
        let db = chain(3, 50);
        let mut s = db.session();
        let r = s
            .query("retrieve (X.next.next.next.tag) from X in C0 where X.tag = 7")
            .unwrap();
        assert_eq!(r.rows, vec![vec![Value::Int(7)]]);
    }

    #[test]
    fn flat_matches_nested() {
        let nested = university(3, 40, 3, DeptMode::Ref, 1024);
        let flat = flat_kids(40, 3);
        let mut sn = nested.db.session();
        let mut sf = flat.session();
        let n = sn
            .query("retrieve (count(C over C)) from C in Employees.kids")
            .unwrap();
        let f = sf
            .query("retrieve (count(K over K)) from K in Kids")
            .unwrap();
        assert_eq!(n.rows, f.rows);
    }

    #[test]
    fn corpus_parses() {
        let ops = excess_lang::OperatorTable::new();
        for stmt in statement_corpus() {
            excess_lang::parse_statement(stmt, &ops)
                .unwrap_or_else(|e| panic!("corpus statement failed: {stmt}: {e}"));
        }
    }
}
