//! Evaluator unit tests: compile tiny expressions against an empty
//! catalog and check value semantics directly.

use std::cell::Cell;

use excess_exec::eval::{eval, ExecCtx};
use excess_exec::{CExpr, Compiler, Env, MemberId};
use excess_lang::{parse_statement, OperatorTable, Stmt};
use excess_sema::catalog::EmptyCatalog;
use excess_sema::{RangeEnv, SemaCtx};
use exodus_storage::StorageManager;
use extra_model::{AdtRegistry, ObjectStore, QualType, Type, TypeRegistry, Value};

struct Harness {
    types: TypeRegistry,
    adts: AdtRegistry,
    catalog: EmptyCatalog,
    store: ObjectStore,
}

impl Harness {
    fn new() -> Harness {
        Harness {
            types: TypeRegistry::new(),
            adts: AdtRegistry::with_builtins(),
            catalog: EmptyCatalog,
            store: ObjectStore::new(StorageManager::in_memory(64)).unwrap(),
        }
    }

    fn compile(&self, src: &str, vars: &[(&str, QualType)]) -> CExpr {
        let stmt = parse_statement(&format!("retrieve ({src})"), &OperatorTable::new()).unwrap();
        let expr = match stmt {
            Stmt::Retrieve { mut targets, .. } => targets.remove(0).expr,
            _ => unreachable!(),
        };
        let mut ctx = SemaCtx::new(&self.types, &self.adts, &self.catalog);
        for (n, q) in vars {
            ctx.vars.insert((*n).to_string(), q.clone());
        }
        let env = RangeEnv::default();
        let counter = Cell::new(0);
        Compiler::new(&ctx, &env, &counter).compile(&expr).unwrap()
    }

    fn eval(&self, e: &CExpr, env: &Env) -> Value {
        let ctx = ExecCtx::new(&self.store, &self.types, &self.adts, &self.catalog);
        eval(e, &ctx, env).unwrap()
    }

    fn eval_err(&self, e: &CExpr, env: &Env) -> String {
        let ctx = ExecCtx::new(&self.store, &self.types, &self.adts, &self.catalog);
        eval(e, &ctx, env).unwrap_err().to_string()
    }

    fn run(&self, src: &str) -> Value {
        let e = self.compile(src, &[]);
        self.eval(&e, &Env::new())
    }
}

#[test]
fn arithmetic_semantics() {
    let h = Harness::new();
    assert_eq!(h.run("2 + 3 * 4"), Value::Int(14));
    assert_eq!(h.run("7 / 2"), Value::Int(3));
    assert_eq!(h.run("7.0 / 2"), Value::Float(3.5));
    assert_eq!(h.run("7 % 4"), Value::Int(3));
    assert_eq!(h.run("-(2 + 3)"), Value::Int(-5));
    assert_eq!(h.run("2 + null"), Value::Null, "null propagates");
    assert!(h
        .eval_err(&h.compile("1 / 0", &[]), &Env::new())
        .contains("zero"));
}

#[test]
fn comparison_semantics() {
    let h = Harness::new();
    assert_eq!(h.run("1 < 2"), Value::Bool(true));
    assert_eq!(
        h.run("2 = 2.0"),
        Value::Bool(true),
        "cross-type numeric equality"
    );
    assert_eq!(h.run("\"abc\" < \"abd\""), Value::Bool(true));
    assert_eq!(
        h.run("null = null"),
        Value::Bool(false),
        "null never equals"
    );
    assert_eq!(h.run("null is null"), Value::Bool(true));
    assert_eq!(h.run("1 != 2"), Value::Bool(true));
}

#[test]
fn boolean_short_circuit() {
    let h = Harness::new();
    // The right side would divide by zero; short-circuit avoids it.
    assert_eq!(h.run("false and 1 / 0 = 1"), Value::Bool(false));
    assert_eq!(h.run("true or 1 / 0 = 1"), Value::Bool(true));
    assert_eq!(h.run("not false"), Value::Bool(true));
}

#[test]
fn set_semantics() {
    let h = Harness::new();
    assert_eq!(h.run("2 in {1, 2, 3}"), Value::Bool(true));
    assert_eq!(h.run("{1, 2} contains 3"), Value::Bool(false));
    match h.run("{1, 2} union {2, 3}") {
        Value::Set(m) => assert_eq!(m.len(), 3),
        other => panic!("{other:?}"),
    }
    assert_eq!(h.run("null in {1}"), Value::Bool(false));
    // Set literals dedupe.
    match h.run("{1, 1, 1}") {
        Value::Set(m) => assert_eq!(m.len(), 1),
        other => panic!("{other:?}"),
    }
}

#[test]
fn adt_dispatch() {
    let h = Harness::new();
    assert_eq!(h.run("Year(Date(\"8/29/1953\"))"), Value::Int(1953));
    match h.run("Date(\"1/1/1980\")") {
        Value::Adt(_, _) => {}
        other => panic!("{other:?}"),
    }
    assert_eq!(
        h.run("Date(\"1/1/1980\") < Date(\"2/1/1980\")"),
        Value::Bool(true)
    );
    // Complex arithmetic through the overloaded operator.
    match h.run("Complex(\"(1, 2)\") + Complex(\"(3, 4)\")") {
        Value::Adt(id, bytes) => {
            assert_eq!(h.adts.display(id, &bytes), "(4, 6)");
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn variables_and_paths_deref_through_refs() {
    let mut h2 = Harness::new();
    let p2 = h2
        .types
        .define(
            "P",
            vec![],
            vec![
                extra_model::Attribute::own("name", Type::varchar()),
                extra_model::Attribute::own("age", Type::int4()),
            ],
        )
        .unwrap();
    let oid = h2
        .store
        .create_object(
            &h2.types,
            &QualType::own(Type::Schema(p2)),
            Value::Tuple(vec![Value::str("ann"), Value::Int(30)]),
        )
        .unwrap();
    let e = h2.compile("x.age + 1", &[("x", QualType::reference(Type::Schema(p2)))]);
    let mut env = Env::new();
    env.bind("x", Value::Ref(oid), MemberId::Object(oid));
    assert_eq!(h2.eval(&e, &env), Value::Int(31));
}

#[test]
fn array_indexing_is_one_based() {
    let h = Harness::new();
    let arr_q = QualType::own(Type::Array(None, Box::new(QualType::own(Type::int4()))));
    let e = h.compile("a[2]", &[("a", arr_q.clone())]);
    let mut env = Env::new();
    env.bind(
        "a",
        Value::Array(vec![Value::Int(10), Value::Int(20)]),
        MemberId::None,
    );
    assert_eq!(h.eval(&e, &env), Value::Int(20));
    let e0 = h.compile("a[0]", &[("a", arr_q)]);
    assert!(h.eval_err(&e0, &env).contains("1-based"));
}
