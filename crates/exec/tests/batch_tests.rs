//! Batch-boundary tests for the vectorized executor.
//!
//! The interesting sizes are the edges: empty inputs, collections that
//! fill a batch exactly, one past a batch, and predicates whose survivors
//! sit at a batch's very end. Every query is run at several batch sizes
//! (including 1, which degenerates to row-at-a-time) and must produce an
//! identical `QueryResult`.

use std::sync::Arc;

use exodus_db::{Database, Value};

/// Batch sizes exercised against every scenario: degenerate row-at-a-time,
/// a size smaller than the data, and the default.
const SIZES: &[usize] = &[1, 7, excess_exec::DEFAULT_BATCH_SIZE];

/// Build the `n`-row fixture with the batch size fixed at construction
/// time via [`Database::builder`]. The data is deterministic, so two
/// fixtures at different batch sizes hold identical contents.
fn db_with_rows_at(n: i64, batch_size: usize) -> Arc<Database> {
    let db = Database::builder().batch_size(batch_size).build().unwrap();
    let mut s = db.session();
    s.run(
        r#"
        define type Row (k: int4, v: float8);
        create { own Row } Rows;
    "#,
    )
    .unwrap();
    db.bulk_append(
        "Rows",
        (0..n)
            .map(|i| Value::Tuple(vec![Value::Int(i), Value::Float(i as f64)]))
            .collect(),
    )
    .unwrap();
    db
}

/// Run `q` against an `n_rows` fixture at every batch size and assert
/// all results are identical, returning the common result.
fn same_at_all_sizes(n_rows: i64, q: &str) -> exodus_db::QueryResult {
    let first = {
        let db = db_with_rows_at(n_rows, SIZES[0]);
        db.session().query(q).unwrap()
    };
    for &n in &SIZES[1..] {
        let db = db_with_rows_at(n_rows, n);
        let r = db.session().query(q).unwrap();
        assert_eq!(first, r, "batch size {n} diverged on {q}");
    }
    first
}

#[test]
fn empty_collection() {
    let r = same_at_all_sizes(0, "retrieve (R.k) from R in Rows");
    assert!(r.is_empty());
    let r = same_at_all_sizes(0, "retrieve (count(R over R)) from R in Rows");
    assert_eq!(r.rows[0][0], Value::Int(0));
}

#[test]
fn exactly_batch_size() {
    // 7 rows at batch size 7: one full batch, then exhaustion.
    let r = same_at_all_sizes(7, "retrieve (R.k) from R in Rows");
    assert_eq!(r.len(), 7);
    assert_eq!(r.rows[6][0], Value::Int(6));
}

#[test]
fn batch_size_plus_one() {
    // 8 rows at batch size 7: a full batch plus a one-row straggler.
    let r = same_at_all_sizes(8, "retrieve (R.k) from R in Rows order by R.k");
    assert_eq!(r.len(), 8);
    assert_eq!(r.rows[7][0], Value::Int(7));
}

#[test]
fn default_batch_size_boundaries() {
    let n = excess_exec::DEFAULT_BATCH_SIZE as i64;
    for count in [n, n + 1] {
        let r = same_at_all_sizes(count, "retrieve (count(R over R)) from R in Rows");
        assert_eq!(r.rows[0][0], Value::Int(count));
    }
}

#[test]
fn predicate_selects_only_last_row_of_batch() {
    // With batch size 7 the row k = 6 is the last row of the first batch
    // and k = 13 the last of the second; the filter's selection vector
    // must keep exactly those.
    let r = same_at_all_sizes(
        14,
        "retrieve (R.k) from R in Rows where R.k = 6 or R.k = 13",
    );
    assert_eq!(r.len(), 2);
    let mut got: Vec<&Value> = r.rows.iter().map(|row| &row[0]).collect();
    got.sort_by_key(|v| match v {
        Value::Int(i) => *i,
        _ => unreachable!(),
    });
    assert_eq!(got, vec![&Value::Int(6), &Value::Int(13)]);
}

#[test]
fn joins_and_sorts_survive_rebatching() {
    // Cross product spans batch boundaries in both inputs; sort
    // materializes everything and re-chunks its output.
    let r = same_at_all_sizes(
        9,
        "retrieve (A.k, B.k) from A in Rows, B in Rows where A.k = B.k order by A.k",
    );
    assert_eq!(r.len(), 9);
    assert_eq!(r.rows[8], vec![Value::Int(8), Value::Int(8)]);
}

#[test]
fn updates_identical_across_batch_sizes() {
    // Set-oriented replace must touch the same members no matter how the
    // satisfying bindings were batched.
    for &n in SIZES {
        let db = db_with_rows_at(10, n);
        let mut s = db.session();
        s.run("range of R is Rows; replace R (v = 99.0) where R.k >= 6")
            .unwrap();
        let r = s
            .query("retrieve (R.k) from R in Rows where R.v = 99.0 order by R.k")
            .unwrap();
        assert_eq!(r.len(), 4, "batch size {n}");
        assert_eq!(r.rows[0][0], Value::Int(6));
        s.run("range of R is Rows; delete R where R.v = 99.0")
            .unwrap();
        let r = s
            .query("retrieve (count(R over R)) from R in Rows")
            .unwrap();
        assert_eq!(r.rows[0][0], Value::Int(6), "batch size {n}");
    }
}
