//! # excess-exec
//!
//! Query execution for EXCESS: compiled expressions, a bindings-based
//! evaluator, and a batched (vectorized) plan runner — operators exchange
//! [`batch::RowBatch`]es of column vectors instead of one row at a time.
//!
//! The physical plans produced by `excess-algebra` carry raw AST
//! expressions; [`plan::prepare`] compiles them into an
//! executable form ([`cexpr::CExpr`]) with attribute positions resolved,
//! ADT functions/operators bound, EXCESS functions pre-planned (the
//! paper's "functions and operators treated uniformly"), and aggregate
//! `over` ranges resolved into sub-plans.
//!
//! Evaluation semantics follow the paper:
//!
//! * attribute paths dereference `ref`/`own ref` values transparently;
//! * `is`/`isnot` compare OIDs; `=` is value equality (deep only through
//!   `own` structure);
//! * membership in ref-sets is by identity, in own-sets by value;
//! * nulls: comparisons involving null are false, arithmetic propagates
//!   null, a null qualification rejects (QUEL lineage);
//! * aggregates iterate their `over` ranges freshly, correlate through
//!   free outer variables, partition with `by`, and cache group tables
//!   when uncorrelated;
//! * universal ranges (`all`) make the qualification hold for *every*
//!   binding (vacuously true on empty sets).

#![deny(rustdoc::broken_intra_doc_links)]
pub mod batch;
pub mod cexpr;
pub mod cursor;
pub mod env;
pub mod eval;
pub mod metrics;
mod parallel;
pub mod plan;
pub mod profile;
pub mod run;

pub use batch::{BatchRow, Bindings, RowBatch, DEFAULT_BATCH_SIZE};
pub use cexpr::{CAgg, CExpr, CompiledFunction, Compiler};
pub use cursor::Cursor;
pub use env::{Env, MemberId};
pub use eval::ExecCtx;
pub use metrics::ExecMetrics;
pub use plan::{prepare, ExecNode};
pub use profile::{
    BufferDelta, NodeAnnot, OpProfile, PlanIndex, PlanProfiler, QueryProfile, WorkerStats,
};
pub use run::{run_plan, FromValue, QueryResult, Row};
