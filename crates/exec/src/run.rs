//! Running plans to completion.

use std::fmt;

use extra_model::{AdtRegistry, ModelError, ModelResult, Value};

use crate::batch::{Bindings, RowBatch};
use crate::eval::{eval, ExecCtx};
use crate::plan::ExecNode;
use crate::profile::QueryProfile;

/// A query result: column names plus rows of values.
///
/// When the originating session ran with profiling enabled, `profile`
/// carries the per-operator [`QueryProfile`]; it is ignored by
/// equality so profiled and unprofiled runs of the same query compare
/// equal.
#[derive(Debug, Clone, Default)]
pub struct QueryResult {
    /// Output column names.
    pub columns: Vec<String>,
    /// Result rows.
    pub rows: Vec<Vec<Value>>,
    /// Per-operator execution profile, if the run was profiled.
    pub profile: Option<QueryProfile>,
}

impl PartialEq for QueryResult {
    fn eq(&self, other: &Self) -> bool {
        self.columns == other.columns && self.rows == other.rows
    }
}

impl QueryResult {
    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the result is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Iterate over rows as [`Row`] views supporting typed access by
    /// column name. A thin adapter over the same rows
    /// [`QueryResult::batches`] streams — use `batches` when the
    /// consumer wants batch granularity (wire encoders, bulk sinks).
    pub fn iter(&self) -> impl Iterator<Item = Row<'_>> {
        self.rows.iter().map(move |values| Row {
            columns: &self.columns,
            values,
        })
    }

    /// Stream the result as [`RowBatch`]es of at most `n` rows each.
    /// Each batch is materialized only when the consumer pulls it, so
    /// an encoder (the server's result framer, the REPL's printer) holds
    /// one batch at a time instead of a second copy of the whole result.
    /// The column layout of every batch is [`QueryResult::columns`].
    pub fn batches(&self, n: usize) -> impl Iterator<Item = RowBatch> + '_ {
        let n = n.max(1);
        self.rows
            .chunks(n)
            .map(move |chunk| RowBatch::from_rows(self.columns.clone(), chunk))
    }

    /// Render as lines of `col = value` pairs (ADT values use their
    /// display forms).
    pub fn render(&self, adts: &AdtRegistry) -> String {
        self.display(adts).to_string()
    }

    /// A [`fmt::Display`] adapter that streams rows straight into the
    /// output formatter — no per-row intermediate strings.
    pub fn display<'r>(&'r self, adts: &'r AdtRegistry) -> DisplayRows<'r> {
        DisplayRows { result: self, adts }
    }
}

/// One result row, borrowed from a [`QueryResult`].
#[derive(Debug, Clone, Copy)]
pub struct Row<'r> {
    columns: &'r [String],
    values: &'r [Value],
}

impl<'r> Row<'r> {
    /// The raw value of `name`, or `None` if no such column exists.
    pub fn value(&self, name: &str) -> Option<&'r Value> {
        let i = self.columns.iter().position(|c| c == name)?;
        self.values.get(i)
    }

    /// The value of `name` converted to `T`, or `None` if the column
    /// is missing or holds a different type.
    pub fn get<T: FromValue<'r>>(&self, name: &str) -> Option<T> {
        T::from_value(self.value(name)?)
    }

    /// Column names, in output order.
    pub fn columns(&self) -> &'r [String] {
        self.columns
    }

    /// Raw values, in output order.
    pub fn values(&self) -> &'r [Value] {
        self.values
    }
}

/// Conversion from a borrowed [`Value`] for [`Row::get`].
pub trait FromValue<'r>: Sized {
    /// Convert, returning `None` on a type mismatch.
    fn from_value(v: &'r Value) -> Option<Self>;
}

impl<'r> FromValue<'r> for i64 {
    fn from_value(v: &'r Value) -> Option<Self> {
        match v {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }
}

impl<'r> FromValue<'r> for f64 {
    fn from_value(v: &'r Value) -> Option<Self> {
        match v {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }
}

impl<'r> FromValue<'r> for bool {
    fn from_value(v: &'r Value) -> Option<Self> {
        match v {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

impl<'r> FromValue<'r> for &'r str {
    fn from_value(v: &'r Value) -> Option<Self> {
        match v {
            Value::Str(s) => Some(s.as_str()),
            Value::Enum(_, s) => Some(s.as_str()),
            _ => None,
        }
    }
}

impl<'r> FromValue<'r> for String {
    fn from_value(v: &'r Value) -> Option<Self> {
        <&str>::from_value(v).map(str::to_owned)
    }
}

impl<'r> FromValue<'r> for &'r Value {
    fn from_value(v: &'r Value) -> Option<Self> {
        Some(v)
    }
}

impl<'r> FromValue<'r> for Value {
    fn from_value(v: &'r Value) -> Option<Self> {
        Some(v.clone())
    }
}

/// Streaming renderer for a [`QueryResult`] (see
/// [`QueryResult::display`]).
pub struct DisplayRows<'r> {
    result: &'r QueryResult,
    adts: &'r AdtRegistry,
}

impl fmt::Display for DisplayRows<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for row in &self.result.rows {
            for (i, (c, v)) in self.result.columns.iter().zip(row.iter()).enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{c} = {}", v.render(self.adts))?;
            }
            f.write_str("\n")?;
        }
        Ok(())
    }
}

/// Execute a plan whose top is a `Project`, collecting all rows. `env`
/// supplies pre-bound variables (function parameters, procedure
/// arguments).
pub fn run_plan(
    plan: &ExecNode,
    ctx: &ExecCtx<'_>,
    env: &dyn Bindings,
) -> ModelResult<QueryResult> {
    let ExecNode::Project { input, targets } = plan else {
        return Err(ModelError::Semantic(
            "plan has no projection at the top".into(),
        ));
    };
    let columns: Vec<String> = targets.iter().map(|(n, _)| n.clone()).collect();
    // The Project node itself has no cursor; account for it here so the
    // profile covers the whole tree.
    let index = ctx.profiler.as_ref().map(|p| p.index());
    let proj_slot = index.and_then(|ix| ix.slot_of(plan));
    let mut rows = Vec::new();
    let mut cur = input.cursor_profiled(RowBatch::single(env), index);
    let t0 = proj_slot.map(|_| std::time::Instant::now());
    while let Some(batch) = cur.next(ctx)? {
        ctx.prof_in(proj_slot, batch.len());
        if let Some(m) = ctx.metrics.as_ref() {
            m.batches.inc();
            m.rows.add(batch.len() as u64);
        }
        for r in 0..batch.len() {
            let row = batch.row(r);
            let out: Vec<Value> = targets
                .iter()
                .map(|(_, e)| eval(e, ctx, &row))
                .collect::<ModelResult<_>>()?;
            rows.push(out);
        }
    }
    if let (Some(slot), Some(t0), Some(p)) = (proj_slot, t0, ctx.profiler.as_ref()) {
        p.record_ns(slot, t0.elapsed().as_nanos() as u64);
        p.record_out(slot, rows.len());
    }
    Ok(QueryResult {
        columns,
        rows,
        profile: None,
    })
}
