//! Running plans to completion.

use std::fmt;

use extra_model::{AdtRegistry, ModelError, ModelResult, Value};

use crate::batch::{Bindings, RowBatch};
use crate::eval::{eval, ExecCtx};
use crate::plan::ExecNode;

/// A query result: column names plus rows of values.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    /// Output column names.
    pub columns: Vec<String>,
    /// Result rows.
    pub rows: Vec<Vec<Value>>,
}

impl QueryResult {
    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the result is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as lines of `col = value` pairs (ADT values use their
    /// display forms).
    pub fn render(&self, adts: &AdtRegistry) -> String {
        self.display(adts).to_string()
    }

    /// A [`fmt::Display`] adapter that streams rows straight into the
    /// output formatter — no per-row intermediate strings.
    pub fn display<'r>(&'r self, adts: &'r AdtRegistry) -> DisplayRows<'r> {
        DisplayRows { result: self, adts }
    }
}

/// Streaming renderer for a [`QueryResult`] (see
/// [`QueryResult::display`]).
pub struct DisplayRows<'r> {
    result: &'r QueryResult,
    adts: &'r AdtRegistry,
}

impl fmt::Display for DisplayRows<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for row in &self.result.rows {
            for (i, (c, v)) in self.result.columns.iter().zip(row.iter()).enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{c} = {}", v.render(self.adts))?;
            }
            f.write_str("\n")?;
        }
        Ok(())
    }
}

/// Execute a plan whose top is a `Project`, collecting all rows. `env`
/// supplies pre-bound variables (function parameters, procedure
/// arguments).
pub fn run_plan(
    plan: &ExecNode,
    ctx: &ExecCtx<'_>,
    env: &dyn Bindings,
) -> ModelResult<QueryResult> {
    let ExecNode::Project { input, targets } = plan else {
        return Err(ModelError::Semantic(
            "plan has no projection at the top".into(),
        ));
    };
    let columns: Vec<String> = targets.iter().map(|(n, _)| n.clone()).collect();
    let mut rows = Vec::new();
    let mut cur = input.cursor(RowBatch::single(env));
    while let Some(batch) = cur.next(ctx)? {
        for r in 0..batch.len() {
            let row = batch.row(r);
            let out: Vec<Value> = targets
                .iter()
                .map(|(_, e)| eval(e, ctx, &row))
                .collect::<ModelResult<_>>()?;
            rows.push(out);
        }
    }
    Ok(QueryResult { columns, rows })
}
