//! Running plans to completion.

use std::ops::ControlFlow;

use extra_model::{AdtRegistry, ModelError, ModelResult, Value};

use crate::env::Env;
use crate::eval::{eval, ExecCtx};
use crate::plan::ExecNode;

/// A query result: column names plus rows of values.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    /// Output column names.
    pub columns: Vec<String>,
    /// Result rows.
    pub rows: Vec<Vec<Value>>,
}

impl QueryResult {
    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the result is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as lines of `col = value` pairs (ADT values use their
    /// display forms).
    pub fn render(&self, adts: &AdtRegistry) -> String {
        let mut out = String::new();
        for row in &self.rows {
            let parts: Vec<String> = self
                .columns
                .iter()
                .zip(row.iter())
                .map(|(c, v)| format!("{c} = {}", v.render(adts)))
                .collect();
            out.push_str(&parts.join(", "));
            out.push('\n');
        }
        out
    }
}

/// Execute a plan whose top is a `Project`, collecting all rows. `env`
/// supplies pre-bound variables (function parameters, procedure
/// arguments).
pub fn run_plan(
    plan: &ExecNode,
    ctx: &ExecCtx<'_>,
    env: &mut Env,
) -> ModelResult<QueryResult> {
    let ExecNode::Project { input, targets } = plan else {
        return Err(ModelError::Semantic("plan has no projection at the top".into()));
    };
    let columns: Vec<String> = targets.iter().map(|(n, _)| n.clone()).collect();
    let mut rows = Vec::new();
    let _ = input.for_each(ctx, env, &mut |ctx, env| {
        let row: Vec<Value> = targets
            .iter()
            .map(|(_, e)| eval(e, ctx, env))
            .collect::<ModelResult<_>>()?;
        rows.push(row);
        Ok(ControlFlow::Continue(()))
    })?;
    Ok(QueryResult { columns, rows })
}
