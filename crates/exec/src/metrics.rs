//! Executor-level instruments (see the `exodus-obs` crate).
//!
//! One [`ExecMetrics`] is registered per database and shared by every
//! statement's [`crate::ExecCtx`] through an `Arc`. The handles are
//! owned instruments — a few relaxed atomic adds per *batch* (not per
//! row), so the enabled overhead is unmeasurable and disabling metrics
//! simply leaves the context's option empty.

use std::sync::Arc;

use exodus_obs::{Counter, Histogram, MetricsRegistry, LATENCY_BUCKETS_NS};

/// Counters the executor bumps while pulling batches.
pub struct ExecMetrics {
    /// Batches pulled through the root of a plan.
    pub batches: Arc<Counter>,
    /// Rows produced by plan roots.
    pub rows: Arc<Counter>,
    /// Morsels claimed by parallel scan workers.
    pub morsels: Arc<Counter>,
    /// Dereference-cache hits: implicit-join dereferences satisfied
    /// without a storage read (either object or projected-attribute
    /// cache).
    pub deref_hits: Arc<Counter>,
    /// Dereference-cache misses: dereferences that read storage.
    pub deref_misses: Arc<Counter>,
    /// Cache inserts dropped because the dereference cache was at
    /// capacity — previously silent saturation; a nonzero value means
    /// the working set of referenced objects exceeds the cache.
    pub deref_full: Arc<Counter>,
    /// Time the parallel coordinator spent blocked on worker output.
    pub merge_wait_ns: Arc<Histogram>,
}

impl ExecMetrics {
    /// Register the executor's instruments on `reg` under the `exec_`
    /// prefix.
    pub fn register(reg: &MetricsRegistry) -> Arc<ExecMetrics> {
        Arc::new(ExecMetrics {
            batches: reg.counter("exec_batches_total", "Batches pulled through plan roots."),
            rows: reg.counter("exec_rows_total", "Rows produced by plan roots."),
            morsels: reg.counter(
                "exec_morsels_total",
                "Morsels claimed by parallel scan workers.",
            ),
            deref_hits: reg.counter(
                "exec_deref_cache_hits_total",
                "Dereferences satisfied from the per-statement cache.",
            ),
            deref_misses: reg.counter(
                "exec_deref_cache_misses_total",
                "Dereferences that read the referenced object from storage.",
            ),
            deref_full: reg.counter(
                "exec_deref_cache_full_total",
                "Cache inserts dropped because the dereference cache was full.",
            ),
            merge_wait_ns: reg.histogram(
                "exec_merge_wait_ns",
                "Time the parallel coordinator waited on worker output.",
                LATENCY_BUCKETS_NS,
            ),
        })
    }
}
