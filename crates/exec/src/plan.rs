//! Executable plans: compilation from physical plans. Iteration happens
//! batch-at-a-time through [`crate::cursor`].

use std::cell::Cell;
use std::collections::HashMap;
use std::ops::Bound;

use excess_algebra::Physical;
use excess_sema::{RangeEnv, ResolvedRange, RootSource, SemaCtx};
use exodus_storage::Oid;
use extra_model::{ModelError, ModelResult, QualType, Value};

use crate::cexpr::{CExpr, Compiler};
use crate::eval::ExecCtx;

/// Where an unnest's collection value comes from.
#[derive(Debug)]
pub enum USource {
    /// From another variable's current binding.
    FromVar {
        /// The parent variable.
        parent: String,
        /// Attribute positions from the parent to the collection.
        path: Vec<usize>,
        /// Attribute names (kept for nested-member update identities).
        names: Vec<String>,
    },
    /// From a named object.
    FromObject {
        /// The object's OID.
        oid: Oid,
        /// Attribute positions.
        path: Vec<usize>,
        /// Attribute names.
        names: Vec<String>,
    },
}

/// An executable plan node.
#[derive(Debug)]
pub enum ExecNode {
    /// One empty environment.
    Unit,
    /// Scan a collection's members.
    SeqScan {
        /// Variable bound per member.
        var: String,
        /// Collection anchor.
        anchor: Oid,
    },
    /// Scan a `sys.<view>` virtual collection: the catalog's system-view
    /// provider materializes one consistent row snapshot per cursor open.
    SystemScan {
        /// Variable bound per row.
        var: String,
        /// View name without the `sys.` prefix.
        view: String,
    },
    /// B+-tree index scan.
    IndexScan {
        /// Variable bound per member.
        var: String,
        /// Collection anchor.
        anchor: Oid,
        /// Index root page.
        root: u64,
        /// Lower key bound.
        lower: Bound<Vec<u8>>,
        /// Upper key bound.
        upper: Bound<Vec<u8>>,
    },
    /// Unnest a nested set/array.
    Unnest {
        /// Input.
        input: Box<ExecNode>,
        /// Variable bound per element.
        var: String,
        /// Collection source.
        source: USource,
    },
    /// Cross product (inner re-run per outer row).
    NestedLoop {
        /// Outer input.
        outer: Box<ExecNode>,
        /// Inner input.
        inner: Box<ExecNode>,
    },
    /// Predicate filter.
    Filter {
        /// Input.
        input: Box<ExecNode>,
        /// Compiled predicate.
        pred: CExpr,
    },
    /// Universal-quantification filter.
    UniversalFilter {
        /// Input.
        input: Box<ExecNode>,
        /// Sub-plan enumerating the universal bindings.
        universe: Box<ExecNode>,
        /// Predicate that must hold for every universal binding.
        pred: CExpr,
    },
    /// Projection (consumed by [`crate::run::run_plan`]).
    Project {
        /// Input.
        input: Box<ExecNode>,
        /// Output columns.
        targets: Vec<(String, CExpr)>,
    },
    /// Sort (materializes).
    Sort {
        /// Input.
        input: Box<ExecNode>,
        /// Compiled key.
        key: CExpr,
        /// Ascending?
        asc: bool,
    },
    /// Hash join against a collection's members: build a hash table
    /// over the whole collection lazily on the first input batch, then
    /// probe once per input row (see [`crate::cursor::HashJoinCursor`]).
    HashJoin {
        /// Probe input.
        input: Box<ExecNode>,
        /// Variable bound per probe row.
        var: String,
        /// Build-side collection anchor.
        anchor: Oid,
        /// Compiled probe key.
        key: CExpr,
        /// Build-side attribute position for an equi join; `None` keys
        /// the table on member identity (reference/deref-hoist mode).
        on: Option<usize>,
    },
    /// Index nested-loop join: per input row, equality-probe a
    /// secondary index and emit one row per match.
    IndexJoin {
        /// Probe input.
        input: Box<ExecNode>,
        /// Variable bound per match.
        var: String,
        /// Matched collection anchor.
        anchor: Oid,
        /// Index root page.
        root: u64,
        /// Compiled probe key.
        key: CExpr,
        /// Declared type of the indexed attribute, for probe-value
        /// coercion before key encoding (`Int` vs `Float`).
        key_ty: extra_model::Type,
    },
    /// Parallel exchange: run `input` across `dop` worker threads by
    /// partitioning its leftmost scan into morsels (see
    /// the `parallel` module), merging output batches in deterministic
    /// scan order. Falls back to serial execution when the scan is too
    /// small or the session runs with one worker.
    Parallel {
        /// The pipeline to fan out.
        input: Box<ExecNode>,
        /// Degree of parallelism requested by the planner.
        dop: usize,
    },
}

fn sem(e: excess_sema::SemaError) -> ModelError {
    ModelError::Semantic(e.to_string())
}

/// Compile a physical plan into an executable one.
pub fn prepare(plan: &Physical, ctx: &SemaCtx<'_>, range_env: &RangeEnv) -> ModelResult<ExecNode> {
    let counter = Cell::new(0);
    prepare_with(plan, ctx, range_env, &counter)
}

/// Compile with an externally provided aggregate-id counter (used for
/// nested compilations so ids stay unique per top-level plan).
pub fn prepare_with(
    plan: &Physical,
    ctx: &SemaCtx<'_>,
    range_env: &RangeEnv,
    agg_counter: &Cell<usize>,
) -> ModelResult<ExecNode> {
    // Collect binding element types introduced by the plan so expression
    // compilation sees every variable.
    let mut vars = ctx.vars.clone();
    collect_vars(plan, &mut vars);
    let full_ctx = SemaCtx {
        types: ctx.types,
        adts: ctx.adts,
        catalog: ctx.catalog,
        vars,
    };
    prepare_node(plan, &full_ctx, range_env, agg_counter)
}

fn collect_vars(plan: &Physical, vars: &mut HashMap<String, QualType>) {
    match plan {
        Physical::Unit => {}
        Physical::SeqScan { binding }
        | Physical::SystemScan { binding, .. }
        | Physical::IndexScan { binding, .. } => {
            vars.insert(binding.var.clone(), binding.elem.clone());
        }
        Physical::Unnest { input, binding } => {
            collect_vars(input, vars);
            vars.insert(binding.var.clone(), binding.elem.clone());
        }
        Physical::HashJoin {
            input, binding, on, ..
        } => {
            collect_vars(input, vars);
            // Reference mode binds the *dereferenced* target tuple;
            // equi mode binds the original member value. Either way the
            // element type types downstream attribute accesses.
            let elem = match on {
                None => QualType::own(binding.elem.ty.clone()),
                Some(_) => binding.elem.clone(),
            };
            vars.insert(binding.var.clone(), elem);
        }
        Physical::IndexJoin { input, binding, .. } => {
            collect_vars(input, vars);
            vars.insert(binding.var.clone(), binding.elem.clone());
        }
        Physical::NestedLoop { outer, inner } => {
            collect_vars(outer, vars);
            collect_vars(inner, vars);
        }
        Physical::Filter { input, .. }
        | Physical::Project { input, .. }
        | Physical::Sort { input, .. }
        | Physical::Parallel { input, .. } => collect_vars(input, vars),
        Physical::UniversalFilter {
            input, bindings, ..
        } => {
            collect_vars(input, vars);
            for b in bindings {
                vars.insert(b.var.clone(), b.elem.clone());
            }
        }
    }
}

fn prepare_node(
    plan: &Physical,
    ctx: &SemaCtx<'_>,
    range_env: &RangeEnv,
    agg_counter: &Cell<usize>,
) -> ModelResult<ExecNode> {
    let compiler = Compiler::new(ctx, range_env, agg_counter);
    Ok(match plan {
        Physical::Unit => ExecNode::Unit,
        Physical::SeqScan { binding } => ExecNode::SeqScan {
            var: binding.var.clone(),
            anchor: collection_oid(binding)?,
        },
        Physical::SystemScan { binding, view } => ExecNode::SystemScan {
            var: binding.var.clone(),
            view: view.clone(),
        },
        Physical::IndexScan {
            binding,
            index,
            lower,
            upper,
            ..
        } => ExecNode::IndexScan {
            var: binding.var.clone(),
            anchor: collection_oid(binding)?,
            root: index.root,
            lower: lower.clone(),
            upper: upper.clone(),
        },
        Physical::Unnest { input, binding } => ExecNode::Unnest {
            input: Box::new(prepare_node(input, ctx, range_env, agg_counter)?),
            var: binding.var.clone(),
            source: unnest_source(binding, ctx)?,
        },
        Physical::NestedLoop { outer, inner } => ExecNode::NestedLoop {
            outer: Box::new(prepare_node(outer, ctx, range_env, agg_counter)?),
            inner: Box::new(prepare_node(inner, ctx, range_env, agg_counter)?),
        },
        Physical::Filter { input, pred } => ExecNode::Filter {
            input: Box::new(prepare_node(input, ctx, range_env, agg_counter)?),
            pred: compiler.compile(pred)?,
        },
        Physical::UniversalFilter {
            input,
            bindings,
            pred,
        } => ExecNode::UniversalFilter {
            input: Box::new(prepare_node(input, ctx, range_env, agg_counter)?),
            universe: Box::new(prepare_bindings(bindings, ctx, range_env, agg_counter)?),
            pred: compiler.compile(pred)?,
        },
        Physical::Project { input, targets } => ExecNode::Project {
            input: Box::new(prepare_node(input, ctx, range_env, agg_counter)?),
            targets: targets
                .iter()
                .map(|(n, e)| Ok((n.clone(), compiler.compile(e)?)))
                .collect::<ModelResult<_>>()?,
        },
        Physical::Sort { input, key, asc } => ExecNode::Sort {
            input: Box::new(prepare_node(input, ctx, range_env, agg_counter)?),
            key: compiler.compile(key)?,
            asc: *asc,
        },
        Physical::HashJoin {
            input,
            binding,
            key,
            on,
        } => ExecNode::HashJoin {
            input: Box::new(prepare_node(input, ctx, range_env, agg_counter)?),
            var: binding.var.clone(),
            anchor: collection_oid(binding)?,
            key: compiler.compile(key)?,
            on: on
                .as_ref()
                .map(|attr| ctx.attr_pos(&binding.elem, attr).map_err(sem))
                .transpose()?,
        },
        Physical::IndexJoin {
            input,
            binding,
            index,
            key,
        } => ExecNode::IndexJoin {
            input: Box::new(prepare_node(input, ctx, range_env, agg_counter)?),
            var: binding.var.clone(),
            anchor: collection_oid(binding)?,
            root: index.root,
            key: compiler.compile(key)?,
            key_ty: ctx.attr_type(&binding.elem, &index.attr).map_err(sem)?.ty,
        },
        Physical::Parallel { input, dop } => ExecNode::Parallel {
            input: Box::new(prepare_node(input, ctx, range_env, agg_counter)?),
            dop: *dop,
        },
    })
}

/// Compile a chain of bindings (dependency-ordered) into a plan producing
/// their joint environments — used for universal filters and aggregate
/// `over` sources.
pub fn prepare_bindings(
    bindings: &[ResolvedRange],
    ctx: &SemaCtx<'_>,
    _range_env: &RangeEnv,
    _agg_counter: &Cell<usize>,
) -> ModelResult<ExecNode> {
    let mut vars = ctx.vars.clone();
    for b in bindings {
        vars.insert(b.var.clone(), b.elem.clone());
    }
    let full_ctx = SemaCtx {
        types: ctx.types,
        adts: ctx.adts,
        catalog: ctx.catalog,
        vars,
    };
    let mut node = ExecNode::Unit;
    for b in bindings {
        node = match (&b.root, b.steps.is_empty()) {
            (RootSource::Collection(_), true) => {
                let scan = ExecNode::SeqScan {
                    var: b.var.clone(),
                    anchor: collection_oid(b)?,
                };
                match node {
                    ExecNode::Unit => scan,
                    prev => ExecNode::NestedLoop {
                        outer: Box::new(prev),
                        inner: Box::new(scan),
                    },
                }
            }
            (RootSource::System(view), _) => {
                let scan = ExecNode::SystemScan {
                    var: b.var.clone(),
                    view: view.clone(),
                };
                match node {
                    ExecNode::Unit => scan,
                    prev => ExecNode::NestedLoop {
                        outer: Box::new(prev),
                        inner: Box::new(scan),
                    },
                }
            }
            _ => ExecNode::Unnest {
                input: Box::new(node),
                var: b.var.clone(),
                source: unnest_source(b, &full_ctx)?,
            },
        };
    }
    Ok(node)
}

fn collection_oid(b: &ResolvedRange) -> ModelResult<Oid> {
    match &b.root {
        RootSource::Collection(obj) => Ok(obj.oid),
        other => Err(ModelError::Semantic(format!(
            "binding '{}' does not scan a collection ({other:?})",
            b.var
        ))),
    }
}

/// Resolve an unnest's attribute steps into positions.
type MkSource = Box<dyn Fn(Vec<usize>, Vec<String>) -> USource>;

fn unnest_source(b: &ResolvedRange, ctx: &SemaCtx<'_>) -> ModelResult<USource> {
    let (start_qty, mk): (QualType, MkSource) = match &b.root {
        RootSource::Var(parent) => {
            let qty = ctx
                .vars
                .get(parent)
                .cloned()
                .ok_or_else(|| ModelError::Semantic(format!("unbound parent '{parent}'")))?;
            let parent = parent.clone();
            (
                qty,
                Box::new(move |path, names| USource::FromVar {
                    parent: parent.clone(),
                    path,
                    names,
                }),
            )
        }
        RootSource::Object(obj) => {
            let oid = obj.oid;
            (
                obj.qty.clone(),
                Box::new(move |path, names| USource::FromObject { oid, path, names }),
            )
        }
        RootSource::Collection(_) | RootSource::System(_) => {
            return Err(ModelError::Semantic(format!(
                "binding '{}' should be a scan, not an unnest",
                b.var
            )))
        }
    };
    let mut cur = start_qty;
    let mut path = Vec::with_capacity(b.steps.len());
    for s in &b.steps {
        let pos = ctx.attr_pos(&cur, s).map_err(sem)?;
        path.push(pos);
        cur = ctx.attr_type(&cur, s).map_err(sem)?;
    }
    Ok(mk(path, b.steps.clone()))
}

/// Walk attribute positions, dereferencing refs along the way.
pub fn walk_path(ctx: &ExecCtx<'_>, mut v: Value, path: &[usize]) -> ModelResult<Value> {
    for &pos in path {
        v = crate::eval::deref(ctx, v)?;
        match v {
            Value::Tuple(mut fields) => {
                if pos >= fields.len() {
                    return Err(ModelError::Semantic(format!(
                        "tuple has {} fields, wanted position {pos}",
                        fields.len()
                    )));
                }
                v = fields.swap_remove(pos);
            }
            Value::Null => return Ok(Value::Null),
            other => {
                return Err(ModelError::TypeMismatch {
                    expected: "a tuple".into(),
                    got: other.kind().into(),
                })
            }
        }
    }
    crate::eval::deref_shallow(ctx, v)
}
