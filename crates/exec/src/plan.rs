//! Executable plans: compilation from physical plans and push-based
//! iteration.

use std::cell::Cell;
use std::collections::HashMap;
use std::ops::{Bound, ControlFlow};

use excess_algebra::Physical;
use excess_sema::{RangeEnv, ResolvedRange, RootSource, SemaCtx};
use exodus_storage::btree::BTree;
use exodus_storage::{Oid, RecordId};
use extra_model::{ModelError, ModelResult, QualType, Value};

use crate::cexpr::{CExpr, Compiler};
use crate::env::{Env, MemberId};
use crate::eval::{eval, truthy, ExecCtx};

/// Where an unnest's collection value comes from.
#[derive(Debug)]
pub enum USource {
    /// From another variable's current binding.
    FromVar {
        /// The parent variable.
        parent: String,
        /// Attribute positions from the parent to the collection.
        path: Vec<usize>,
        /// Attribute names (kept for nested-member update identities).
        names: Vec<String>,
    },
    /// From a named object.
    FromObject {
        /// The object's OID.
        oid: Oid,
        /// Attribute positions.
        path: Vec<usize>,
        /// Attribute names.
        names: Vec<String>,
    },
}

/// An executable plan node.
#[derive(Debug)]
pub enum ExecNode {
    /// One empty environment.
    Unit,
    /// Scan a collection's members.
    SeqScan {
        /// Variable bound per member.
        var: String,
        /// Collection anchor.
        anchor: Oid,
    },
    /// B+-tree index scan.
    IndexScan {
        /// Variable bound per member.
        var: String,
        /// Collection anchor.
        anchor: Oid,
        /// Index root page.
        root: u64,
        /// Lower key bound.
        lower: Bound<Vec<u8>>,
        /// Upper key bound.
        upper: Bound<Vec<u8>>,
    },
    /// Unnest a nested set/array.
    Unnest {
        /// Input.
        input: Box<ExecNode>,
        /// Variable bound per element.
        var: String,
        /// Collection source.
        source: USource,
    },
    /// Cross product (inner re-run per outer row).
    NestedLoop {
        /// Outer input.
        outer: Box<ExecNode>,
        /// Inner input.
        inner: Box<ExecNode>,
    },
    /// Predicate filter.
    Filter {
        /// Input.
        input: Box<ExecNode>,
        /// Compiled predicate.
        pred: CExpr,
    },
    /// Universal-quantification filter.
    UniversalFilter {
        /// Input.
        input: Box<ExecNode>,
        /// Sub-plan enumerating the universal bindings.
        universe: Box<ExecNode>,
        /// Predicate that must hold for every universal binding.
        pred: CExpr,
    },
    /// Projection (consumed by [`crate::run::run_plan`]).
    Project {
        /// Input.
        input: Box<ExecNode>,
        /// Output columns.
        targets: Vec<(String, CExpr)>,
    },
    /// Sort (materializes).
    Sort {
        /// Input.
        input: Box<ExecNode>,
        /// Compiled key.
        key: CExpr,
        /// Ascending?
        asc: bool,
    },
}

fn sem(e: excess_sema::SemaError) -> ModelError {
    ModelError::Semantic(e.to_string())
}

/// Compile a physical plan into an executable one.
pub fn prepare(
    plan: &Physical,
    ctx: &SemaCtx<'_>,
    range_env: &RangeEnv,
) -> ModelResult<ExecNode> {
    let counter = Cell::new(0);
    prepare_with(plan, ctx, range_env, &counter)
}

/// Compile with an externally provided aggregate-id counter (used for
/// nested compilations so ids stay unique per top-level plan).
pub fn prepare_with(
    plan: &Physical,
    ctx: &SemaCtx<'_>,
    range_env: &RangeEnv,
    agg_counter: &Cell<usize>,
) -> ModelResult<ExecNode> {
    // Collect binding element types introduced by the plan so expression
    // compilation sees every variable.
    let mut vars = ctx.vars.clone();
    collect_vars(plan, &mut vars);
    let full_ctx = SemaCtx { types: ctx.types, adts: ctx.adts, catalog: ctx.catalog, vars };
    prepare_node(plan, &full_ctx, range_env, agg_counter)
}

fn collect_vars(plan: &Physical, vars: &mut HashMap<String, QualType>) {
    match plan {
        Physical::Unit => {}
        Physical::SeqScan { binding } | Physical::IndexScan { binding, .. } => {
            vars.insert(binding.var.clone(), binding.elem.clone());
        }
        Physical::Unnest { input, binding } => {
            collect_vars(input, vars);
            vars.insert(binding.var.clone(), binding.elem.clone());
        }
        Physical::NestedLoop { outer, inner } => {
            collect_vars(outer, vars);
            collect_vars(inner, vars);
        }
        Physical::Filter { input, .. }
        | Physical::Project { input, .. }
        | Physical::Sort { input, .. } => collect_vars(input, vars),
        Physical::UniversalFilter { input, bindings, .. } => {
            collect_vars(input, vars);
            for b in bindings {
                vars.insert(b.var.clone(), b.elem.clone());
            }
        }
    }
}

fn prepare_node(
    plan: &Physical,
    ctx: &SemaCtx<'_>,
    range_env: &RangeEnv,
    agg_counter: &Cell<usize>,
) -> ModelResult<ExecNode> {
    let compiler = Compiler::new(ctx, range_env, agg_counter);
    Ok(match plan {
        Physical::Unit => ExecNode::Unit,
        Physical::SeqScan { binding } => ExecNode::SeqScan {
            var: binding.var.clone(),
            anchor: collection_oid(binding)?,
        },
        Physical::IndexScan { binding, index, lower, upper } => ExecNode::IndexScan {
            var: binding.var.clone(),
            anchor: collection_oid(binding)?,
            root: index.root,
            lower: lower.clone(),
            upper: upper.clone(),
        },
        Physical::Unnest { input, binding } => ExecNode::Unnest {
            input: Box::new(prepare_node(input, ctx, range_env, agg_counter)?),
            var: binding.var.clone(),
            source: unnest_source(binding, ctx)?,
        },
        Physical::NestedLoop { outer, inner } => ExecNode::NestedLoop {
            outer: Box::new(prepare_node(outer, ctx, range_env, agg_counter)?),
            inner: Box::new(prepare_node(inner, ctx, range_env, agg_counter)?),
        },
        Physical::Filter { input, pred } => ExecNode::Filter {
            input: Box::new(prepare_node(input, ctx, range_env, agg_counter)?),
            pred: compiler.compile(pred)?,
        },
        Physical::UniversalFilter { input, bindings, pred } => ExecNode::UniversalFilter {
            input: Box::new(prepare_node(input, ctx, range_env, agg_counter)?),
            universe: Box::new(prepare_bindings(bindings, ctx, range_env, agg_counter)?),
            pred: compiler.compile(pred)?,
        },
        Physical::Project { input, targets } => ExecNode::Project {
            input: Box::new(prepare_node(input, ctx, range_env, agg_counter)?),
            targets: targets
                .iter()
                .map(|(n, e)| Ok((n.clone(), compiler.compile(e)?)))
                .collect::<ModelResult<_>>()?,
        },
        Physical::Sort { input, key, asc } => ExecNode::Sort {
            input: Box::new(prepare_node(input, ctx, range_env, agg_counter)?),
            key: compiler.compile(key)?,
            asc: *asc,
        },
    })
}

/// Compile a chain of bindings (dependency-ordered) into a plan producing
/// their joint environments — used for universal filters and aggregate
/// `over` sources.
pub fn prepare_bindings(
    bindings: &[ResolvedRange],
    ctx: &SemaCtx<'_>,
    _range_env: &RangeEnv,
    _agg_counter: &Cell<usize>,
) -> ModelResult<ExecNode> {
    let mut vars = ctx.vars.clone();
    for b in bindings {
        vars.insert(b.var.clone(), b.elem.clone());
    }
    let full_ctx = SemaCtx { types: ctx.types, adts: ctx.adts, catalog: ctx.catalog, vars };
    let mut node = ExecNode::Unit;
    for b in bindings {
        node = match (&b.root, b.steps.is_empty()) {
            (RootSource::Collection(_), true) => {
                let scan = ExecNode::SeqScan { var: b.var.clone(), anchor: collection_oid(b)? };
                match node {
                    ExecNode::Unit => scan,
                    prev => ExecNode::NestedLoop { outer: Box::new(prev), inner: Box::new(scan) },
                }
            }
            _ => ExecNode::Unnest {
                input: Box::new(node),
                var: b.var.clone(),
                source: unnest_source(b, &full_ctx)?,
            },
        };
    }
    Ok(node)
}

fn collection_oid(b: &ResolvedRange) -> ModelResult<Oid> {
    match &b.root {
        RootSource::Collection(obj) => Ok(obj.oid),
        other => Err(ModelError::Semantic(format!(
            "binding '{}' does not scan a collection ({other:?})",
            b.var
        ))),
    }
}

/// Resolve an unnest's attribute steps into positions.
type MkSource = Box<dyn Fn(Vec<usize>, Vec<String>) -> USource>;

fn unnest_source(b: &ResolvedRange, ctx: &SemaCtx<'_>) -> ModelResult<USource> {
    let (start_qty, mk): (QualType, MkSource) =
        match &b.root {
            RootSource::Var(parent) => {
                let qty = ctx
                    .vars
                    .get(parent)
                    .cloned()
                    .ok_or_else(|| ModelError::Semantic(format!("unbound parent '{parent}'")))?;
                let parent = parent.clone();
                (qty, Box::new(move |path, names| USource::FromVar {
                    parent: parent.clone(),
                    path,
                    names,
                }))
            }
            RootSource::Object(obj) => {
                let oid = obj.oid;
                (obj.qty.clone(), Box::new(move |path, names| USource::FromObject {
                    oid,
                    path,
                    names,
                }))
            }
            RootSource::Collection(_) => {
                return Err(ModelError::Semantic(format!(
                    "binding '{}' should be a scan, not an unnest",
                    b.var
                )))
            }
        };
    let mut cur = start_qty;
    let mut path = Vec::with_capacity(b.steps.len());
    for s in &b.steps {
        let pos = ctx.attr_pos(&cur, s).map_err(sem)?;
        path.push(pos);
        cur = ctx.attr_type(&cur, s).map_err(sem)?;
    }
    Ok(mk(path, b.steps.clone()))
}

type RowFn<'f> = dyn FnMut(&ExecCtx<'_>, &mut Env) -> ModelResult<ControlFlow<()>> + 'f;

impl ExecNode {
    /// Push every produced environment through `f`. `ControlFlow::Break`
    /// stops iteration early.
    pub fn for_each(
        &self,
        ctx: &ExecCtx<'_>,
        env: &mut Env,
        f: &mut RowFn<'_>,
    ) -> ModelResult<ControlFlow<()>> {
        match self {
            ExecNode::Unit => f(ctx, env),
            ExecNode::SeqScan { var, anchor } => {
                let members: Vec<(RecordId, Value)> = ctx
                    .store
                    .scan_members(*anchor)?
                    .collect::<ModelResult<Vec<_>>>()?;
                for (rid, value) in members {
                    let id = match &value {
                        Value::Ref(o) => MemberId::Object(*o),
                        _ => MemberId::Record { anchor: *anchor, rid },
                    };
                    let shadowed = env.bind(var, value, id);
                    let flow = f(ctx, env)?;
                    env.restore(var, shadowed);
                    if flow.is_break() {
                        return Ok(ControlFlow::Break(()));
                    }
                }
                Ok(ControlFlow::Continue(()))
            }
            ExecNode::IndexScan { var, anchor, root, lower, upper } => {
                let tree = BTree::open(*root);
                let pool = ctx.store.storage().pool().clone();
                let entries: Vec<(Vec<u8>, u64)> = tree
                    .scan(pool, lower.clone(), upper.clone())
                    .collect::<Result<_, _>>()?;
                for (_, packed) in entries {
                    let rid = RecordId::unpack(packed);
                    let bytes = ctx.store.storage().read(rid)?;
                    let value = extra_model::valueio::from_bytes(&bytes)?;
                    let id = match &value {
                        Value::Ref(o) => MemberId::Object(*o),
                        _ => MemberId::Record { anchor: *anchor, rid },
                    };
                    let shadowed = env.bind(var, value, id);
                    let flow = f(ctx, env)?;
                    env.restore(var, shadowed);
                    if flow.is_break() {
                        return Ok(ControlFlow::Break(()));
                    }
                }
                Ok(ControlFlow::Continue(()))
            }
            ExecNode::Unnest { input, var, source } => {
                input.for_each(ctx, env, &mut |ctx, env| {
                    let (collection, parent_desc, names) = match source {
                        USource::FromVar { parent, path, names } => {
                            let base = env.get(parent).cloned().ok_or_else(|| {
                                ModelError::Semantic(format!("unbound parent '{parent}'"))
                            })?;
                            (walk_path(ctx, base, path)?, parent.clone(), names)
                        }
                        USource::FromObject { oid, path, names } => {
                            let base = Value::Ref(*oid);
                            (walk_path(ctx, base, path)?, String::new(), names)
                        }
                    };
                    let items: Vec<Value> = match collection {
                        Value::Set(ms) => ms,
                        Value::Array(items) => items,
                        Value::Null => Vec::new(),
                        other => {
                            return Err(ModelError::TypeMismatch {
                                expected: "a set or array".into(),
                                got: other.kind().into(),
                            })
                        }
                    };
                    for (i, item) in items.into_iter().enumerate() {
                        if item.is_null() {
                            continue; // unfilled array slots
                        }
                        let id = match &item {
                            Value::Ref(o) => MemberId::Object(*o),
                            _ if !parent_desc.is_empty() => MemberId::Nested {
                                parent: parent_desc.clone(),
                                steps: names.clone(),
                                index: i,
                            },
                            _ => MemberId::None,
                        };
                        let shadowed = env.bind(var, item, id);
                        let flow = f(ctx, env)?;
                        env.restore(var, shadowed);
                        if flow.is_break() {
                            return Ok(ControlFlow::Break(()));
                        }
                    }
                    Ok(ControlFlow::Continue(()))
                })
            }
            ExecNode::NestedLoop { outer, inner } => outer.for_each(ctx, env, &mut |ctx, env| {
                inner.for_each(ctx, env, f)
            }),
            ExecNode::Filter { input, pred } => input.for_each(ctx, env, &mut |ctx, env| {
                if truthy(&eval(pred, ctx, env)?)? {
                    f(ctx, env)
                } else {
                    Ok(ControlFlow::Continue(()))
                }
            }),
            ExecNode::UniversalFilter { input, universe, pred } => {
                input.for_each(ctx, env, &mut |ctx, env| {
                    let mut holds = true;
                    let _ = universe.for_each(ctx, env, &mut |ctx, env| {
                        if truthy(&eval(pred, ctx, env)?)? {
                            Ok(ControlFlow::Continue(()))
                        } else {
                            holds = false;
                            Ok(ControlFlow::Break(()))
                        }
                    })?;
                    if holds {
                        f(ctx, env)
                    } else {
                        Ok(ControlFlow::Continue(()))
                    }
                })
            }
            ExecNode::Project { input, .. } => input.for_each(ctx, env, f),
            ExecNode::Sort { input, key, asc } => {
                let mut rows: Vec<(Value, Env)> = Vec::new();
                let _ = input.for_each(ctx, env, &mut |ctx, env| {
                    rows.push((eval(key, ctx, env)?, env.clone()));
                    Ok(ControlFlow::Continue(()))
                })?;
                rows.sort_by(|(a, _), (b, _)| {
                    let ord = a.compare(b, ctx.adts).unwrap_or(std::cmp::Ordering::Equal);
                    if *asc {
                        ord
                    } else {
                        ord.reverse()
                    }
                });
                for (_, mut row_env) in rows {
                    if f(ctx, &mut row_env)?.is_break() {
                        return Ok(ControlFlow::Break(()));
                    }
                }
                Ok(ControlFlow::Continue(()))
            }
        }
    }
}

/// Walk attribute positions, dereferencing refs along the way.
pub fn walk_path(ctx: &ExecCtx<'_>, mut v: Value, path: &[usize]) -> ModelResult<Value> {
    for &pos in path {
        v = crate::eval::deref(ctx, v)?;
        match v {
            Value::Tuple(mut fields) => {
                if pos >= fields.len() {
                    return Err(ModelError::Semantic(format!(
                        "tuple has {} fields, wanted position {pos}",
                        fields.len()
                    )));
                }
                v = fields.swap_remove(pos);
            }
            Value::Null => return Ok(Value::Null),
            other => {
                return Err(ModelError::TypeMismatch {
                    expected: "a tuple".into(),
                    got: other.kind().into(),
                })
            }
        }
    }
    crate::eval::deref_shallow(ctx, v)
}
