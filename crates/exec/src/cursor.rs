//! Pull-based batch cursors: the execution protocol over
//! [`ExecNode`] plans.
//!
//! Every operator is a *batch transformer*: it consumes batches of input
//! rows and produces batches of output rows (the input rows extended
//! with whatever the operator binds). Leaves compose the same way — a
//! scan joins each input row against the collection's members, so
//! `NestedLoop { outer, inner }` is literally `open(inner, open(outer,
//! seed))`: the outer's output batches become the inner's input batches,
//! and the member list is fetched from storage once (in
//! [`ExecCtx::batch_size`]-sized chunks via the storage layer's
//! `next_batch` APIs) and replayed from a cache for every further input
//! row, instead of re-scanned per outer row as the old row-at-a-time
//! `for_each` protocol did.
//!
//! Filters evaluate their predicate across the whole batch into a
//! selection vector, then [`RowBatch::gather`] the surviving rows (a
//! batch that passes intact is forwarded without copying). Sort
//! materializes, sorts a row-index permutation, and re-batches.

use std::collections::VecDeque;
use std::vec::IntoIter;

use exodus_storage::btree::BTree;
use exodus_storage::RecordId;
use extra_model::{ModelError, ModelResult, Value};

use crate::batch::{Bindings, RowBatch};
use crate::cexpr::CExpr;
use crate::env::MemberId;
use crate::eval::{eval, truthy, ExecCtx};
use crate::plan::{walk_path, ExecNode, USource};
use crate::profile::PlanIndex;

impl ExecNode {
    /// Open a batch cursor over this plan, seeded with one batch of
    /// pre-bound rows (typically a single row of parameters).
    pub fn cursor(&self, seed: RowBatch) -> Cursor<'_> {
        open(self, Cursor::Seed(Some(seed)), None)
    }

    /// Like [`ExecNode::cursor`], but resolves each cursor's metric slot
    /// against `index` so pulls are profiled (see [`crate::profile`]).
    /// The index must have been built over this same plan tree.
    pub fn cursor_profiled<'p>(&'p self, seed: RowBatch, index: Option<&PlanIndex>) -> Cursor<'p> {
        open(self, Cursor::Seed(Some(seed)), index)
    }
}

/// A batch iterator over a plan subtree.
pub enum Cursor<'p> {
    /// Emits the seed batch once.
    Seed(Option<RowBatch>),
    /// Collection / index scan joined against its input rows.
    Scan(ScanCursor<'p>),
    /// Nested set/array unnest.
    Unnest(UnnestCursor<'p>),
    /// Selection-vector filter.
    Filter {
        /// Input cursor.
        input: Box<Cursor<'p>>,
        /// Compiled predicate.
        pred: &'p CExpr,
        /// Metric slot when profiling.
        slot: Option<u32>,
    },
    /// Universal-quantification filter.
    Universal {
        /// Input cursor.
        input: Box<Cursor<'p>>,
        /// Sub-plan enumerating the universal bindings.
        universe: &'p ExecNode,
        /// Predicate that must hold for every universal binding.
        pred: &'p CExpr,
        /// Metric slot when profiling.
        slot: Option<u32>,
    },
    /// Materializing sort.
    Sort {
        /// Input cursor.
        input: Box<Cursor<'p>>,
        /// Compiled key.
        key: &'p CExpr,
        /// Ascending?
        asc: bool,
        /// Sorted output, re-batched (filled on first pull).
        out: Option<IntoIter<RowBatch>>,
        /// Metric slot when profiling.
        slot: Option<u32>,
    },
    /// Emits pre-built batches (parallel workers replay morsel output
    /// through the rest of a pipeline with this as the substituted leaf).
    Queue(VecDeque<RowBatch>),
    /// Hash join probing a build-once member table.
    HashJoin(HashJoinCursor<'p>),
    /// Index nested-loop join probing a secondary index per row.
    IndexJoin(IndexJoinCursor<'p>),
    /// Parallel exchange over a pipeline (see the `parallel` module).
    Parallel(ParallelCursor<'p>),
}

fn open<'p>(node: &'p ExecNode, input: Cursor<'p>, index: Option<&PlanIndex>) -> Cursor<'p> {
    open_sub(node, None, input, index)
}

/// Open a cursor over `node`, except that the node identical to `leaf`
/// (by address) is replaced by `input` instead of opening normally —
/// parallel workers use this to splice morsel batches in for the
/// partitioned leftmost scan. When `index` is given, each cursor
/// resolves its profiling slot (nodes absent from the index — aggregate
/// sub-plans, universe plans — simply stay unprofiled).
pub(crate) fn open_sub<'p>(
    node: &'p ExecNode,
    leaf: Option<&'p ExecNode>,
    input: Cursor<'p>,
    index: Option<&PlanIndex>,
) -> Cursor<'p> {
    if leaf.is_some_and(|l| std::ptr::eq(node, l)) {
        return input;
    }
    let slot = index.and_then(|ix| ix.slot_of(node));
    match node {
        ExecNode::Unit => input,
        ExecNode::SeqScan { var, anchor } => Cursor::Scan(ScanCursor {
            input: Box::new(input),
            var,
            kind: ScanKind::Heap { anchor: *anchor },
            members: None,
            in_batch: None,
            in_row: 0,
            pos: 0,
            slot,
        }),
        ExecNode::SystemScan { var, view } => Cursor::Scan(ScanCursor {
            input: Box::new(input),
            var,
            kind: ScanKind::System { view },
            members: None,
            in_batch: None,
            in_row: 0,
            pos: 0,
            slot,
        }),
        ExecNode::IndexScan {
            var,
            anchor,
            root,
            lower,
            upper,
        } => Cursor::Scan(ScanCursor {
            input: Box::new(input),
            var,
            kind: ScanKind::Index {
                anchor: *anchor,
                root: *root,
                lower,
                upper,
            },
            members: None,
            in_batch: None,
            in_row: 0,
            pos: 0,
            slot,
        }),
        ExecNode::Unnest {
            input: child,
            var,
            source,
        } => Cursor::Unnest(UnnestCursor {
            input: Box::new(open_sub(child, leaf, input, index)),
            var,
            source,
            in_batch: None,
            in_row: 0,
            items: None,
            slot,
        }),
        // Batch streams compose: the outer's output is the inner's input.
        ExecNode::NestedLoop { outer, inner } => {
            open_sub(inner, leaf, open_sub(outer, leaf, input, index), index)
        }
        ExecNode::Filter { input: child, pred } => Cursor::Filter {
            input: Box::new(open_sub(child, leaf, input, index)),
            pred,
            slot,
        },
        ExecNode::UniversalFilter {
            input: child,
            universe,
            pred,
        } => Cursor::Universal {
            input: Box::new(open_sub(child, leaf, input, index)),
            universe,
            pred,
            slot,
        },
        // A mid-tree projection only narrows the output list, which is
        // applied by the plan runner; rows pass through.
        ExecNode::Project { input: child, .. } => open_sub(child, leaf, input, index),
        ExecNode::Sort {
            input: child,
            key,
            asc,
        } => Cursor::Sort {
            input: Box::new(open_sub(child, leaf, input, index)),
            key,
            asc: *asc,
            out: None,
            slot,
        },
        ExecNode::HashJoin {
            input: child,
            var,
            anchor,
            key,
            on,
        } => Cursor::HashJoin(HashJoinCursor {
            input: Box::new(open_sub(child, leaf, input, index)),
            var,
            anchor: *anchor,
            key,
            on: *on,
            table: None,
            slot,
        }),
        ExecNode::IndexJoin {
            input: child,
            var,
            anchor,
            root,
            key,
            key_ty,
        } => Cursor::IndexJoin(IndexJoinCursor {
            input: Box::new(open_sub(child, leaf, input, index)),
            var,
            anchor: *anchor,
            root: *root,
            key,
            key_ty,
            slot,
        }),
        ExecNode::Parallel { input: child, .. } => Cursor::Parallel(ParallelCursor {
            plan: child,
            input: Box::new(input),
            state: None,
            slot,
        }),
    }
}

impl Cursor<'_> {
    /// This cursor's profiling slot, if one was resolved at open time.
    fn slot(&self) -> Option<u32> {
        match self {
            Cursor::Seed(_) | Cursor::Queue(_) => None,
            Cursor::Scan(s) => s.slot,
            Cursor::Unnest(u) => u.slot,
            Cursor::Filter { slot, .. }
            | Cursor::Universal { slot, .. }
            | Cursor::Sort { slot, .. } => *slot,
            Cursor::HashJoin(h) => h.slot,
            Cursor::IndexJoin(i) => i.slot,
            Cursor::Parallel(p) => p.slot,
        }
    }

    /// Pull the next non-empty batch, or `None` when exhausted.
    ///
    /// When the context carries a profiler and this cursor has a slot,
    /// the pull is timed (wall clock, inclusive of upstream pulls) and
    /// the produced batch is counted — one timer sample and a few adds
    /// per *batch*, nothing per row.
    pub fn next(&mut self, ctx: &ExecCtx<'_>) -> ModelResult<Option<RowBatch>> {
        match (self.slot(), ctx.profiler.as_ref()) {
            (Some(slot), Some(_)) => {
                let t0 = std::time::Instant::now();
                let out = self.next_inner(ctx);
                let prof = ctx.profiler.as_ref().expect("checked above");
                prof.record_ns(slot, t0.elapsed().as_nanos() as u64);
                if let Ok(Some(batch)) = &out {
                    prof.record_out(slot, batch.len());
                }
                out
            }
            _ => self.next_inner(ctx),
        }
    }

    fn next_inner(&mut self, ctx: &ExecCtx<'_>) -> ModelResult<Option<RowBatch>> {
        match self {
            Cursor::Seed(seed) => Ok(seed.take()),
            Cursor::Scan(scan) => scan.next(ctx),
            Cursor::Unnest(unnest) => unnest.next(ctx),
            Cursor::Filter { input, pred, slot } => loop {
                let Some(batch) = input.next(ctx)? else {
                    return Ok(None);
                };
                ctx.prof_in(*slot, batch.len());
                let mut sel: Vec<usize> = Vec::new();
                for r in 0..batch.len() {
                    if truthy(&eval(pred, ctx, &batch.row(r))?)? {
                        sel.push(r);
                    }
                }
                if sel.len() == batch.len() {
                    if !batch.is_empty() {
                        return Ok(Some(batch));
                    }
                } else if !sel.is_empty() {
                    return Ok(Some(batch.gather(&sel)));
                }
            },
            Cursor::Universal {
                input,
                universe,
                pred,
                slot,
            } => loop {
                let Some(batch) = input.next(ctx)? else {
                    return Ok(None);
                };
                ctx.prof_in(*slot, batch.len());
                let mut sel: Vec<usize> = Vec::new();
                for r in 0..batch.len() {
                    let seed = RowBatch::single(&batch.row(r));
                    let mut ucur = universe.cursor(seed);
                    let mut holds = true; // vacuously true on empty universes
                    'univ: while let Some(ub) = ucur.next(ctx)? {
                        for u in 0..ub.len() {
                            if !truthy(&eval(pred, ctx, &ub.row(u))?)? {
                                holds = false;
                                break 'univ; // stop pulling on first failure
                            }
                        }
                    }
                    if holds {
                        sel.push(r);
                    }
                }
                if sel.len() == batch.len() {
                    if !batch.is_empty() {
                        return Ok(Some(batch));
                    }
                } else if !sel.is_empty() {
                    return Ok(Some(batch.gather(&sel)));
                }
            },
            Cursor::Sort {
                input,
                key,
                asc,
                out,
                slot,
            } => {
                if out.is_none() {
                    let mut all = RowBatch::new();
                    while let Some(b) = input.next(ctx)? {
                        ctx.prof_in(*slot, b.len());
                        all.append(b);
                    }
                    let mut keys: Vec<Value> = Vec::with_capacity(all.len());
                    for r in 0..all.len() {
                        keys.push(eval(key, ctx, &all.row(r))?);
                    }
                    let mut idx: Vec<usize> = (0..all.len()).collect();
                    // Stable: ties keep input order.
                    idx.sort_by(|&a, &b| {
                        let ord = keys[a]
                            .compare(&keys[b], ctx.adts)
                            .unwrap_or(std::cmp::Ordering::Equal);
                        if *asc {
                            ord
                        } else {
                            ord.reverse()
                        }
                    });
                    let sorted = all.gather(&idx);
                    *out = Some(sorted.chunks(ctx.batch_size).into_iter());
                }
                Ok(out.as_mut().expect("just filled").next())
            }
            Cursor::Queue(batches) => loop {
                match batches.pop_front() {
                    Some(b) if b.is_empty() => continue,
                    other => return Ok(other),
                }
            },
            Cursor::HashJoin(join) => join.next(ctx),
            Cursor::IndexJoin(join) => join.next(ctx),
            Cursor::Parallel(par) => par.next(ctx),
        }
    }
}

/// The build side of a hash join.
enum JoinTable {
    /// Reference mode: member OID → dereferenced member tuple.
    ByRef(std::collections::HashMap<exodus_storage::Oid, Value>),
    /// Equi mode: normalized key bytes → matching members (original
    /// member value plus identity, exactly as a scan would bind them).
    ByKey(std::collections::HashMap<Vec<u8>, Vec<(Value, MemberId)>>),
}

/// Normalized hash key for equi-join matching: integral floats collapse
/// to ints so `Int(2)` and `Float(2.0)` meet, mirroring `=` comparison
/// semantics.
fn join_key(v: &Value) -> Vec<u8> {
    let norm = match v {
        Value::Float(f)
            if f.fract() == 0.0
                && f.is_finite()
                && (i64::MIN as f64..=i64::MAX as f64).contains(f) =>
        {
            Value::Int(*f as i64)
        }
        other => other.clone(),
    };
    extra_model::valueio::to_bytes(&norm)
}

/// Join-key values for every row of a batch. The dominant probe shape —
/// `Attr(base, pos)` where the bases evaluate to references (e.g.
/// `E.dept` over a reference-binding scan) — fetches all fields through
/// the storage layer's batched read, pinning each object-directory and
/// heap page once per batch instead of three pages per row. Non-Attr
/// keys, non-reference bases, and rows the batched read declines
/// (version chains, LOB payloads) evaluate row by row, reproducing the
/// scalar path's exact semantics.
fn eval_keys(key: &CExpr, ctx: &ExecCtx<'_>, batch: &RowBatch) -> ModelResult<Vec<Value>> {
    if let CExpr::Attr(base, pos) = key {
        let mut bases = Vec::with_capacity(batch.len());
        for r in 0..batch.len() {
            bases.push(eval(base, ctx, &batch.row(r))?);
        }
        if bases.iter().any(|v| matches!(v, Value::Ref(_))) {
            let mut idxs = Vec::with_capacity(batch.len());
            let mut oids = Vec::with_capacity(batch.len());
            for (r, v) in bases.iter().enumerate() {
                if let Value::Ref(o) = v {
                    idxs.push(r);
                    oids.push(*o);
                }
            }
            let fetched = ctx.store.fields_of_batch_at(&oids, *pos, ctx.snapshot)?;
            let mut out: Vec<Option<Value>> = vec![None; batch.len()];
            for (k, field) in fetched.into_iter().enumerate() {
                out[idxs[k]] = field;
            }
            return out
                .into_iter()
                .enumerate()
                .map(|(r, v)| match v {
                    Some(v) => Ok(v),
                    None => eval(key, ctx, &batch.row(r)),
                })
                .collect();
        }
    }
    (0..batch.len())
        .map(|r| eval(key, ctx, &batch.row(r)))
        .collect()
}

/// Hash join against a collection's members. The table is built lazily
/// on the first input batch (one snapshot scan of the build collection),
/// then probed once per input row.
pub struct HashJoinCursor<'p> {
    input: Box<Cursor<'p>>,
    var: &'p str,
    anchor: exodus_storage::Oid,
    key: &'p CExpr,
    /// Build attribute position for equi mode; `None` = reference mode.
    on: Option<usize>,
    table: Option<JoinTable>,
    /// Metric slot when profiling.
    slot: Option<u32>,
}

impl HashJoinCursor<'_> {
    fn build(&self, ctx: &ExecCtx<'_>) -> ModelResult<JoinTable> {
        let cap = ctx.batch_size.max(1);
        let mut scan = ctx.store.scan_members_batch_at(self.anchor, ctx.snapshot)?;
        match self.on {
            None => {
                let mut map = std::collections::HashMap::new();
                loop {
                    let chunk = scan.next_batch(cap)?;
                    if chunk.is_empty() {
                        break;
                    }
                    for (_, value) in chunk {
                        if let Value::Ref(o) = &value {
                            let o = *o;
                            let tuple = crate::eval::deref(ctx, value)?;
                            map.insert(o, tuple);
                        }
                    }
                }
                Ok(JoinTable::ByRef(map))
            }
            Some(pos) => {
                let mut map: std::collections::HashMap<Vec<u8>, Vec<(Value, MemberId)>> =
                    std::collections::HashMap::new();
                loop {
                    let chunk = scan.next_batch(cap)?;
                    if chunk.is_empty() {
                        break;
                    }
                    for (rid, value) in chunk {
                        let tuple = crate::eval::deref(ctx, value.clone())?;
                        let keyv = match &tuple {
                            Value::Tuple(fields) => fields.get(pos).cloned().unwrap_or(Value::Null),
                            _ => Value::Null,
                        };
                        // Null keys match nothing, as in the nested loop
                        // this join replaces.
                        if keyv.is_null() {
                            continue;
                        }
                        let (value, id) = member_binding(self.anchor, rid, value);
                        map.entry(join_key(&keyv)).or_default().push((value, id));
                    }
                }
                Ok(JoinTable::ByKey(map))
            }
        }
    }

    fn next(&mut self, ctx: &ExecCtx<'_>) -> ModelResult<Option<RowBatch>> {
        loop {
            let Some(batch) = self.input.next(ctx)? else {
                return Ok(None);
            };
            if batch.is_empty() {
                continue;
            }
            ctx.prof_in(self.slot, batch.len());
            if self.table.is_none() {
                self.table = Some(self.build(ctx)?);
            }
            let mut out = RowBatch::with_vars(RowBatch::extended_vars(&batch, self.var));
            match self.table.as_ref().expect("just built") {
                JoinTable::ByRef(map) => {
                    // 1:1 with the input: every row is extended, with a
                    // plain dereference as the probe-miss fallback (a
                    // reference outside the build collection, an owned
                    // tuple, or null).
                    let keys = eval_keys(self.key, ctx, &batch)?;
                    for (r, kv) in keys.into_iter().enumerate() {
                        let (value, id) = match kv {
                            Value::Ref(o) => match map.get(&o) {
                                Some(t) => (t.clone(), MemberId::Object(o)),
                                None => {
                                    (crate::eval::deref(ctx, Value::Ref(o))?, MemberId::Object(o))
                                }
                            },
                            other => (crate::eval::deref(ctx, other)?, MemberId::None),
                        };
                        out.push_extended(&batch, r, self.var, value, id);
                    }
                    return Ok(Some(out));
                }
                JoinTable::ByKey(map) => {
                    let keys = eval_keys(self.key, ctx, &batch)?;
                    for (r, kv) in keys.into_iter().enumerate() {
                        if kv.is_null() {
                            continue;
                        }
                        if let Some(matches) = map.get(&join_key(&kv)) {
                            for (value, id) in matches {
                                out.push_extended(&batch, r, self.var, value.clone(), id.clone());
                            }
                        }
                    }
                    if !out.is_empty() {
                        return Ok(Some(out));
                    }
                }
            }
        }
    }
}

/// Index nested-loop join: equality-probes a secondary B+-tree per
/// input row and emits one output row per visible match.
pub struct IndexJoinCursor<'p> {
    input: Box<Cursor<'p>>,
    var: &'p str,
    anchor: exodus_storage::Oid,
    root: u64,
    key: &'p CExpr,
    key_ty: &'p extra_model::Type,
    /// Metric slot when profiling.
    slot: Option<u32>,
}

/// Coerce a probe value to the indexed attribute's declared type so its
/// key encoding matches the index entries (mirrors the planner's
/// constant coercion for index scans).
fn coerce_key(v: &Value, ty: &extra_model::Type) -> Value {
    use extra_model::Type;
    match (v, ty) {
        (Value::Int(i), Type::Base(b)) if b.is_float() => Value::Float(*i as f64),
        (Value::Float(f), Type::Base(b)) if b.is_integer() && f.fract() == 0.0 => {
            Value::Int(*f as i64)
        }
        _ => v.clone(),
    }
}

impl IndexJoinCursor<'_> {
    fn next(&mut self, ctx: &ExecCtx<'_>) -> ModelResult<Option<RowBatch>> {
        let cap = ctx.batch_size.max(1);
        let tree = BTree::open(self.root);
        loop {
            let Some(batch) = self.input.next(ctx)? else {
                return Ok(None);
            };
            if batch.is_empty() {
                continue;
            }
            ctx.prof_in(self.slot, batch.len());
            let mut out = RowBatch::with_vars(RowBatch::extended_vars(&batch, self.var));
            let keys = eval_keys(self.key, ctx, &batch)?;
            for (r, kv) in keys.into_iter().enumerate() {
                if kv.is_null() {
                    continue;
                }
                let kv = coerce_key(&kv, self.key_ty);
                let Some(kb) = kv.key_encode(ctx.adts) else {
                    continue;
                };
                let pool = ctx.store.storage().pool().clone();
                let mut scan = tree.scan(
                    pool,
                    std::ops::Bound::Included(kb.clone()),
                    std::ops::Bound::Included(kb),
                );
                loop {
                    let chunk = scan.next_batch(cap)?;
                    if chunk.is_empty() {
                        break;
                    }
                    for (_, packed) in chunk {
                        let rid = RecordId::unpack(packed);
                        // Index entries may reference versions outside
                        // this snapshot; the visibility check skips them.
                        let Some(bytes) = exodus_storage::heap::read_record_visible(
                            ctx.store.storage().pool(),
                            rid,
                            ctx.snapshot,
                        )?
                        else {
                            continue;
                        };
                        let value = extra_model::valueio::from_bytes(&bytes)?;
                        let (value, id) = member_binding(self.anchor, rid, value);
                        out.push_extended(&batch, r, self.var, value, id);
                    }
                }
            }
            if !out.is_empty() {
                return Ok(Some(out));
            }
        }
    }
}

/// The exchange operator: materializes its (single-row) upstream seed,
/// hands the pipeline to the morsel driver on first pull, and replays
/// the merged output batches. When the driver declines (small scan, one
/// worker, multi-row seed) the pipeline runs serially in place.
pub struct ParallelCursor<'p> {
    /// The pipeline below the exchange.
    plan: &'p ExecNode,
    /// Upstream cursor producing the seed rows.
    input: Box<Cursor<'p>>,
    /// Filled on first pull.
    state: Option<ParState<'p>>,
    /// Metric slot of the exchange node when profiling.
    slot: Option<u32>,
}

enum ParState<'p> {
    /// Worker output, merged in deterministic scan order.
    Batches(IntoIter<RowBatch>),
    /// Serial fallback.
    Serial(Box<Cursor<'p>>),
}

impl<'p> ParallelCursor<'p> {
    fn next(&mut self, ctx: &ExecCtx<'_>) -> ModelResult<Option<RowBatch>> {
        if self.state.is_none() {
            // The exchange is a pipeline breaker for its seed: scoped
            // worker threads cannot outlive a pull, so the whole parallel
            // phase runs eagerly on the first one.
            let mut seed = RowBatch::new();
            while let Some(b) = self.input.next(ctx)? {
                ctx.prof_in(self.slot, b.len());
                seed.append(b);
            }
            let fanned = if seed.len() == 1 {
                crate::parallel::try_parallel_slotted(
                    self.plan,
                    ctx,
                    &seed,
                    self.slot,
                    &|_, batch| Ok(batch),
                )?
            } else {
                None
            };
            self.state = Some(match fanned {
                Some(batches) => ParState::Batches(batches.into_iter()),
                None => ParState::Serial(Box::new(open_sub(
                    self.plan,
                    None,
                    Cursor::Seed(Some(seed)),
                    ctx.profiler.as_ref().map(|p| p.index()),
                ))),
            });
        }
        match self.state.as_mut().expect("just filled") {
            ParState::Batches(it) => loop {
                match it.next() {
                    Some(b) if b.is_empty() => continue,
                    other => return Ok(other),
                }
            },
            ParState::Serial(cur) => cur.next(ctx),
        }
    }
}

/// How a scan fetches its members.
enum ScanKind<'p> {
    Heap {
        anchor: exodus_storage::Oid,
    },
    Index {
        anchor: exodus_storage::Oid,
        root: u64,
        lower: &'p std::ops::Bound<Vec<u8>>,
        upper: &'p std::ops::Bound<Vec<u8>>,
    },
    /// A `sys.<view>` virtual collection, materialized by the catalog's
    /// system-view provider. Members load once per cursor open — that
    /// single `load_members` call *is* the consistent snapshot a sys
    /// scan guarantees (replayed unchanged for every input row).
    System { view: &'p str },
}

/// A collection scan joined against its input rows. Members are fetched
/// once — batch-at-a-time from storage — and cached for replay when the
/// scan sits on the inner side of a nested loop.
pub struct ScanCursor<'p> {
    input: Box<Cursor<'p>>,
    var: &'p str,
    kind: ScanKind<'p>,
    members: Option<Vec<(Value, MemberId)>>,
    in_batch: Option<RowBatch>,
    in_row: usize,
    /// Position within `members` for the current input row.
    pos: usize,
    /// Metric slot when profiling.
    slot: Option<u32>,
}

impl ScanCursor<'_> {
    fn load_members(&self, ctx: &ExecCtx<'_>) -> ModelResult<Vec<(Value, MemberId)>> {
        let cap = ctx.batch_size.max(1);
        let mut out: Vec<(Value, MemberId)> = Vec::new();
        match &self.kind {
            ScanKind::Heap { anchor } => {
                let mut scan = ctx.store.scan_members_batch_at(*anchor, ctx.snapshot)?;
                loop {
                    let chunk = scan.next_batch(cap)?;
                    if chunk.is_empty() {
                        break;
                    }
                    for (rid, value) in chunk {
                        out.push(member_binding(*anchor, rid, value));
                    }
                }
            }
            ScanKind::Index {
                anchor,
                root,
                lower,
                upper,
            } => {
                let tree = BTree::open(*root);
                let pool = ctx.store.storage().pool().clone();
                let mut scan = tree.scan(pool, (*lower).clone(), (*upper).clone());
                loop {
                    let chunk = scan.next_batch(cap)?;
                    if chunk.is_empty() {
                        break;
                    }
                    for (_, packed) in chunk {
                        let rid = RecordId::unpack(packed);
                        // Index entries are maintained synchronously by the
                        // writer, so they can point at versions outside this
                        // snapshot (uncommitted inserts, deleted members);
                        // the visibility check filters those out.
                        let Some(bytes) = exodus_storage::heap::read_record_visible(
                            ctx.store.storage().pool(),
                            rid,
                            ctx.snapshot,
                        )?
                        else {
                            continue;
                        };
                        let value = extra_model::valueio::from_bytes(&bytes)?;
                        out.push(member_binding(*anchor, rid, value));
                    }
                }
            }
            ScanKind::System { view } => {
                let rows = ctx.catalog.system_view_rows(view).ok_or_else(|| {
                    ModelError::Semantic(format!("no system view 'sys.{view}'"))
                })?;
                out.extend(rows.into_iter().map(|v| (v, MemberId::None)));
            }
        }
        Ok(out)
    }

    fn next(&mut self, ctx: &ExecCtx<'_>) -> ModelResult<Option<RowBatch>> {
        let cap = ctx.batch_size.max(1);
        let mut out: Option<RowBatch> = None;
        loop {
            if self.in_batch.is_none() {
                match self.input.next(ctx)? {
                    Some(b) if b.is_empty() => continue,
                    Some(b) => {
                        ctx.prof_in(self.slot, b.len());
                        self.in_batch = Some(b);
                        self.in_row = 0;
                        self.pos = 0;
                    }
                    None => return Ok(out.filter(|b| !b.is_empty())),
                }
            }
            if self.in_row >= self.in_batch.as_ref().expect("checked").len() {
                self.in_batch = None;
                continue;
            }
            if self.members.is_none() {
                self.members = Some(self.load_members(ctx)?);
            }
            let src = self.in_batch.as_ref().expect("checked");
            let ms = self.members.as_ref().expect("just loaded");
            let out_batch = out
                .get_or_insert_with(|| RowBatch::with_vars(RowBatch::extended_vars(src, self.var)));
            while self.pos < ms.len() && out_batch.len() < cap {
                let (value, id) = &ms[self.pos];
                out_batch.push_extended(src, self.in_row, self.var, value.clone(), id.clone());
                self.pos += 1;
            }
            if self.pos >= ms.len() {
                self.pos = 0;
                self.in_row += 1;
            }
            if out_batch.len() == cap {
                return Ok(out);
            }
        }
    }
}

pub(crate) fn member_binding(
    anchor: exodus_storage::Oid,
    rid: RecordId,
    value: Value,
) -> (Value, MemberId) {
    let id = match &value {
        Value::Ref(o) => MemberId::Object(*o),
        _ => MemberId::Record { anchor, rid },
    };
    (value, id)
}

/// Unnests a nested set/array per input row.
pub struct UnnestCursor<'p> {
    input: Box<Cursor<'p>>,
    var: &'p str,
    source: &'p USource,
    in_batch: Option<RowBatch>,
    in_row: usize,
    /// Remaining `(original index, item)` pairs of the current row's
    /// collection (nulls — unfilled array slots — already dropped).
    items: Option<IntoIter<(usize, Value)>>,
    /// Metric slot when profiling.
    slot: Option<u32>,
}

impl UnnestCursor<'_> {
    fn items_for(&self, ctx: &ExecCtx<'_>, src: &RowBatch) -> ModelResult<Vec<(usize, Value)>> {
        let collection = match self.source {
            USource::FromVar { parent, path, .. } => {
                let base =
                    src.row(self.in_row).value(parent).cloned().ok_or_else(|| {
                        ModelError::Semantic(format!("unbound parent '{parent}'"))
                    })?;
                walk_path(ctx, base, path)?
            }
            USource::FromObject { oid, path, .. } => walk_path(ctx, Value::Ref(*oid), path)?,
        };
        let items: Vec<Value> = match collection {
            Value::Set(ms) => ms,
            Value::Array(items) => items,
            Value::Null => Vec::new(),
            other => {
                return Err(ModelError::TypeMismatch {
                    expected: "a set or array".into(),
                    got: other.kind().into(),
                })
            }
        };
        Ok(items
            .into_iter()
            .enumerate()
            .filter(|(_, item)| !item.is_null())
            .collect())
    }

    fn next(&mut self, ctx: &ExecCtx<'_>) -> ModelResult<Option<RowBatch>> {
        let cap = ctx.batch_size.max(1);
        let (parent_desc, names) = match self.source {
            USource::FromVar { parent, names, .. } => (parent.as_str(), names),
            USource::FromObject { names, .. } => ("", names),
        };
        let mut out: Option<RowBatch> = None;
        loop {
            if self.in_batch.is_none() {
                match self.input.next(ctx)? {
                    Some(b) if b.is_empty() => continue,
                    Some(b) => {
                        ctx.prof_in(self.slot, b.len());
                        self.in_batch = Some(b);
                        self.in_row = 0;
                        self.items = None;
                    }
                    None => return Ok(out.filter(|b| !b.is_empty())),
                }
            }
            if self.in_row >= self.in_batch.as_ref().expect("checked").len() {
                self.in_batch = None;
                continue;
            }
            if self.items.is_none() {
                let src = self.in_batch.as_ref().expect("checked");
                self.items = Some(self.items_for(ctx, src)?.into_iter());
            }
            let src = self.in_batch.as_ref().expect("checked");
            let out_batch = out
                .get_or_insert_with(|| RowBatch::with_vars(RowBatch::extended_vars(src, self.var)));
            let it = self.items.as_mut().expect("just filled");
            let mut row_done = false;
            while out_batch.len() < cap {
                match it.next() {
                    Some((i, item)) => {
                        let id = match &item {
                            Value::Ref(o) => MemberId::Object(*o),
                            _ if !parent_desc.is_empty() => MemberId::Nested {
                                parent: parent_desc.to_string(),
                                steps: names.clone(),
                                index: i,
                            },
                            _ => MemberId::None,
                        };
                        out_batch.push_extended(src, self.in_row, self.var, item, id);
                    }
                    None => {
                        row_done = true;
                        break;
                    }
                }
            }
            if row_done {
                self.items = None;
                self.in_row += 1;
            }
            if out_batch.len() == cap {
                return Ok(out);
            }
        }
    }
}
