//! Compiled expressions: the executable form of EXCESS expressions.
//!
//! Compilation resolves what the analyzer inferred: attribute names become
//! tuple positions, ADT calls bind to registry functions, EXCESS functions
//! are pre-planned (their `retrieve` bodies become executable plans — the
//! uniform function/operator optimization the paper calls for), ADT
//! literals are parsed at compile time, and aggregate `over` clauses are
//! resolved into binding sub-plans.

use std::cell::{Cell, RefCell};
use std::collections::HashSet;
use std::sync::Arc;

use excess_lang::{Aggregate, BinOp, Expr, Lit, UnOp};
use excess_sema::resolve::Resolver;
use excess_sema::{RangeEnv, SemaCtx};
use exodus_storage::Oid;
use extra_model::{AdtId, ModelError, ModelResult, QualType, Type, Value};

use crate::plan::{prepare_bindings, prepare_with, ExecNode};

/// Maximum EXCESS-function call depth at runtime.
pub const MAX_CALL_DEPTH: u32 = 64;

/// A pre-planned EXCESS function.
pub struct CompiledFunction {
    /// Function name (diagnostics).
    pub name: String,
    /// Parameter names, bound positionally at call time.
    pub params: Vec<String>,
    /// The body plan (a `Project` at the top).
    pub plan: ExecNode,
    /// Whether the declared return type is a set (collect all rows) or a
    /// scalar (first row).
    pub returns_set: bool,
}

impl std::fmt::Debug for CompiledFunction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "CompiledFunction({}/{})", self.name, self.params.len())
    }
}

/// Aggregate implementations.
#[derive(Debug, Clone)]
pub enum AggFunc {
    /// `count`.
    Count,
    /// `sum`.
    Sum,
    /// `avg`.
    Avg,
    /// `min`.
    Min,
    /// `max`.
    Max,
    /// `unique` — the distinct set of argument values.
    Unique,
    /// A user-defined set function (applied to the collected set).
    UserSet(Arc<CompiledFunction>),
}

/// Where an aggregate's values come from.
#[derive(Debug)]
pub enum AggSource {
    /// Fresh iteration of resolved `over` ranges.
    Ranges(ExecNode),
    /// The members of the (set-valued) argument itself, e.g.
    /// `count(E.kids)`.
    SetArg,
}

/// A compiled aggregate.
#[derive(Debug)]
pub struct CAgg {
    /// Unique id within the plan (group-cache key).
    pub id: usize,
    /// The aggregate function.
    pub func: AggFunc,
    /// Argument, evaluated per source binding (for `SetArg`, evaluated
    /// once; members aggregated).
    pub arg: Option<CExpr>,
    /// Value source.
    pub source: AggSource,
    /// Partitioning expressions (`by`).
    pub by: Vec<CExpr>,
    /// Inner qualification.
    pub qual: Option<CExpr>,
    /// Whether the group table may be cached across outer rows
    /// (uncorrelated aggregates).
    pub cacheable: bool,
}

/// A compiled expression.
#[derive(Debug)]
pub enum CExpr {
    /// A constant (literals, parsed ADT literals).
    Const(Value),
    /// A bound variable.
    Var(String),
    /// A named collection used as a whole-set value.
    NamedSet(Oid),
    /// A named schema-type object: denotes a reference to it.
    NamedRef(Oid),
    /// A named non-schema object: denotes its stored value.
    NamedValue(Oid),
    /// Attribute access by position (dereferencing through refs).
    Attr(Box<CExpr>, usize),
    /// 1-based array indexing.
    Idx(Box<CExpr>, Box<CExpr>),
    /// Logical not.
    Not(Box<CExpr>),
    /// Numeric negation.
    Neg(Box<CExpr>),
    /// Built-in binary operation.
    Bin(BinOp, Box<CExpr>, Box<CExpr>),
    /// ADT function call (covers both call syntaxes and ADT operators).
    AdtCall {
        /// The receiver ADT.
        id: AdtId,
        /// Function name.
        func: String,
        /// Arguments (receiver first).
        args: Vec<CExpr>,
    },
    /// EXCESS function call.
    FunCall {
        /// The pre-planned function.
        func: Arc<CompiledFunction>,
        /// Arguments.
        args: Vec<CExpr>,
    },
    /// Aggregate.
    Agg(Box<CAgg>),
    /// Set literal.
    SetLit(Vec<CExpr>),
    /// Tuple literal (fields positional after compilation).
    TupleLit(Vec<CExpr>),
}

/// Compilation driver. Holds the analysis context (whose `vars` are the
/// variables bound by the enclosing plan) and the session ranges (for
/// aggregate `over` resolution).
pub struct Compiler<'a> {
    /// Analysis context.
    pub ctx: &'a SemaCtx<'a>,
    /// Session ranges.
    pub range_env: &'a RangeEnv,
    agg_counter: &'a Cell<usize>,
    fn_stack: RefCell<Vec<String>>,
}

fn sem(e: excess_sema::SemaError) -> ModelError {
    ModelError::Semantic(e.to_string())
}

impl<'a> Compiler<'a> {
    /// New compiler.
    pub fn new(
        ctx: &'a SemaCtx<'a>,
        range_env: &'a RangeEnv,
        agg_counter: &'a Cell<usize>,
    ) -> Self {
        Compiler {
            ctx,
            range_env,
            agg_counter,
            fn_stack: RefCell::new(Vec::new()),
        }
    }

    /// Compile an expression.
    pub fn compile(&self, e: &Expr) -> ModelResult<CExpr> {
        match e {
            Expr::Lit(l) => Ok(CExpr::Const(match l {
                Lit::Int(i) => Value::Int(*i),
                Lit::Float(f) => Value::Float(*f),
                Lit::Str(s) => Value::Str(s.clone()),
                Lit::Bool(b) => Value::Bool(*b),
                Lit::Null => Value::Null,
            })),
            Expr::Var(n) => {
                if self.ctx.vars.contains_key(n) {
                    return Ok(CExpr::Var(n.clone()));
                }
                if let Some(obj) = self.ctx.catalog.named(n) {
                    if obj.is_collection {
                        return Ok(CExpr::NamedSet(obj.oid));
                    }
                    if matches!(obj.qty.ty, Type::Schema(_)) {
                        return Ok(CExpr::NamedRef(obj.oid));
                    }
                    return Ok(CExpr::NamedValue(obj.oid));
                }
                Err(ModelError::Semantic(format!("unbound variable '{n}'")))
            }
            Expr::Path(base, attr) => {
                let bq = self.ctx.infer(base).map_err(sem)?;
                let pos = self.ctx.attr_pos(&bq, attr).map_err(sem)?;
                Ok(CExpr::Attr(Box::new(self.compile(base)?), pos))
            }
            Expr::Index(base, idx) => Ok(CExpr::Idx(
                Box::new(self.compile(base)?),
                Box::new(self.compile(idx)?),
            )),
            Expr::Unary(UnOp::Not, a) => Ok(CExpr::Not(Box::new(self.compile(a)?))),
            Expr::Unary(UnOp::Neg, a) => Ok(CExpr::Neg(Box::new(self.compile(a)?))),
            Expr::Binary(op, a, b) => self.compile_binary(*op, a, b),
            Expr::UserOp(sym, args) => {
                let mut recv = None;
                for a in args {
                    if let Type::Adt(id) = self.ctx.infer(a).map_err(sem)?.ty {
                        recv = Some(id);
                        break;
                    }
                }
                let id = recv.ok_or_else(|| {
                    ModelError::Semantic(format!("operator '{sym}' needs an ADT operand"))
                })?;
                let cand = self
                    .ctx
                    .adts
                    .operator_candidates(sym)
                    .iter()
                    .find(|(cid, o)| *cid == id && o.arity == args.len())
                    .ok_or_else(|| ModelError::UnknownAdt(format!("operator {sym}")))?
                    .1
                    .clone();
                let cargs = args
                    .iter()
                    .map(|a| self.compile(a))
                    .collect::<ModelResult<_>>()?;
                Ok(CExpr::AdtCall {
                    id,
                    func: cand.function,
                    args: cargs,
                })
            }
            Expr::Call { recv, name, args } => self.compile_call(recv.as_deref(), name, args),
            Expr::Agg(agg) => self.compile_agg(agg),
            Expr::SetLit(items) => Ok(CExpr::SetLit(
                items
                    .iter()
                    .map(|i| self.compile(i))
                    .collect::<ModelResult<_>>()?,
            )),
            Expr::TupleLit(fields) => Ok(CExpr::TupleLit(
                fields
                    .iter()
                    .map(|(_, v)| self.compile(v))
                    .collect::<ModelResult<_>>()?,
            )),
        }
    }

    fn compile_binary(&self, op: BinOp, a: &Expr, b: &Expr) -> ModelResult<CExpr> {
        // Arithmetic on an ADT operand routes through the registered
        // operator (the Complex `+` overload).
        if matches!(
            op,
            BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod
        ) {
            for side in [a, b] {
                if let Ok(QualType {
                    ty: Type::Adt(id), ..
                }) = self.ctx.infer(side)
                {
                    let sym = op.to_string();
                    let cand = self
                        .ctx
                        .adts
                        .operator_candidates(&sym)
                        .iter()
                        .find(|(cid, o)| *cid == id && o.arity == 2)
                        .ok_or_else(|| {
                            ModelError::UnknownAdt(format!(
                                "operator {sym} on {}",
                                self.ctx.adts.get(id).name()
                            ))
                        })?
                        .1
                        .clone();
                    return Ok(CExpr::AdtCall {
                        id,
                        func: cand.function,
                        args: vec![self.compile(a)?, self.compile(b)?],
                    });
                }
            }
        }
        Ok(CExpr::Bin(
            op,
            Box::new(self.compile(a)?),
            Box::new(self.compile(b)?),
        ))
    }

    fn compile_call(&self, recv: Option<&Expr>, name: &str, args: &[Expr]) -> ModelResult<CExpr> {
        // ADT literal constructor.
        if recv.is_none() && self.ctx.adts.contains(name) && args.len() == 1 {
            if let Expr::Lit(Lit::Str(s)) = &args[0] {
                let id = self.ctx.adts.lookup(name)?;
                return Ok(CExpr::Const(self.ctx.adts.parse(id, s)?));
            }
        }
        let mut all: Vec<&Expr> = Vec::with_capacity(args.len() + 1);
        if let Some(r) = recv {
            all.push(r);
        }
        all.extend(args.iter());
        let first_ty = all
            .first()
            .map(|e| self.ctx.infer(e))
            .transpose()
            .map_err(sem)?;
        if let Some(QualType {
            ty: Type::Adt(id), ..
        }) = &first_ty
        {
            let cargs = all
                .iter()
                .map(|a| self.compile(a))
                .collect::<ModelResult<_>>()?;
            // Existence/arity were checked by sema; bind by name.
            self.ctx.adts.function(*id, name)?;
            return Ok(CExpr::AdtCall {
                id: *id,
                func: name.to_string(),
                args: cargs,
            });
        }
        let def = self
            .ctx
            .resolve_excess_function(name, first_ty.as_ref(), all.len())
            .map_err(sem)?;
        let func = self.compile_function(&def)?;
        let cargs = all
            .iter()
            .map(|a| self.compile(a))
            .collect::<ModelResult<_>>()?;
        Ok(CExpr::FunCall { func, args: cargs })
    }

    /// Pre-plan an EXCESS function body.
    pub fn compile_function(
        &self,
        def: &excess_sema::FunctionDef,
    ) -> ModelResult<Arc<CompiledFunction>> {
        if self.fn_stack.borrow().iter().any(|n| n == &def.name) {
            return Err(ModelError::Semantic(format!(
                "recursive EXCESS function '{}' is not supported",
                def.name
            )));
        }
        self.fn_stack.borrow_mut().push(def.name.clone());
        let result = self.compile_function_inner(def);
        self.fn_stack.borrow_mut().pop();
        result
    }

    fn compile_function_inner(
        &self,
        def: &excess_sema::FunctionDef,
    ) -> ModelResult<Arc<CompiledFunction>> {
        let mut fctx = SemaCtx::new(self.ctx.types, self.ctx.adts, self.ctx.catalog);
        for (p, qty) in &def.params {
            fctx.vars.insert(p.clone(), qty.clone());
        }
        // The body's own from clauses join the range scope (aggregate
        // `over` resolution inside the body must see them).
        let mut local = self.range_env.clone();
        if let excess_lang::Stmt::Retrieve { from, .. } = &def.body {
            for fb in from {
                local.declare(&fb.var, false, fb.path.clone());
            }
        }
        let resolver = Resolver::new(&fctx, &local);
        let checked = resolver.check_retrieve(&def.body).map_err(sem)?;
        let plan = excess_algebra::plan_retrieve(
            &def.body,
            &checked,
            &fctx,
            excess_algebra::PlannerConfig::default(),
        )
        .map_err(sem)?;
        let node = prepare_with(&plan, &fctx, &local, self.agg_counter)?;
        Ok(Arc::new(CompiledFunction {
            name: def.name.clone(),
            params: def.params.iter().map(|(p, _)| p.clone()).collect(),
            plan: node,
            returns_set: matches!(def.returns.ty, Type::Set(_)),
        }))
    }

    fn compile_agg(&self, agg: &Aggregate) -> ModelResult<CExpr> {
        let id = self.agg_counter.get();
        self.agg_counter.set(id + 1);

        let func = match agg.func.as_str() {
            "count" => AggFunc::Count,
            "sum" => AggFunc::Sum,
            "avg" => AggFunc::Avg,
            "min" => AggFunc::Min,
            "max" => AggFunc::Max,
            "unique" => AggFunc::Unique,
            other => {
                // The argument may reference over-variables not yet in
                // scope here; resolve the set function against Unknown in
                // that case (the analyzer already type-checked the call).
                let arg_ty = agg
                    .arg
                    .as_ref()
                    .and_then(|a| self.ctx.infer(a).ok())
                    .unwrap_or(QualType::own(Type::Unknown));
                let set_of = QualType::own(Type::Set(Box::new(arg_ty)));
                let def = self
                    .ctx
                    .resolve_excess_function(other, Some(&set_of), 1)
                    .map_err(sem)?;
                AggFunc::UserSet(self.compile_function(&def)?)
            }
        };

        if agg.over.is_empty() {
            // Aggregate directly over a set-valued argument.
            let arg = agg.arg.as_ref().ok_or_else(|| {
                ModelError::Semantic(format!("{}(...) needs an argument", agg.func))
            })?;
            let aq = self.ctx.infer(arg).map_err(sem)?;
            if !matches!(aq.ty, Type::Set(_) | Type::Array(_, _) | Type::Unknown) {
                return Err(ModelError::Semantic(format!(
                    "aggregate '{}' without an 'over' clause needs a set-valued \
                     argument (e.g. count(E.kids))",
                    agg.func
                )));
            }
            if !agg.by.is_empty() || agg.qual.is_some() {
                return Err(ModelError::Semantic(
                    "'by'/'where' inside an aggregate require an 'over' clause".into(),
                ));
            }
            return Ok(CExpr::Agg(Box::new(CAgg {
                id,
                func,
                arg: Some(self.compile(arg)?),
                source: AggSource::SetArg,
                by: Vec::new(),
                qual: None,
                cacheable: false,
            })));
        }

        // Resolve the over ranges (plus dependencies not bound outside).
        let mut inner_exprs: Vec<&Expr> = Vec::new();
        if let Some(a) = &agg.arg {
            inner_exprs.push(a);
        }
        for b in &agg.by {
            inner_exprs.push(b);
        }
        if let Some(q) = &agg.qual {
            inner_exprs.push(q);
        }
        // Over-variable paths need to be in scope for resolution: add the
        // vars themselves as pseudo-expressions.
        let over_paths: Vec<Expr> = agg.over.iter().map(|v| Expr::Var(v.clone())).collect();
        let mut all_exprs = inner_exprs.clone();
        for p in &over_paths {
            all_exprs.push(p);
        }
        let resolver = Resolver::new(self.ctx, self.range_env);
        let bindings = resolver.bindings_for(&all_exprs, &[]).map_err(sem)?;
        // Keep over vars and their parents not bound in the outer scope;
        // parents bound outside correlate instead.
        let over_set: HashSet<&str> = agg.over.iter().map(String::as_str).collect();
        let mut keep: HashSet<String> = agg.over.iter().cloned().collect();
        loop {
            let mut grew = false;
            for b in &bindings {
                if keep.contains(&b.var) {
                    if let Some(p) = b.depends_on() {
                        if !keep.contains(p)
                            && (!self.ctx.vars.contains_key(p) || over_set.contains(p))
                        {
                            keep.insert(p.to_string());
                            grew = true;
                        }
                    }
                }
            }
            if !grew {
                break;
            }
        }
        let kept: Vec<excess_sema::ResolvedRange> = bindings
            .into_iter()
            .filter(|b| keep.contains(&b.var))
            .collect();
        for v in &agg.over {
            if !kept.iter().any(|b| &b.var == v) {
                return Err(ModelError::Semantic(format!(
                    "'over {v}': no such range variable"
                )));
            }
        }

        // Inner expressions compile with the over vars in scope.
        let mut inner_ctx = SemaCtx::new(self.ctx.types, self.ctx.adts, self.ctx.catalog);
        inner_ctx.vars = self.ctx.vars.clone();
        for b in &kept {
            inner_ctx.vars.insert(b.var.clone(), b.elem.clone());
        }

        // Cacheable iff nothing inside references an outer-only variable.
        let kept_vars: HashSet<&str> = kept.iter().map(|b| b.var.as_str()).collect();
        let mut outer_refs = false;
        for e in &inner_exprs {
            for v in excess_algebra::rules::free_vars(e) {
                if !kept_vars.contains(v.as_str()) && self.ctx.vars.contains_key(&v) {
                    outer_refs = true;
                }
            }
        }

        // Statistics-gated dereference hoisting, mirroring the planner's
        // rule: aggregate `over` plans are assembled here rather than by
        // the planner, so the rewrite runs here too. Hidden variables
        // must be in scope before the inner compiler is built.
        let hoists = excess_algebra::join::agg_hoists(&kept, &inner_exprs, &inner_ctx);
        for h in &hoists {
            inner_ctx
                .vars
                .insert(h.binding.var.clone(), h.binding.elem.clone());
        }
        let renames: std::collections::HashMap<(String, String), String> = hoists
            .iter()
            .map(|h| ((h.var.clone(), h.attr.clone()), h.binding.var.clone()))
            .collect();
        let rw = |e: &Expr| {
            let mut e = e.clone();
            excess_algebra::join::rewrite_expr_paths(&mut e, &renames);
            e
        };
        let inner = Compiler::new(&inner_ctx, self.range_env, self.agg_counter);

        let mut source_plan =
            prepare_bindings(&kept, &inner_ctx, self.range_env, self.agg_counter)?;
        for h in &hoists {
            let excess_sema::RootSource::Collection(obj) = &h.binding.root else {
                continue;
            };
            let key = inner.compile(&Expr::Path(
                Box::new(Expr::Var(h.var.clone())),
                h.attr.clone(),
            ))?;
            source_plan = ExecNode::HashJoin {
                input: Box::new(source_plan),
                var: h.binding.var.clone(),
                anchor: obj.oid,
                key,
                on: None,
            };
        }
        Ok(CExpr::Agg(Box::new(CAgg {
            id,
            func,
            arg: agg
                .arg
                .as_ref()
                .map(|a| inner.compile(&rw(a)))
                .transpose()?,
            source: AggSource::Ranges(source_plan),
            by: agg
                .by
                .iter()
                .map(|b| inner.compile(&rw(b)))
                .collect::<ModelResult<_>>()?,
            qual: agg
                .qual
                .as_ref()
                .map(|q| inner.compile(&rw(q)))
                .transpose()?,
            cacheable: !outer_refs,
        })))
    }
}
