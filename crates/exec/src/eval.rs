//! The expression evaluator.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;

use excess_lang::BinOp;
use excess_sema::CatalogLookup;
use extra_model::{AdtRegistry, ModelError, ModelResult, ObjectStore, TypeRegistry, Value};

use crate::batch::{Bindings, RowBatch, DEFAULT_BATCH_SIZE};
use crate::cexpr::{AggFunc, AggSource, CAgg, CExpr, MAX_CALL_DEPTH};
use crate::env::{Env, MemberId};
use crate::profile::PlanProfiler;

/// Shared execution context.
pub struct ExecCtx<'a> {
    /// The object store.
    pub store: &'a ObjectStore,
    /// Schema types.
    pub types: &'a TypeRegistry,
    /// ADTs.
    pub adts: &'a AdtRegistry,
    /// Catalog (named objects for late binding). `Sync` so parallel
    /// workers can share it (see the `parallel` module).
    pub catalog: &'a (dyn CatalogLookup + Sync),
    /// Rows per execution batch (see [`crate::batch`]).
    pub batch_size: usize,
    /// Worker threads available to parallel exchanges. At 1 (the
    /// default) every pipeline runs serially; worker contexts are
    /// themselves created with 1 so parallelism never nests.
    pub workers: usize,
    /// Current EXCESS-function call depth.
    pub depth: Cell<u32>,
    /// Group tables of cacheable aggregates, keyed by aggregate id.
    pub agg_cache: RefCell<HashMap<usize, HashMap<Vec<u8>, Value>>>,
    /// Dereferenced-object cache. An `ExecCtx` lives for one statement,
    /// and statements stage every expression evaluation before mutating
    /// (set-oriented updates), so object values are stable for the
    /// context's lifetime. Bounded to keep wide scans from pinning
    /// arbitrary amounts of memory.
    deref_cache: RefCell<HashMap<exodus_storage::Oid, Value>>,
    /// Projected-attribute cache: `(object, field position)` → field
    /// value, filled by the skip-decode deref in the `Attr` evaluator.
    /// Same lifetime/staleness argument as `deref_cache`.
    attr_cache: RefCell<HashMap<(exodus_storage::Oid, usize), Value>>,
    /// Snapshot timestamp every storage read evaluates against.
    /// Defaults to [`exodus_storage::TS_LATEST`] (see-everything), which
    /// is only correct when no concurrent writer exists; sessions thread
    /// the statement's real snapshot (or the write transaction's own
    /// timestamp) through [`ExecCtx::with_snapshot`].
    pub snapshot: u64,
    /// Per-operator profiler (EXPLAIN ANALYZE). `None` — the default —
    /// keeps the batch path counter-free and untimed.
    pub profiler: Option<PlanProfiler>,
    /// Database-wide executor counters (see [`crate::ExecMetrics`]).
    /// `None` when the database was built with metrics disabled.
    pub metrics: Option<std::sync::Arc<crate::metrics::ExecMetrics>>,
}

/// Entry cap for [`ExecCtx::deref_cache`].
const DEREF_CACHE_CAP: usize = 4096;

impl<'a> ExecCtx<'a> {
    /// New context with the default batch size.
    pub fn new(
        store: &'a ObjectStore,
        types: &'a TypeRegistry,
        adts: &'a AdtRegistry,
        catalog: &'a (dyn CatalogLookup + Sync),
    ) -> Self {
        ExecCtx {
            store,
            types,
            adts,
            catalog,
            batch_size: DEFAULT_BATCH_SIZE,
            workers: 1,
            depth: Cell::new(0),
            agg_cache: RefCell::new(HashMap::new()),
            deref_cache: RefCell::new(HashMap::new()),
            attr_cache: RefCell::new(HashMap::new()),
            snapshot: exodus_storage::TS_LATEST,
            profiler: None,
            metrics: None,
        }
    }

    /// Pin every storage read this context performs to the version
    /// state visible at `snap` (snapshot isolation).
    pub fn with_snapshot(mut self, snap: u64) -> Self {
        self.snapshot = snap;
        self
    }

    /// Override the execution batch size (clamped to at least 1).
    pub fn with_batch_size(mut self, n: usize) -> Self {
        self.batch_size = n.max(1);
        self
    }

    /// Override the worker-thread budget (clamped to at least 1).
    pub fn with_workers(mut self, n: usize) -> Self {
        self.workers = n.max(1);
        self
    }

    /// Install a per-operator profiler; cursors opened through
    /// [`crate::plan::ExecNode::cursor_profiled`] will bump its counters
    /// and sample wall time per pull.
    pub fn with_profiler(mut self, profiler: PlanProfiler) -> Self {
        self.profiler = Some(profiler);
        self
    }

    /// Attach the database-wide executor counters. `None` leaves the
    /// batch loop entirely counter-free (the metrics-disabled path).
    pub fn with_metrics(
        mut self,
        metrics: Option<std::sync::Arc<crate::metrics::ExecMetrics>>,
    ) -> Self {
        self.metrics = metrics;
        self
    }

    /// Count one batch of `rows` input rows against `slot`, when both a
    /// slot and a profiler are present. A no-op (one branch) otherwise.
    #[inline]
    pub fn prof_in(&self, slot: Option<u32>, rows: usize) {
        if let (Some(s), Some(p)) = (slot, self.profiler.as_ref()) {
            p.record_in(s, rows);
        }
    }
}

/// Chase references until a non-reference value is reached. Hot path for
/// implicit joins (`E.dept.budget`): resolved objects are cached on the
/// context, so a batch of rows referencing the same object pays one
/// storage read.
pub fn deref(ctx: &ExecCtx<'_>, mut v: Value) -> ModelResult<Value> {
    while let Value::Ref(oid) = v {
        if let Some(hit) = ctx.deref_cache.borrow().get(&oid) {
            if let Some(m) = ctx.metrics.as_ref() {
                m.deref_hits.inc();
            }
            v = hit.clone();
            continue;
        }
        v = ctx.store.value_of_at(oid, ctx.snapshot)?;
        if let Some(m) = ctx.metrics.as_ref() {
            m.deref_misses.inc();
        }
        let mut cache = ctx.deref_cache.borrow_mut();
        if cache.len() < DEREF_CACHE_CAP {
            cache.insert(oid, v.clone());
        } else if let Some(m) = ctx.metrics.as_ref() {
            m.deref_full.inc();
        }
    }
    Ok(v)
}

/// Alias for [`deref()`] (kept for call-site clarity where at most one level
/// is expected).
pub fn deref_shallow(ctx: &ExecCtx<'_>, v: Value) -> ModelResult<Value> {
    deref(ctx, v)
}

/// Truthiness of a qualification value.
pub fn truthy(v: &Value) -> ModelResult<bool> {
    v.truthy()
}

/// Evaluate a compiled expression.
pub fn eval(e: &CExpr, ctx: &ExecCtx<'_>, env: &dyn Bindings) -> ModelResult<Value> {
    match e {
        CExpr::Const(v) => Ok(v.clone()),
        CExpr::Var(n) => env
            .value(n)
            .cloned()
            .ok_or_else(|| ModelError::Semantic(format!("unbound variable '{n}'"))),
        CExpr::NamedSet(oid) => {
            let mut members = Vec::new();
            let mut scan = ctx.store.scan_members_batch_at(*oid, ctx.snapshot)?;
            loop {
                let chunk = scan.next_batch(ctx.batch_size.max(1))?;
                if chunk.is_empty() {
                    break;
                }
                members.extend(chunk.into_iter().map(|(_, v)| v));
            }
            Ok(Value::Set(members))
        }
        CExpr::NamedRef(oid) => Ok(Value::Ref(*oid)),
        CExpr::NamedValue(oid) => ctx.store.value_of_at(*oid, ctx.snapshot),
        CExpr::Attr(base, pos) => {
            // Fast path: project straight out of a bound variable's tuple
            // without cloning the whole row value first.
            if let CExpr::Var(n) = &**base {
                match env.value(n) {
                    Some(Value::Tuple(fields)) => {
                        return match fields.get(*pos) {
                            Some(f) => Ok(f.clone()),
                            None => Err(ModelError::Semantic(format!(
                                "tuple has {} fields, wanted position {pos}",
                                fields.len()
                            ))),
                        };
                    }
                    Some(Value::Null) => return Ok(Value::Null),
                    _ => {} // refs and unbound fall through to the general path
                }
            }
            let v = eval(base, ctx, env)?;
            // Projected deref: when the base is a reference, skip-decode
            // just the wanted field off the stored record instead of
            // materializing the whole object value (the hot path of
            // implicit joins such as `E.dept.budget`).
            let v = if let Value::Ref(oid) = v {
                if let Some(hit) = ctx.attr_cache.borrow().get(&(oid, *pos)) {
                    if let Some(m) = ctx.metrics.as_ref() {
                        m.deref_hits.inc();
                    }
                    return Ok(hit.clone());
                }
                if !ctx.deref_cache.borrow().contains_key(&oid) {
                    if let Some(field) = ctx.store.field_of_at(oid, *pos, ctx.snapshot)? {
                        if let Some(m) = ctx.metrics.as_ref() {
                            m.deref_misses.inc();
                        }
                        let mut cache = ctx.attr_cache.borrow_mut();
                        if cache.len() < DEREF_CACHE_CAP {
                            cache.insert((oid, *pos), field.clone());
                        } else if let Some(m) = ctx.metrics.as_ref() {
                            m.deref_full.inc();
                        }
                        return Ok(field);
                    }
                }
                // Not a plain tuple record (ref chain, null, out-of-range
                // position): the full deref reproduces ordinary behavior.
                deref(ctx, Value::Ref(oid))?
            } else {
                deref(ctx, v)?
            };
            match v {
                Value::Tuple(mut fields) => {
                    if *pos >= fields.len() {
                        return Err(ModelError::Semantic(format!(
                            "tuple has {} fields, wanted position {pos}",
                            fields.len()
                        )));
                    }
                    Ok(fields.swap_remove(*pos))
                }
                Value::Null => Ok(Value::Null),
                other => Err(ModelError::TypeMismatch {
                    expected: "a tuple".into(),
                    got: other.kind().into(),
                }),
            }
        }
        CExpr::Idx(base, idx) => {
            let b = deref(ctx, eval(base, ctx, env)?)?;
            let i = eval(idx, ctx, env)?;
            if b.is_null() || i.is_null() {
                return Ok(Value::Null);
            }
            Ok(b.array_index(i.as_i64()?)?.clone())
        }
        CExpr::Not(a) => {
            let v = eval(a, ctx, env)?;
            if v.is_null() {
                return Ok(Value::Null);
            }
            Ok(Value::Bool(!v.truthy()?))
        }
        CExpr::Neg(a) => match eval(a, ctx, env)? {
            Value::Null => Ok(Value::Null),
            Value::Int(i) => Ok(Value::Int(-i)),
            Value::Float(f) => Ok(Value::Float(-f)),
            other => Err(ModelError::TypeMismatch {
                expected: "a number".into(),
                got: other.kind().into(),
            }),
        },
        CExpr::Bin(op, a, b) => eval_bin(*op, a, b, ctx, env),
        CExpr::AdtCall { id, func, args } => {
            let vals: Vec<Value> = args
                .iter()
                .map(|a| eval(a, ctx, env))
                .collect::<ModelResult<_>>()?;
            let f = ctx.adts.function(*id, func)?;
            (f.body)(&vals)
        }
        CExpr::FunCall { func, args } => {
            let vals: Vec<Value> = args
                .iter()
                .map(|a| eval(a, ctx, env))
                .collect::<ModelResult<_>>()?;
            call_function(func, &vals, ctx)
        }
        CExpr::Agg(agg) => eval_agg(agg, ctx, env),
        CExpr::SetLit(items) => {
            let mut set = Value::empty_set();
            for i in items {
                let v = eval(i, ctx, env)?;
                set.set_insert(v)?;
            }
            Ok(set)
        }
        CExpr::TupleLit(fields) => Ok(Value::Tuple(
            fields
                .iter()
                .map(|f| eval(f, ctx, env))
                .collect::<ModelResult<_>>()?,
        )),
    }
}

/// Invoke a pre-planned EXCESS function.
pub fn call_function(
    func: &crate::cexpr::CompiledFunction,
    args: &[Value],
    ctx: &ExecCtx<'_>,
) -> ModelResult<Value> {
    if ctx.depth.get() >= MAX_CALL_DEPTH {
        return Err(ModelError::Semantic(format!(
            "EXCESS function call depth exceeded in '{}'",
            func.name
        )));
    }
    if args.len() != func.params.len() {
        return Err(ModelError::Semantic(format!(
            "'{}' takes {} arguments, got {}",
            func.name,
            func.params.len(),
            args.len()
        )));
    }
    ctx.depth.set(ctx.depth.get() + 1);
    let result = (|| {
        let mut env = Env::new();
        for (p, v) in func.params.iter().zip(args.iter()) {
            let id = match v {
                Value::Ref(o) => MemberId::Object(*o),
                _ => MemberId::None,
            };
            env.bind(p, v.clone(), id);
        }
        let result = crate::run::run_plan(&func.plan, ctx, &env)?;
        if func.returns_set {
            let mut set = Value::empty_set();
            for row in result.rows {
                if let Some(v) = row.into_iter().next() {
                    set.set_insert(v)?;
                }
            }
            Ok(set)
        } else {
            Ok(result
                .rows
                .into_iter()
                .next()
                .and_then(|r| r.into_iter().next())
                .unwrap_or(Value::Null))
        }
    })();
    ctx.depth.set(ctx.depth.get() - 1);
    result
}

fn eval_bin(
    op: BinOp,
    a: &CExpr,
    b: &CExpr,
    ctx: &ExecCtx<'_>,
    env: &dyn Bindings,
) -> ModelResult<Value> {
    // Short-circuit logic.
    match op {
        BinOp::And => {
            let va = eval(a, ctx, env)?;
            if !va.is_null() && !va.truthy()? {
                return Ok(Value::Bool(false));
            }
            let vb = eval(b, ctx, env)?;
            return Ok(Value::Bool(va.truthy()? && vb.truthy()?));
        }
        BinOp::Or => {
            let va = eval(a, ctx, env)?;
            if !va.is_null() && va.truthy()? {
                return Ok(Value::Bool(true));
            }
            let vb = eval(b, ctx, env)?;
            return Ok(Value::Bool(va.truthy()? || vb.truthy()?));
        }
        _ => {}
    }
    let va = eval(a, ctx, env)?;
    let vb = eval(b, ctx, env)?;
    match op {
        BinOp::Is | BinOp::IsNot => {
            // Identity: OID equality; null is only itself.
            let same = match (&va, &vb) {
                (Value::Null, Value::Null) => true,
                (Value::Ref(x), Value::Ref(y)) => x == y,
                _ => false,
            };
            Ok(Value::Bool(if op == BinOp::Is { same } else { !same }))
        }
        BinOp::Eq | BinOp::Ne => {
            if va.is_null() || vb.is_null() {
                return Ok(Value::Bool(false));
            }
            // Numeric cross-type equality via compare.
            let equal = match va.compare(&vb, ctx.adts) {
                Some(ord) => ord == std::cmp::Ordering::Equal,
                None => va == vb,
            };
            Ok(Value::Bool(if op == BinOp::Eq { equal } else { !equal }))
        }
        BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
            if va.is_null() || vb.is_null() {
                return Ok(Value::Bool(false));
            }
            let ord = va
                .compare(&vb, ctx.adts)
                .ok_or_else(|| ModelError::TypeMismatch {
                    expected: "comparable values".into(),
                    got: format!("{} vs {}", va.kind(), vb.kind()),
                })?;
            let ok = match op {
                BinOp::Lt => ord.is_lt(),
                BinOp::Le => ord.is_le(),
                BinOp::Gt => ord.is_gt(),
                BinOp::Ge => ord.is_ge(),
                _ => unreachable!(),
            };
            Ok(Value::Bool(ok))
        }
        BinOp::In => eval_membership(&va, &vb, ctx),
        BinOp::Contains => eval_membership(&vb, &va, ctx),
        BinOp::Union => {
            let (sa, sb) = (deref(ctx, va)?, deref(ctx, vb)?);
            sa.set_union(&sb)
        }
        BinOp::Intersect => {
            let (sa, sb) = (deref(ctx, va)?, deref(ctx, vb)?);
            sa.set_intersect(&sb)
        }
        BinOp::SetMinus => {
            let (sa, sb) = (deref(ctx, va)?, deref(ctx, vb)?);
            sa.set_minus(&sb)
        }
        BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => {
            if va.is_null() || vb.is_null() {
                return Ok(Value::Null);
            }
            arith(op, &va, &vb)
        }
        BinOp::And | BinOp::Or => unreachable!("handled above"),
    }
}

fn eval_membership(member: &Value, set: &Value, ctx: &ExecCtx<'_>) -> ModelResult<Value> {
    if member.is_null() {
        return Ok(Value::Bool(false));
    }
    let set = deref(ctx, set.clone())?;
    match set {
        // Ref-set members compare by identity, own members by value —
        // both are plain equality on the member representation.
        Value::Set(ms) => Ok(Value::Bool(ms.contains(member))),
        Value::Array(items) => Ok(Value::Bool(items.contains(member))),
        Value::Null => Ok(Value::Bool(false)),
        other => Err(ModelError::TypeMismatch {
            expected: "a set".into(),
            got: other.kind().into(),
        }),
    }
}

fn arith(op: BinOp, a: &Value, b: &Value) -> ModelResult<Value> {
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => match op {
            BinOp::Add => Ok(Value::Int(x.wrapping_add(*y))),
            BinOp::Sub => Ok(Value::Int(x.wrapping_sub(*y))),
            BinOp::Mul => Ok(Value::Int(x.wrapping_mul(*y))),
            BinOp::Div => {
                if *y == 0 {
                    Err(ModelError::Semantic("division by zero".into()))
                } else {
                    Ok(Value::Int(x / y))
                }
            }
            BinOp::Mod => {
                if *y == 0 {
                    Err(ModelError::Semantic("division by zero".into()))
                } else {
                    Ok(Value::Int(x % y))
                }
            }
            _ => unreachable!(),
        },
        _ => {
            let x = a.as_f64()?;
            let y = b.as_f64()?;
            match op {
                BinOp::Add => Ok(Value::Float(x + y)),
                BinOp::Sub => Ok(Value::Float(x - y)),
                BinOp::Mul => Ok(Value::Float(x * y)),
                BinOp::Div => Ok(Value::Float(x / y)),
                BinOp::Mod => Err(ModelError::TypeMismatch {
                    expected: "integers for %".into(),
                    got: format!("{} % {}", a.kind(), b.kind()),
                }),
                _ => unreachable!(),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Aggregates
// ---------------------------------------------------------------------------

fn group_key(by: &[CExpr], ctx: &ExecCtx<'_>, env: &dyn Bindings) -> ModelResult<Vec<u8>> {
    let vals: Vec<Value> = by
        .iter()
        .map(|b| eval(b, ctx, env))
        .collect::<ModelResult<_>>()?;
    Ok(extra_model::valueio::to_bytes(&Value::Tuple(vals)))
}

fn finalize(func: &AggFunc, vals: Vec<Value>, ctx: &ExecCtx<'_>) -> ModelResult<Value> {
    match func {
        AggFunc::Count => Ok(Value::Int(vals.len() as i64)),
        AggFunc::Sum => {
            let mut int_sum = 0i64;
            let mut float_sum = 0f64;
            let mut any_float = false;
            let mut any = false;
            for v in &vals {
                match v {
                    Value::Int(i) => {
                        int_sum = int_sum.wrapping_add(*i);
                        any = true;
                    }
                    Value::Float(f) => {
                        float_sum += f;
                        any_float = true;
                        any = true;
                    }
                    Value::Null => {}
                    other => {
                        return Err(ModelError::TypeMismatch {
                            expected: "numbers for sum".into(),
                            got: other.kind().into(),
                        })
                    }
                }
            }
            if !any {
                Ok(Value::Null)
            } else if any_float {
                Ok(Value::Float(float_sum + int_sum as f64))
            } else {
                Ok(Value::Int(int_sum))
            }
        }
        AggFunc::Avg => {
            let mut sum = 0f64;
            let mut n = 0usize;
            for v in &vals {
                match v {
                    Value::Int(i) => {
                        sum += *i as f64;
                        n += 1;
                    }
                    Value::Float(f) => {
                        sum += f;
                        n += 1;
                    }
                    Value::Null => {}
                    other => {
                        return Err(ModelError::TypeMismatch {
                            expected: "numbers for avg".into(),
                            got: other.kind().into(),
                        })
                    }
                }
            }
            if n == 0 {
                Ok(Value::Null)
            } else {
                Ok(Value::Float(sum / n as f64))
            }
        }
        AggFunc::Min | AggFunc::Max => {
            let want_min = matches!(func, AggFunc::Min);
            let mut best: Option<Value> = None;
            for v in vals {
                if v.is_null() {
                    continue;
                }
                best = match best {
                    None => Some(v),
                    Some(b) => match v.compare(&b, ctx.adts) {
                        Some(ord) if (want_min && ord.is_lt()) || (!want_min && ord.is_gt()) => {
                            Some(v)
                        }
                        _ => Some(b),
                    },
                };
            }
            Ok(best.unwrap_or(Value::Null))
        }
        AggFunc::Unique => {
            let mut set = Value::empty_set();
            for v in vals {
                if !v.is_null() {
                    set.set_insert(v)?;
                }
            }
            Ok(set)
        }
        AggFunc::UserSet(func) => {
            let mut set = Value::empty_set();
            for v in vals {
                set.set_insert(v)?;
            }
            call_function(func, &[set], ctx)
        }
    }
}

fn eval_agg(agg: &CAgg, ctx: &ExecCtx<'_>, env: &dyn Bindings) -> ModelResult<Value> {
    match &agg.source {
        AggSource::SetArg => {
            let arg = agg
                .arg
                .as_ref()
                .expect("SetArg aggregates carry their argument");
            let v = deref(ctx, eval(arg, ctx, env)?)?;
            let vals = match v {
                Value::Set(ms) => ms,
                Value::Array(items) => items.into_iter().filter(|i| !i.is_null()).collect(),
                Value::Null => Vec::new(),
                other => {
                    return Err(ModelError::TypeMismatch {
                        expected: "a set".into(),
                        got: other.kind().into(),
                    })
                }
            };
            finalize(&agg.func, vals, ctx)
        }
        AggSource::Ranges(plan) => {
            // Group table: either cached or computed now.
            let cached = agg.cacheable && ctx.agg_cache.borrow().contains_key(&agg.id);
            if !cached {
                let mut groups: HashMap<Vec<u8>, Vec<Value>> = HashMap::new();
                // Parallel path: aggregate `over` plans bypass the
                // planner's exchange insertion, so the morsel driver is
                // consulted here. Workers run the per-row qual/key/arg
                // evaluation; the deterministic merge order makes the
                // group value lists — and thus float sums — identical to
                // serial execution.
                let seed = RowBatch::single(env);
                // The aggregate plan's root doubles as its "exchange"
                // node in the profile: per-worker morsel stats attach
                // there when the driver engages.
                let agg_slot = ctx.profiler.as_ref().and_then(|p| p.index().slot_of(plan));
                let parallel = crate::parallel::try_parallel_slotted(
                    plan,
                    ctx,
                    &seed,
                    agg_slot,
                    &|wctx, batch| {
                        let mut rows: Vec<(Vec<u8>, Value)> = Vec::with_capacity(batch.len());
                        for r in 0..batch.len() {
                            let row = batch.row(r);
                            if let Some(q) = &agg.qual {
                                if !truthy(&eval(q, wctx, &row)?)? {
                                    continue;
                                }
                            }
                            let key = group_key(&agg.by, wctx, &row)?;
                            let val = match &agg.arg {
                                Some(a) => eval(a, wctx, &row)?,
                                None => Value::Null,
                            };
                            rows.push((key, val));
                        }
                        Ok(rows)
                    },
                )?;
                match parallel {
                    Some(parts) => {
                        for part in parts {
                            for (key, val) in part {
                                groups.entry(key).or_default().push(val);
                            }
                        }
                    }
                    None => {
                        // Serial path: iterate the `over` ranges
                        // batch-at-a-time, seeded with the current bindings
                        // (correlation through free outer variables).
                        let mut cur =
                            plan.cursor_profiled(seed, ctx.profiler.as_ref().map(|p| p.index()));
                        while let Some(batch) = cur.next(ctx)? {
                            for r in 0..batch.len() {
                                let row = batch.row(r);
                                if let Some(q) = &agg.qual {
                                    if !truthy(&eval(q, ctx, &row)?)? {
                                        continue;
                                    }
                                }
                                let key = group_key(&agg.by, ctx, &row)?;
                                let val = match &agg.arg {
                                    Some(a) => eval(a, ctx, &row)?,
                                    None => Value::Null,
                                };
                                groups.entry(key).or_default().push(val);
                            }
                        }
                    }
                }
                let mut finalized = HashMap::with_capacity(groups.len());
                for (k, vals) in groups {
                    finalized.insert(k, finalize(&agg.func, vals, ctx)?);
                }
                ctx.agg_cache.borrow_mut().insert(agg.id, finalized);
            }
            let key = group_key(&agg.by, ctx, env)?;
            let cache = ctx.agg_cache.borrow();
            let table = cache.get(&agg.id).expect("just inserted");
            let result = table.get(&key).cloned().unwrap_or(match agg.func {
                AggFunc::Count => Value::Int(0),
                AggFunc::Unique => Value::empty_set(),
                _ => Value::Null,
            });
            if !agg.cacheable {
                drop(cache);
                ctx.agg_cache.borrow_mut().remove(&agg.id);
            }
            Ok(result)
        }
    }
}
