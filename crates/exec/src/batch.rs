//! Batched (vectorized) row representation shared across the execution
//! spine.
//!
//! A [`RowBatch`] holds a run of rows column-wise: one vector of
//! [`Value`]s per bound variable, plus a parallel vector of
//! [`MemberId`] update identities per variable (the batch-level binding
//! metadata that keeps set-oriented updates addressable). Operators pass
//! batches of up to [`ExecCtx::batch_size`](crate::eval::ExecCtx) rows
//! between each other instead of pushing environments one at a time;
//! filters evaluate their predicate across a batch into a selection
//! vector and [`RowBatch::gather`] the survivors.
//!
//! Expression evaluation is written against the [`Bindings`] trait so a
//! single evaluator serves both a materialized [`Env`] (function
//! parameters, update staging) and a zero-copy [`BatchRow`] view into a
//! batch.

use extra_model::Value;

use crate::env::{Env, MemberId};

/// Default number of rows per execution batch.
pub const DEFAULT_BATCH_SIZE: usize = 1024;

/// Read-only variable bindings: the evaluator's view of one row.
pub trait Bindings {
    /// Value bound to `var`.
    fn value(&self, var: &str) -> Option<&Value>;
    /// Update identity of `var`.
    fn ident(&self, var: &str) -> MemberId;
    /// Names of all bound variables.
    fn bound_vars(&self) -> Vec<&str>;
}

impl Bindings for Env {
    fn value(&self, var: &str) -> Option<&Value> {
        self.get(var)
    }

    fn ident(&self, var: &str) -> MemberId {
        self.id_of(var)
    }

    fn bound_vars(&self) -> Vec<&str> {
        self.vars().collect()
    }
}

/// A batch of rows stored as per-variable column vectors.
#[derive(Debug, Clone, Default)]
pub struct RowBatch {
    vars: Vec<String>,
    cols: Vec<Vec<Value>>,
    ids: Vec<Vec<MemberId>>,
    rows: usize,
}

impl RowBatch {
    /// An empty batch with no columns.
    pub fn new() -> RowBatch {
        RowBatch::default()
    }

    /// An empty batch with the given column layout.
    pub fn with_vars(vars: Vec<String>) -> RowBatch {
        let n = vars.len();
        RowBatch {
            vars,
            cols: (0..n).map(|_| Vec::new()).collect(),
            ids: (0..n).map(|_| Vec::new()).collect(),
            rows: 0,
        }
    }

    /// A single-row batch materialized from any bindings. Columns are
    /// ordered by variable name so batch layout is deterministic.
    pub fn single(b: &dyn Bindings) -> RowBatch {
        let mut names = b.bound_vars();
        names.sort_unstable();
        let mut batch = RowBatch::with_vars(names.iter().map(|s| s.to_string()).collect());
        for (c, name) in names.iter().enumerate() {
            batch.cols[c].push(b.value(name).cloned().unwrap_or(Value::Null));
            batch.ids[c].push(b.ident(name));
        }
        batch.rows = 1;
        batch
    }

    /// A batch materialized from row-major result rows (result
    /// chunking, wire decoding). Update identities are
    /// [`MemberId::None`]: these batches carry output values, not
    /// addressable collection members.
    pub fn from_rows(vars: Vec<String>, rows: &[Vec<Value>]) -> RowBatch {
        let mut batch = RowBatch::with_vars(vars);
        for row in rows {
            debug_assert_eq!(row.len(), batch.vars.len());
            for (c, v) in row.iter().enumerate() {
                batch.cols[c].push(v.clone());
                batch.ids[c].push(MemberId::None);
            }
            batch.rows += 1;
        }
        batch
    }

    /// Consume the batch into row-major rows, columns in `vars` order.
    pub fn into_rows(mut self) -> Vec<Vec<Value>> {
        let mut rows: Vec<Vec<Value>> = (0..self.rows)
            .map(|_| Vec::with_capacity(self.cols.len()))
            .collect();
        for col in self.cols.drain(..) {
            for (r, v) in col.into_iter().enumerate() {
                rows[r].push(v);
            }
        }
        rows
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// Whether the batch has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// The column (variable) names.
    pub fn vars(&self) -> &[String] {
        &self.vars
    }

    /// Column position of `var`, if bound. Batches carry a handful of
    /// variables, so a linear scan beats hashing.
    pub fn col_of(&self, var: &str) -> Option<usize> {
        self.vars.iter().position(|v| v == var)
    }

    /// View of row `row`.
    pub fn row(&self, row: usize) -> BatchRow<'_> {
        debug_assert!(row < self.rows);
        BatchRow { batch: self, row }
    }

    /// Iterate over row views.
    pub fn iter(&self) -> impl Iterator<Item = BatchRow<'_>> {
        (0..self.rows).map(move |row| BatchRow { batch: self, row })
    }

    /// Append a copy of `src`'s row `row`, optionally binding `var` to
    /// `(value, id)` on top (shadowing any existing column of that name).
    pub fn push_extended(
        &mut self,
        src: &RowBatch,
        row: usize,
        var: &str,
        value: Value,
        id: MemberId,
    ) {
        debug_assert!(self.compatible_extension(src, var));
        for (c, name) in self.vars.iter().enumerate() {
            if name != var {
                let s = src.col_of(name).expect("schema mismatch");
                self.cols[c].push(src.cols[s][row].clone());
                self.ids[c].push(src.ids[s][row].clone());
            }
        }
        let vc = self.col_of(var).expect("bound variable has a column");
        self.cols[vc].push(value);
        self.ids[vc].push(id);
        self.rows += 1;
    }

    /// The column layout a scan/unnest produces when binding `var` over
    /// input rows shaped like `src`.
    pub fn extended_vars(src: &RowBatch, var: &str) -> Vec<String> {
        let mut vars = src.vars.clone();
        if !vars.iter().any(|v| v == var) {
            vars.push(var.to_string());
        }
        vars
    }

    fn compatible_extension(&self, src: &RowBatch, var: &str) -> bool {
        self.vars
            .iter()
            .all(|v| v == var || src.col_of(v).is_some())
            && src.vars.iter().all(|v| self.col_of(v).is_some())
    }

    /// Copy the selected rows into a new batch (`sel` is a selection
    /// vector of row indices, in output order).
    pub fn gather(&self, sel: &[usize]) -> RowBatch {
        let mut out = RowBatch::with_vars(self.vars.clone());
        for c in 0..self.cols.len() {
            out.cols[c] = sel.iter().map(|&r| self.cols[c][r].clone()).collect();
            out.ids[c] = sel.iter().map(|&r| self.ids[c][r].clone()).collect();
        }
        out.rows = sel.len();
        out
    }

    /// Append all rows of `other` (column layouts must match; column
    /// order may differ).
    pub fn append(&mut self, other: RowBatch) {
        if self.vars.is_empty() && self.rows == 0 {
            *self = other;
            return;
        }
        debug_assert_eq!(
            {
                let mut a = self.vars.clone();
                a.sort();
                a
            },
            {
                let mut b = other.vars.clone();
                b.sort();
                b
            },
            "appending batches with different schemas"
        );
        for (c, name) in self.vars.iter().enumerate() {
            if let Some(o) = other.col_of(name) {
                self.cols[c].extend(other.cols[o].iter().cloned());
                self.ids[c].extend(other.ids[o].iter().cloned());
            }
        }
        self.rows += other.rows;
    }

    /// Split into chunks of at most `n` rows (used by materializing
    /// operators to re-batch their output).
    pub fn chunks(self, n: usize) -> Vec<RowBatch> {
        let n = n.max(1);
        if self.rows <= n {
            return if self.rows == 0 {
                Vec::new()
            } else {
                vec![self]
            };
        }
        let mut out = Vec::with_capacity(self.rows.div_ceil(n));
        let mut start = 0;
        while start < self.rows {
            let end = (start + n).min(self.rows);
            let sel: Vec<usize> = (start..end).collect();
            out.push(self.gather(&sel));
            start = end;
        }
        out
    }
}

/// A zero-copy view of one row of a [`RowBatch`].
#[derive(Clone, Copy)]
pub struct BatchRow<'a> {
    batch: &'a RowBatch,
    row: usize,
}

impl BatchRow<'_> {
    /// The row's position within its batch.
    pub fn index(&self) -> usize {
        self.row
    }
}

impl Bindings for BatchRow<'_> {
    fn value(&self, var: &str) -> Option<&Value> {
        self.batch
            .col_of(var)
            .map(|c| &self.batch.cols[c][self.row])
    }

    fn ident(&self, var: &str) -> MemberId {
        self.batch
            .col_of(var)
            .map(|c| self.batch.ids[c][self.row].clone())
            .unwrap_or(MemberId::None)
    }

    fn bound_vars(&self) -> Vec<&str> {
        self.batch.vars.iter().map(String::as_str).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_and_lookup() {
        let mut env = Env::new();
        env.bind("x", Value::Int(1), MemberId::None);
        env.bind("y", Value::Int(2), MemberId::None);
        let b = RowBatch::single(&env);
        assert_eq!(b.len(), 1);
        let row = b.row(0);
        assert_eq!(row.value("x"), Some(&Value::Int(1)));
        assert_eq!(row.value("y"), Some(&Value::Int(2)));
        assert_eq!(row.value("z"), None);
    }

    #[test]
    fn extend_gather_append() {
        let seed = RowBatch::single(&Env::new());
        let mut b = RowBatch::with_vars(RowBatch::extended_vars(&seed, "v"));
        for i in 0..5 {
            b.push_extended(&seed, 0, "v", Value::Int(i), MemberId::None);
        }
        assert_eq!(b.len(), 5);
        let odd = b.gather(&[1, 3]);
        assert_eq!(odd.len(), 2);
        assert_eq!(odd.row(1).value("v"), Some(&Value::Int(3)));
        let mut all = RowBatch::new();
        all.append(b);
        all.append(odd);
        assert_eq!(all.len(), 7);
        let chunks = all.chunks(3);
        assert_eq!(
            chunks.iter().map(RowBatch::len).collect::<Vec<_>>(),
            vec![3, 3, 1]
        );
    }

    #[test]
    fn shadowing_rebinds_column() {
        let mut env = Env::new();
        env.bind("v", Value::Int(7), MemberId::None);
        let seed = RowBatch::single(&env);
        let vars = RowBatch::extended_vars(&seed, "v");
        assert_eq!(vars.len(), 1, "shadowed var must not duplicate a column");
        let mut b = RowBatch::with_vars(vars);
        b.push_extended(&seed, 0, "v", Value::Int(9), MemberId::None);
        assert_eq!(b.row(0).value("v"), Some(&Value::Int(9)));
    }
}
