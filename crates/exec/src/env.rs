//! Evaluation environments: variable bindings plus update identities.

use std::collections::HashMap;

use exodus_storage::{Oid, RecordId};
use extra_model::Value;

/// How a bound member can be addressed for updates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemberId {
    /// An `own`-mode collection member: its record in the collection file.
    Record {
        /// Collection anchor.
        anchor: Oid,
        /// Member record id.
        rid: RecordId,
    },
    /// An object with identity (`ref` / `own ref` members, named objects).
    Object(Oid),
    /// A member of a nested set/array inside another binding's value
    /// (e.g. `C` in `range of C is E.kids` when kids holds own values).
    Nested {
        /// The parent variable.
        parent: String,
        /// Attribute steps from the parent to the collection.
        steps: Vec<String>,
        /// 0-based position within the collection.
        index: usize,
    },
    /// Not updatable (computed values).
    None,
}

/// A row: variable values plus their update identities.
#[derive(Debug, Clone, Default)]
pub struct Env {
    vals: HashMap<String, Value>,
    ids: HashMap<String, MemberId>,
}

impl Env {
    /// Empty environment.
    pub fn new() -> Env {
        Env::default()
    }

    /// Value bound to `var`.
    pub fn get(&self, var: &str) -> Option<&Value> {
        self.vals.get(var)
    }

    /// Update identity of `var`.
    pub fn id_of(&self, var: &str) -> MemberId {
        self.ids.get(var).cloned().unwrap_or(MemberId::None)
    }

    /// Whether `var` is bound.
    pub fn contains(&self, var: &str) -> bool {
        self.vals.contains_key(var)
    }

    /// Bind `var`, returning whatever it shadowed (restore with
    /// [`Env::restore`]).
    pub fn bind(&mut self, var: &str, value: Value, id: MemberId) -> Option<(Value, MemberId)> {
        let old_v = self.vals.insert(var.to_string(), value);
        let old_i = self.ids.insert(var.to_string(), id);
        old_v.map(|v| (v, old_i.unwrap_or(MemberId::None)))
    }

    /// Undo a [`Env::bind`].
    pub fn restore(&mut self, var: &str, shadowed: Option<(Value, MemberId)>) {
        match shadowed {
            Some((v, i)) => {
                self.vals.insert(var.to_string(), v);
                self.ids.insert(var.to_string(), i);
            }
            None => {
                self.vals.remove(var);
                self.ids.remove(var);
            }
        }
    }

    /// Variables currently bound.
    pub fn vars(&self) -> impl Iterator<Item = &str> {
        self.vals.keys().map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_shadow_restore() {
        let mut env = Env::new();
        assert!(env.bind("x", Value::Int(1), MemberId::None).is_none());
        let shadowed = env.bind("x", Value::Int(2), MemberId::Object(Oid(5)));
        assert_eq!(env.get("x"), Some(&Value::Int(2)));
        assert_eq!(env.id_of("x"), MemberId::Object(Oid(5)));
        env.restore("x", shadowed);
        assert_eq!(env.get("x"), Some(&Value::Int(1)));
        assert_eq!(env.id_of("x"), MemberId::None);
        env.restore("x", None);
        assert!(!env.contains("x"));
    }
}
