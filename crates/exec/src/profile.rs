//! Per-operator query profiling (EXPLAIN ANALYZE).
//!
//! A [`PlanIndex`] assigns every node of an [`ExecNode`] tree a slot in
//! pre-order and carries per-node display labels and the planner's
//! estimated output rows. A [`PlanProfiler`] pairs the index with
//! `Cell`-based counters that cursors bump as batches flow — one add per
//! batch, never per row, and wall-clock sampling only happens when a
//! profiler is installed on the [`crate::eval::ExecCtx`], so the
//! disabled path costs a single `Option` check per pull.
//!
//! Parallel workers [`PlanProfiler::fork`] a zero-counter profiler over
//! the shared index and the driver [`PlanProfiler::absorb`]s them after
//! the scope joins; counter sums are order-independent, so the merged
//! profile is deterministic and agrees with a serial run of the same
//! plan. The finished [`QueryProfile`] renders as an annotated plan tree
//! (`Display`) or as JSON ([`QueryProfile::to_json`]).

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crate::cexpr::{AggSource, CExpr};
use crate::plan::ExecNode;

/// Immutable per-plan metadata: node address → pre-order slot, plus each
/// slot's label/estimate. Shared (via `Arc`) between the driving profiler
/// and per-worker forks.
pub struct PlanIndex {
    by_addr: HashMap<usize, u32>,
    meta: Vec<NodeMeta>,
}

/// Display metadata for one plan node.
pub struct NodeMeta {
    /// Tree depth (root = 0).
    pub depth: u16,
    /// One-line operator description.
    pub label: String,
    /// Planner-estimated output rows, when available.
    pub est_rows: Option<f64>,
}

/// A plan-node annotation supplied by the planner: `(label, estimated
/// output rows)` in the same pre-order as [`PlanIndex::new`] walks the
/// compiled plan (`UniversalFilter` universe sub-plans are not walked —
/// they re-open per input row and have no physical counterpart).
pub type NodeAnnot = (String, f64);

impl PlanIndex {
    /// Index `root` in pre-order. `annot`, when given, supplies pretty
    /// labels and row estimates from the physical plan (same pre-order);
    /// otherwise labels are derived from the executable nodes.
    pub fn new(root: &ExecNode, annot: Option<&[NodeAnnot]>) -> PlanIndex {
        let mut idx = PlanIndex {
            by_addr: HashMap::new(),
            meta: Vec::new(),
        };
        let mut pos = 0;
        idx.walk(root, 0, annot, &mut pos);
        idx
    }

    /// Index `node` and its subtree. `pos` tracks the position in
    /// `annot`, which covers only the operator tree the planner printed —
    /// aggregate `over` plans embedded in expressions are indexed too
    /// (with derived labels and no estimate) but never consume an
    /// annotation entry.
    fn walk(&mut self, node: &ExecNode, depth: u16, annot: Option<&[NodeAnnot]>, pos: &mut usize) {
        let slot = self.meta.len() as u32;
        self.by_addr.insert(node as *const ExecNode as usize, slot);
        let (label, est_rows) = match annot.and_then(|a| a.get(*pos)) {
            Some((label, est)) => (label.clone(), Some(*est)),
            None => (fallback_label(node), None),
        };
        *pos += 1;
        self.meta.push(NodeMeta {
            depth,
            label,
            est_rows,
        });
        // Aggregate `over` plans live inside this node's compiled
        // expressions; index them as extra children so their cursors (and
        // the morsel driver) report per-operator metrics too.
        self.walk_node_exprs(node, depth + 1);
        match node {
            ExecNode::Unit
            | ExecNode::SeqScan { .. }
            | ExecNode::SystemScan { .. }
            | ExecNode::IndexScan { .. } => {}
            ExecNode::NestedLoop { outer, inner } => {
                self.walk(outer, depth + 1, annot, pos);
                self.walk(inner, depth + 1, annot, pos);
            }
            ExecNode::Unnest { input, .. }
            | ExecNode::Filter { input, .. }
            // The universe sub-plan re-opens per input row; profiling it
            // would double-count arbitrarily, so only the input is walked
            // (matching the physical plan, which has no universe subtree).
            | ExecNode::UniversalFilter { input, .. }
            | ExecNode::Project { input, .. }
            | ExecNode::Sort { input, .. }
            | ExecNode::HashJoin { input, .. }
            | ExecNode::IndexJoin { input, .. }
            | ExecNode::Parallel { input, .. } => self.walk(input, depth + 1, annot, pos),
        }
    }

    /// Walk the expressions attached to `node` looking for aggregate
    /// `over` plans to index.
    fn walk_node_exprs(&mut self, node: &ExecNode, depth: u16) {
        match node {
            ExecNode::Filter { pred, .. } | ExecNode::UniversalFilter { pred, .. } => {
                self.walk_expr(pred, depth);
            }
            ExecNode::Project { targets, .. } => {
                for (_, e) in targets {
                    self.walk_expr(e, depth);
                }
            }
            ExecNode::Sort { key, .. }
            | ExecNode::HashJoin { key, .. }
            | ExecNode::IndexJoin { key, .. } => self.walk_expr(key, depth),
            _ => {}
        }
    }

    /// Recurse an expression tree; every aggregate's `over` plan becomes
    /// an indexed subtree with derived labels. EXCESS function bodies are
    /// skipped — they re-plan per call site and re-open per row, so their
    /// counters would not correspond to any one plan node.
    fn walk_expr(&mut self, e: &CExpr, depth: u16) {
        match e {
            CExpr::Agg(agg) => {
                if let AggSource::Ranges(plan) = &agg.source {
                    let mut pos = 0;
                    self.walk(plan, depth, None, &mut pos);
                }
                if let Some(a) = &agg.arg {
                    self.walk_expr(a, depth);
                }
                if let Some(q) = &agg.qual {
                    self.walk_expr(q, depth);
                }
                for b in &agg.by {
                    self.walk_expr(b, depth);
                }
            }
            CExpr::Attr(inner, _) | CExpr::Not(inner) | CExpr::Neg(inner) => {
                self.walk_expr(inner, depth)
            }
            CExpr::Idx(a, b) | CExpr::Bin(_, a, b) => {
                self.walk_expr(a, depth);
                self.walk_expr(b, depth);
            }
            CExpr::AdtCall { args, .. } | CExpr::FunCall { args, .. } => {
                for a in args {
                    self.walk_expr(a, depth);
                }
            }
            CExpr::SetLit(items) | CExpr::TupleLit(items) => {
                for i in items {
                    self.walk_expr(i, depth);
                }
            }
            CExpr::Const(_)
            | CExpr::Var(_)
            | CExpr::NamedSet(_)
            | CExpr::NamedRef(_)
            | CExpr::NamedValue(_) => {}
        }
    }

    /// The slot assigned to `node`, if it belongs to this plan.
    pub fn slot_of(&self, node: &ExecNode) -> Option<u32> {
        self.by_addr
            .get(&(node as *const ExecNode as usize))
            .copied()
    }

    /// Number of indexed nodes.
    pub fn len(&self) -> usize {
        self.meta.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.meta.is_empty()
    }
}

/// Label for a node when no planner annotation is available.
fn fallback_label(node: &ExecNode) -> String {
    match node {
        ExecNode::Unit => "Unit".into(),
        ExecNode::SeqScan { var, .. } => format!("SeqScan {var}"),
        ExecNode::SystemScan { var, view } => format!("SystemScan {var} over sys.{view}"),
        ExecNode::IndexScan { var, .. } => format!("IndexScan {var}"),
        ExecNode::Unnest { var, .. } => format!("Unnest {var}"),
        ExecNode::NestedLoop { .. } => "NestedLoop".into(),
        ExecNode::Filter { .. } => "Filter".into(),
        ExecNode::UniversalFilter { .. } => "UniversalFilter".into(),
        ExecNode::Project { .. } => "Project".into(),
        ExecNode::Sort { .. } => "Sort".into(),
        ExecNode::HashJoin { var, .. } => format!("HashJoin {var}"),
        ExecNode::IndexJoin { var, .. } => format!("IndexJoin {var}"),
        ExecNode::Parallel { dop, .. } => format!("Parallel dop={dop}"),
    }
}

/// Per-slot counters. `Cell`-based: the profiler lives on an `ExecCtx`,
/// which is single-threaded by design.
#[derive(Default)]
struct OpCounters {
    rows_in: Cell<u64>,
    rows_out: Cell<u64>,
    batches_in: Cell<u64>,
    batches_out: Cell<u64>,
    elapsed_ns: Cell<u64>,
    peak_batch: Cell<u64>,
}

/// Work done by one parallel worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerStats {
    /// Morsels the worker claimed from the shared queue.
    pub morsels: u64,
    /// Scan rows the worker produced from those morsels.
    pub rows: u64,
}

/// Exchange-operator detail recorded by the morsel driver.
struct ParallelDetail {
    slot: u32,
    workers: Vec<WorkerStats>,
    merge_wait_ns: u64,
}

/// Live profiling state for one plan execution.
pub struct PlanProfiler {
    index: Arc<PlanIndex>,
    counters: Vec<OpCounters>,
    details: RefCell<Vec<ParallelDetail>>,
}

impl PlanProfiler {
    /// A profiler over a freshly built index.
    pub fn new(index: PlanIndex) -> PlanProfiler {
        Self::over(Arc::new(index))
    }

    fn over(index: Arc<PlanIndex>) -> PlanProfiler {
        let counters = (0..index.len()).map(|_| OpCounters::default()).collect();
        PlanProfiler {
            index,
            counters,
            details: RefCell::new(Vec::new()),
        }
    }

    /// The shared plan index.
    pub fn index(&self) -> &PlanIndex {
        &self.index
    }

    /// A zero-counter profiler over the same plan, for a parallel worker.
    pub fn fork(&self) -> PlanProfiler {
        Self::over(self.index.clone())
    }

    /// Fold a worker profiler's counters into this one. Sums (and a max
    /// for the peak) are order-independent, so merged counts match a
    /// serial run regardless of worker scheduling.
    pub fn absorb(&self, other: PlanProfiler) {
        for (mine, theirs) in self.counters.iter().zip(&other.counters) {
            mine.rows_in.set(mine.rows_in.get() + theirs.rows_in.get());
            mine.rows_out
                .set(mine.rows_out.get() + theirs.rows_out.get());
            mine.batches_in
                .set(mine.batches_in.get() + theirs.batches_in.get());
            mine.batches_out
                .set(mine.batches_out.get() + theirs.batches_out.get());
            mine.elapsed_ns
                .set(mine.elapsed_ns.get() + theirs.elapsed_ns.get());
            mine.peak_batch
                .set(mine.peak_batch.get().max(theirs.peak_batch.get()));
        }
        self.details.borrow_mut().extend(other.details.into_inner());
    }

    /// Record one batch consumed by the operator at `slot`.
    #[inline]
    pub fn record_in(&self, slot: u32, rows: usize) {
        let c = &self.counters[slot as usize];
        c.rows_in.set(c.rows_in.get() + rows as u64);
        c.batches_in.set(c.batches_in.get() + 1);
    }

    /// Record one batch produced by the operator at `slot`.
    #[inline]
    pub fn record_out(&self, slot: u32, rows: usize) {
        let c = &self.counters[slot as usize];
        c.rows_out.set(c.rows_out.get() + rows as u64);
        c.batches_out.set(c.batches_out.get() + 1);
        c.peak_batch.set(c.peak_batch.get().max(rows as u64));
    }

    /// Add cursor-pull wall time (inclusive of upstream pulls) to `slot`.
    #[inline]
    pub fn record_ns(&self, slot: u32, ns: u64) {
        let c = &self.counters[slot as usize];
        c.elapsed_ns.set(c.elapsed_ns.get() + ns);
    }

    /// Record exchange-operator detail: per-worker morsel/row counts and
    /// the time the merging tail spent draining the result channel.
    pub fn record_parallel(&self, slot: u32, workers: Vec<WorkerStats>, merge_wait_ns: u64) {
        self.details.borrow_mut().push(ParallelDetail {
            slot,
            workers,
            merge_wait_ns,
        });
    }

    /// Assemble the final profile.
    pub fn finish(
        self,
        total_ns: u64,
        result_rows: u64,
        dop: usize,
        buffer: Option<BufferDelta>,
    ) -> QueryProfile {
        let details = self.details.into_inner();
        let nodes = self
            .index
            .meta
            .iter()
            .zip(&self.counters)
            .enumerate()
            .map(|(slot, (meta, c))| {
                let (workers, merge_wait_ns) = details
                    .iter()
                    .filter(|d| d.slot == slot as u32)
                    .fold((Vec::new(), 0), |(mut ws, wait), d| {
                        ws.extend(d.workers.iter().copied());
                        (ws, wait + d.merge_wait_ns)
                    });
                OpProfile {
                    depth: meta.depth,
                    label: meta.label.clone(),
                    est_rows: meta.est_rows,
                    rows_in: c.rows_in.get(),
                    rows_out: c.rows_out.get(),
                    batches_in: c.batches_in.get(),
                    batches_out: c.batches_out.get(),
                    elapsed_ns: c.elapsed_ns.get(),
                    peak_batch: c.peak_batch.get(),
                    workers,
                    merge_wait_ns,
                }
            })
            .collect();
        QueryProfile {
            nodes,
            total_ns,
            result_rows,
            dop,
            buffer,
        }
    }
}

/// Buffer-pool activity during one statement (after − before of the
/// pool's monotonic counters).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BufferDelta {
    /// Pins satisfied from the pool.
    pub hits: u64,
    /// Pins that required a volume read.
    pub misses: u64,
    /// Frames reclaimed by the clock hand.
    pub evictions: u64,
    /// Dirty pages written back.
    pub writebacks: u64,
}

impl BufferDelta {
    /// Counter difference `after − before` (saturating, the counters are
    /// monotonic).
    pub fn between(
        before: &exodus_storage::BufferStats,
        after: &exodus_storage::BufferStats,
    ) -> BufferDelta {
        BufferDelta {
            hits: after.hits.saturating_sub(before.hits),
            misses: after.misses.saturating_sub(before.misses),
            evictions: after.evictions.saturating_sub(before.evictions),
            writebacks: after.writebacks.saturating_sub(before.writebacks),
        }
    }
}

/// Observed metrics for one plan node.
#[derive(Debug, Clone, PartialEq)]
pub struct OpProfile {
    /// Tree depth (root = 0).
    pub depth: u16,
    /// One-line operator description.
    pub label: String,
    /// Planner-estimated output rows.
    pub est_rows: Option<f64>,
    /// Rows consumed from the operator's input.
    pub rows_in: u64,
    /// Rows produced.
    pub rows_out: u64,
    /// Input batches consumed.
    pub batches_in: u64,
    /// Output batches produced.
    pub batches_out: u64,
    /// Cumulative cursor-pull wall time, inclusive of upstream pulls.
    pub elapsed_ns: u64,
    /// Largest output batch (rows) — batch-fill health.
    pub peak_batch: u64,
    /// Per-worker morsel/row counts (parallel exchanges only).
    pub workers: Vec<WorkerStats>,
    /// Time the exchange's merging tail spent draining worker output.
    pub merge_wait_ns: u64,
}

impl OpProfile {
    /// Observed selectivity (`rows_out / rows_in`), when the operator
    /// consumed any input.
    pub fn selectivity(&self) -> Option<f64> {
        (self.rows_in > 0).then(|| self.rows_out as f64 / self.rows_in as f64)
    }
}

/// A complete execution profile: per-node metrics in plan pre-order plus
/// statement-level totals.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryProfile {
    /// Per-node metrics, pre-order (depth gives the tree shape).
    pub nodes: Vec<OpProfile>,
    /// End-to-end execution wall time.
    pub total_ns: u64,
    /// Rows in the statement's result (or staged bindings, for updates).
    pub result_rows: u64,
    /// Worker threads the session allowed.
    pub dop: usize,
    /// Buffer-pool delta over the statement.
    pub buffer: Option<BufferDelta>,
}

fn fmt_ms(ns: u64) -> String {
    format!("{:.3}ms", ns as f64 / 1e6)
}

impl fmt::Display for QueryProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for n in &self.nodes {
            for _ in 0..n.depth {
                write!(f, "  ")?;
            }
            write!(f, "{} (", n.label)?;
            match n.est_rows {
                Some(est) => write!(f, "est={est:.0} rows={}", n.rows_out)?,
                None => write!(f, "rows={}", n.rows_out)?,
            }
            write!(f, " batches={}", n.batches_out)?;
            if let Some(sel) = n.selectivity() {
                if n.rows_out != n.rows_in {
                    write!(f, " in={}", n.rows_in)?;
                    // Selectivity only makes sense for reducing operators;
                    // scans and unnests fan out from their seed rows.
                    if n.rows_out < n.rows_in {
                        write!(f, " sel={:.1}%", sel * 100.0)?;
                    }
                }
            }
            if n.peak_batch > 0 {
                write!(f, " peak={}", n.peak_batch)?;
            }
            write!(f, " time={})", fmt_ms(n.elapsed_ns))?;
            if !n.workers.is_empty() {
                write!(f, " [merge_wait={}", fmt_ms(n.merge_wait_ns))?;
                for (i, w) in n.workers.iter().enumerate() {
                    write!(f, ", w{i}: {} morsels/{} rows", w.morsels, w.rows)?;
                }
                write!(f, "]")?;
            }
            writeln!(f)?;
        }
        write!(
            f,
            "-- total: {} rows={} dop={}",
            fmt_ms(self.total_ns),
            self.result_rows,
            self.dop
        )?;
        if let Some(b) = &self.buffer {
            write!(
                f,
                "\n-- buffer pool: hits={} misses={} evictions={} writebacks={}",
                b.hits, b.misses, b.evictions, b.writebacks
            )?;
        }
        Ok(())
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl QueryProfile {
    /// Render the profile as a JSON object (no external dependencies —
    /// the workspace is offline).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\"total_ns\":");
        s.push_str(&self.total_ns.to_string());
        s.push_str(&format!(
            ",\"result_rows\":{},\"dop\":{}",
            self.result_rows, self.dop
        ));
        if let Some(b) = &self.buffer {
            s.push_str(&format!(
                ",\"buffer\":{{\"hits\":{},\"misses\":{},\"evictions\":{},\"writebacks\":{}}}",
                b.hits, b.misses, b.evictions, b.writebacks
            ));
        }
        s.push_str(",\"operators\":[");
        for (i, n) in self.nodes.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"depth\":{},\"op\":\"{}\"",
                n.depth,
                json_escape(&n.label)
            ));
            if let Some(est) = n.est_rows {
                s.push_str(&format!(",\"est_rows\":{est:.1}"));
            }
            s.push_str(&format!(
                ",\"rows_in\":{},\"rows_out\":{},\"batches_in\":{},\"batches_out\":{},\"elapsed_ns\":{},\"peak_batch\":{}",
                n.rows_in, n.rows_out, n.batches_in, n.batches_out, n.elapsed_ns, n.peak_batch
            ));
            if !n.workers.is_empty() {
                s.push_str(&format!(
                    ",\"merge_wait_ns\":{},\"workers\":[",
                    n.merge_wait_ns
                ));
                for (j, w) in n.workers.iter().enumerate() {
                    if j > 0 {
                        s.push(',');
                    }
                    s.push_str(&format!(
                        "{{\"morsels\":{},\"rows\":{}}}",
                        w.morsels, w.rows
                    ));
                }
                s.push(']');
            }
            s.push('}');
        }
        s.push_str("]}");
        s
    }
}
