//! Morsel-driven intra-query parallelism.
//!
//! [`try_parallel_slotted`] fans a scan→unnest→filter pipeline prefix out to a
//! pool of `std::thread::scope` workers. The leftmost storage scan is
//! split into *morsels* — contiguous page runs from
//! `HeapFile::partitions` / `BTree::partitions` — which sit in a shared
//! work queue that workers claim from with an atomic counter (fast
//! workers steal the slack of slow ones, so page-occupancy skew does not
//! serialize the query). Each worker binds the morsel's members against
//! the single seed row, replays them through the remainder of the
//! pipeline (the partitioned leaf is spliced out via
//! [`crate::cursor::open_sub`]), folds every output batch with the
//! caller's function, and pushes the results through a bounded channel
//! into the single-threaded tail.
//!
//! Results are tagged `(morsel index, batch sequence)` and sorted before
//! they are returned, so the merged output order — and therefore every
//! downstream computation, including float summation order — is
//! bit-identical to a serial scan. Workers run with `workers = 1` and
//! fresh caches, so parallelism never nests and the `Cell`/`RefCell`
//! interior mutability of [`ExecCtx`] never crosses a thread.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::sync_channel;
use std::sync::Mutex;

use exodus_storage::btree::{BTree, BTreeScan};
use exodus_storage::{Oid, RecordId};
use extra_model::{MemberScan, ModelError, ModelResult, Value};

use crate::batch::RowBatch;
use crate::cursor::{member_binding, open_sub, Cursor};
use crate::eval::ExecCtx;
use crate::plan::ExecNode;
use crate::profile::{PlanProfiler, WorkerStats};

/// Member count below which fan-out is never attempted. Mirrors the
/// planner's cost-model gate (`excess-algebra`'s `PARALLEL_MIN_ROWS`);
/// re-checked here with the *actual* collection count because aggregate
/// `over` plans reach the executor without passing through the planner.
pub(crate) const PARALLEL_MIN_ROWS: u64 = 4096;
/// Morsels handed out per worker: enough slack for work stealing to
/// even out skew, few enough that claim overhead stays negligible.
const MORSELS_PER_WORKER: usize = 4;
/// Bounded result-channel capacity per worker (backpressure for the
/// serial tail).
const CHANNEL_SLACK: usize = 2;

/// The leftmost storage scan of a parallel-safe pipeline prefix. Only
/// row-local operators may sit between the exchange and the leaf
/// (filter, unnest, projection pass-through, the outer side of a nested
/// loop); sort and universal quantification force the serial path.
fn leftmost_scan(node: &ExecNode) -> Option<&ExecNode> {
    match node {
        ExecNode::SeqScan { .. } | ExecNode::IndexScan { .. } => Some(node),
        ExecNode::Unnest { input, .. }
        | ExecNode::Filter { input, .. }
        | ExecNode::Project { input, .. }
        | ExecNode::Parallel { input, .. } => leftmost_scan(input),
        // Joins are row-local on their probe side: each worker lazily
        // builds its own hash table / probes the shared index.
        ExecNode::HashJoin { input, .. } | ExecNode::IndexJoin { input, .. } => {
            leftmost_scan(input)
        }
        ExecNode::NestedLoop { outer, .. } => leftmost_scan(outer),
        // System scans are snapshot-at-open over in-memory provider
        // state: never partitioned, so sys.* rows are DOP-invariant.
        ExecNode::Unit
        | ExecNode::SystemScan { .. }
        | ExecNode::UniversalFilter { .. }
        | ExecNode::Sort { .. } => None,
    }
}

/// A unit of scan work: one partition of the leaf's storage structure.
enum Morsel {
    Heap(MemberScan),
    Index(BTreeScan),
}

impl Morsel {
    /// Next chunk of decoded `(rid, member value)` pairs.
    fn next_chunk(&mut self, ctx: &ExecCtx<'_>, cap: usize) -> ModelResult<Vec<(RecordId, Value)>> {
        match self {
            Morsel::Heap(scan) => scan.next_batch(cap),
            Morsel::Index(scan) => {
                let entries = scan.next_batch(cap)?;
                let mut out = Vec::with_capacity(entries.len());
                for (_, packed) in entries {
                    let rid = RecordId::unpack(packed);
                    // Index entries can reference versions outside the
                    // snapshot (writer-synchronous maintenance); skip them.
                    let Some(bytes) = exodus_storage::heap::read_record_visible(
                        ctx.store.storage().pool(),
                        rid,
                        ctx.snapshot,
                    )?
                    else {
                        continue;
                    };
                    out.push((rid, extra_model::valueio::from_bytes(&bytes)?));
                }
                Ok(out)
            }
        }
    }
}

/// Build the morsel queue for the pipeline's leaf, or `None` when the
/// leaf's collection is below [`PARALLEL_MIN_ROWS`].
fn morsels_for(ctx: &ExecCtx<'_>, leaf: &ExecNode, k: usize) -> ModelResult<Option<Vec<Morsel>>> {
    match leaf {
        ExecNode::SeqScan { anchor, .. } => {
            if ctx.store.member_count(*anchor)? < PARALLEL_MIN_ROWS {
                return Ok(None);
            }
            Ok(Some(
                ctx.store
                    .scan_members_partitions_at(*anchor, k, ctx.snapshot)?
                    .into_iter()
                    .map(Morsel::Heap)
                    .collect(),
            ))
        }
        ExecNode::IndexScan {
            anchor,
            root,
            lower,
            upper,
            ..
        } => {
            if ctx.store.member_count(*anchor)? < PARALLEL_MIN_ROWS {
                return Ok(None);
            }
            let scans = BTree::open(*root).partitions(
                ctx.store.storage().pool(),
                k,
                lower.clone(),
                upper.clone(),
            )?;
            Ok(Some(scans.into_iter().map(Morsel::Index).collect()))
        }
        _ => Ok(None),
    }
}

/// Shared work queue: workers claim morsels with an atomic ticket.
struct MorselQueue {
    next: AtomicUsize,
    slots: Vec<Mutex<Option<Morsel>>>,
}

impl MorselQueue {
    fn claim(&self) -> Option<(usize, Morsel)> {
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            let slot = self.slots.get(i)?;
            if let Some(m) = slot.lock().expect("morsel slot lock").take() {
                return Some((i, m));
            }
        }
    }
}

/// Drain a morsel into input batches for the pipeline remainder: each
/// member extends the single seed row with the scan variable's binding.
fn morsel_batches(
    wctx: &ExecCtx<'_>,
    morsel: &mut Morsel,
    seed: &RowBatch,
    var: &str,
    anchor: Oid,
    leaf_slot: Option<u32>,
) -> ModelResult<VecDeque<RowBatch>> {
    let cap = wctx.batch_size.max(1);
    let mut out = VecDeque::new();
    // When profiling, the morsel drain stands in for the spliced-out scan
    // cursor: its rows/batches/time are attributed to the scan's slot so
    // parallel counts agree with a serial run.
    let timer = leaf_slot
        .filter(|_| wctx.profiler.is_some())
        .map(|_| std::time::Instant::now());
    loop {
        let chunk = morsel.next_chunk(wctx, cap)?;
        if chunk.is_empty() {
            if let (Some(t0), Some(slot), Some(p)) = (timer, leaf_slot, wctx.profiler.as_ref()) {
                p.record_ns(slot, t0.elapsed().as_nanos() as u64);
            }
            return Ok(out);
        }
        let mut batch = RowBatch::with_vars(RowBatch::extended_vars(seed, var));
        for (rid, value) in chunk {
            let (value, id) = member_binding(anchor, rid, value);
            batch.push_extended(seed, 0, var, value, id);
        }
        if let (Some(slot), Some(p)) = (leaf_slot, wctx.profiler.as_ref()) {
            p.record_out(slot, batch.len());
        }
        out.push_back(batch);
    }
}

/// Run `plan` under morsel-driven parallelism, folding every output
/// batch with `fold` on the worker that produced it. Returns
/// `Ok(None)` when the pipeline is not worth (or not safe to)
/// parallelize — the caller must then run it serially — and
/// `Ok(Some(results))` with the folded items in exact serial scan order
/// otherwise.
///
/// Requirements checked here: at least two workers on `ctx`, a
/// single-row `seed` (the correlation environment), a partitionable
/// leftmost scan, and a collection clearing [`PARALLEL_MIN_ROWS`].
///
/// The caller supplies `exch_slot`, the profiling slot worker morsel
/// counts and merge-wait time attach to (see [`crate::profile`]): the
/// exchange operator's slot when one exists, or the aggregate `over`
/// plan's own root — such plans have no exchange node.
pub(crate) fn try_parallel_slotted<T, F>(
    plan: &ExecNode,
    ctx: &ExecCtx<'_>,
    seed: &RowBatch,
    exch_slot: Option<u32>,
    fold: &F,
) -> ModelResult<Option<Vec<T>>>
where
    T: Send,
    F: Fn(&ExecCtx<'_>, RowBatch) -> ModelResult<T> + Sync,
{
    if ctx.workers < 2 || seed.len() != 1 {
        return Ok(None);
    }
    let Some(leaf) = leftmost_scan(plan) else {
        return Ok(None);
    };
    let (var, anchor) = match leaf {
        ExecNode::SeqScan { var, anchor } | ExecNode::IndexScan { var, anchor, .. } => {
            (var.as_str(), *anchor)
        }
        _ => unreachable!("leftmost_scan returns scans only"),
    };
    let Some(morsels) = morsels_for(ctx, leaf, ctx.workers * MORSELS_PER_WORKER)? else {
        return Ok(None);
    };
    if morsels.is_empty() {
        return Ok(Some(Vec::new()));
    }
    let workers = ctx.workers.min(morsels.len());
    let queue = MorselQueue {
        next: AtomicUsize::new(0),
        slots: morsels.into_iter().map(|m| Mutex::new(Some(m))).collect(),
    };
    let abort = AtomicBool::new(false);
    // Workers get plain `Sync` pieces of the context, never the context
    // itself (its caches are single-threaded by design). Profiling
    // applies only when the session profiler's index covers this
    // pipeline (it indexes aggregate `over` plans too, as expression
    // children of their operator); each worker then gets a zero-counter
    // fork whose sums are absorbed after the scope joins, so merged
    // operator counts are deterministic and identical to a serial run.
    let prof = ctx
        .profiler
        .as_ref()
        .filter(|p| p.index().slot_of(leaf).is_some());
    let mut worker_profs: Vec<Option<PlanProfiler>> =
        (0..workers).map(|_| prof.map(|p| p.fork())).collect();
    let finished: Mutex<Vec<(usize, PlanProfiler, WorkerStats)>> = Mutex::new(Vec::new());
    let (store, types, adts, catalog) = (ctx.store, ctx.types, ctx.adts, ctx.catalog);
    let batch_size = ctx.batch_size;
    let snapshot = ctx.snapshot;
    let metrics = ctx.metrics.clone();
    let (tx, rx) = sync_channel::<(usize, usize, ModelResult<T>)>(workers * CHANNEL_SLACK);

    let merged = std::thread::scope(|s| {
        for (wid, slot) in worker_profs.iter_mut().enumerate() {
            let tx = tx.clone();
            let (queue, abort, finished) = (&queue, &abort, &finished);
            let wprof = slot.take();
            let wmetrics = metrics.clone();
            s.spawn(move || {
                let mut wctx = ExecCtx::new(store, types, adts, catalog)
                    .with_batch_size(batch_size)
                    .with_snapshot(snapshot)
                    .with_metrics(wmetrics);
                if let Some(p) = wprof {
                    wctx = wctx.with_profiler(p);
                }
                let leaf_slot = wctx.profiler.as_ref().and_then(|p| p.index().slot_of(leaf));
                let mut stats = WorkerStats {
                    morsels: 0,
                    rows: 0,
                };
                'morsels: while let Some((midx, mut morsel)) = queue.claim() {
                    if abort.load(Ordering::Relaxed) {
                        break;
                    }
                    stats.morsels += 1;
                    if let Some(m) = wctx.metrics.as_ref() {
                        m.morsels.inc();
                    }
                    let mut seq = 0usize;
                    let batches =
                        match morsel_batches(&wctx, &mut morsel, seed, var, anchor, leaf_slot) {
                            Ok(b) => b,
                            Err(e) => {
                                abort.store(true, Ordering::Relaxed);
                                let _ = tx.send((midx, seq, Err(e)));
                                break;
                            }
                        };
                    stats.rows += batches.iter().map(|b| b.len() as u64).sum::<u64>();
                    let index = wctx.profiler.as_ref().map(|p| p.index());
                    let mut cur = open_sub(plan, Some(leaf), Cursor::Queue(batches), index);
                    loop {
                        match cur.next(&wctx) {
                            Ok(Some(batch)) => {
                                let item = fold(&wctx, batch);
                                let failed = item.is_err();
                                if failed {
                                    abort.store(true, Ordering::Relaxed);
                                }
                                if tx.send((midx, seq, item)).is_err() || failed {
                                    break 'morsels;
                                }
                                seq += 1;
                            }
                            Ok(None) => break,
                            Err(e) => {
                                abort.store(true, Ordering::Relaxed);
                                let _ = tx.send((midx, seq, Err(e)));
                                break 'morsels;
                            }
                        }
                    }
                }
                if let Some(p) = wctx.profiler.take() {
                    finished.lock().expect("profiler bin").push((wid, p, stats));
                }
            });
        }
        drop(tx);
        // The single-threaded tail: drain the bounded channel while the
        // workers run, then restore deterministic (morsel, sequence)
        // order. `rx` closes once every worker has dropped its sender.
        let drain_t0 = (prof.is_some() || metrics.is_some()).then(std::time::Instant::now);
        let mut items: Vec<(usize, usize, T)> = Vec::new();
        let mut first_err: Option<ModelError> = None;
        for (midx, seq, item) in rx {
            match item {
                Ok(t) => items.push((midx, seq, t)),
                Err(e) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
        }
        let merge_wait_ns = drain_t0.map_or(0, |t0| t0.elapsed().as_nanos() as u64);
        match first_err {
            Some(e) => Err(e),
            None => {
                items.sort_by_key(|&(midx, seq, _)| (midx, seq));
                Ok((
                    items.into_iter().map(|(_, _, t)| t).collect::<Vec<T>>(),
                    merge_wait_ns,
                ))
            }
        }
    });
    let (merged, merge_wait_ns) = merged?;
    if let Some(m) = ctx.metrics.as_ref() {
        m.merge_wait_ns.observe(merge_wait_ns);
    }
    if let Some(p) = prof {
        // Deterministic absorption order: by worker id, not completion.
        let mut done = finished.into_inner().expect("profiler bin");
        done.sort_by_key(|(wid, _, _)| *wid);
        let mut stats = Vec::with_capacity(done.len());
        for (_, wp, ws) in done {
            p.absorb(wp);
            stats.push(ws);
        }
        // The seed row "entered" the spliced-out scan, exactly as it
        // would have entered the serial scan cursor.
        if let Some(slot) = p.index().slot_of(leaf) {
            p.record_in(slot, seed.len());
        }
        if let Some(slot) = exch_slot {
            p.record_parallel(slot, stats, merge_wait_ns);
        }
    }
    Ok(Some(merged))
}

#[cfg(test)]
mod tests {
    /// The types shipped between workers and the tail must be `Send`;
    /// the shared plan/context pieces must be `Sync`.
    #[test]
    fn read_path_is_send_sync_clean() {
        fn assert_send<T: Send>() {}
        fn assert_sync<T: Sync>() {}
        assert_send::<crate::batch::RowBatch>();
        assert_send::<extra_model::Value>();
        assert_send::<super::Morsel>();
        assert_sync::<crate::plan::ExecNode>();
        assert_sync::<crate::cexpr::CExpr>();
        assert_sync::<extra_model::ObjectStore>();
    }
}
