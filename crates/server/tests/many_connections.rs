//! Integration tests: many concurrent remote clients, admission
//! shedding, and the `/metrics` scrape — against a real server on a
//! loopback socket.

use std::sync::Arc;
use std::time::{Duration, Instant};

use exodus_db::{validate_exposition, Client, Database, DbError};
use exodus_server::{AdmissionConfig, RemoteSession, Server, TcpTransport};

fn serve(config: AdmissionConfig) -> Server {
    let db = Database::in_memory();
    db.session()
        .run(
            r#"
            define type Entry (tag: varchar, n: int4);
            create { own ref Entry } Log;
        "#,
        )
        .unwrap();
    Server::spawn(db, TcpTransport::bind("127.0.0.1:0").unwrap(), config).unwrap()
}

/// Poll until `probe` is true or the deadline passes (worker threads
/// notice a dropped connection within their read-timeout tick).
fn eventually(what: &str, probe: impl Fn() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !probe() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn many_clients_pipeline_concurrently() {
    const CLIENTS: usize = 16;
    const STATEMENTS: usize = 8;

    let server = serve(AdmissionConfig::default());
    let addr = Arc::new(server.addr().to_string());

    let workers: Vec<_> = (0..CLIENTS)
        .map(|client_id| {
            let addr = Arc::clone(&addr);
            std::thread::spawn(move || {
                let mut session = RemoteSession::connect(&*addr, "admin").unwrap();
                // Pipeline every append before reading any result.
                for n in 0..STATEMENTS {
                    session
                        .send(&format!(r#"append to Log (tag = "c{client_id}", n = {n})"#))
                        .unwrap();
                }
                let results = session.drain().unwrap();
                assert_eq!(results.len(), STATEMENTS);
                for r in results {
                    r.unwrap();
                }
                // Each client sees its own writes.
                let mine = session
                    .query(&format!(
                        r#"retrieve (L.n) from L in Log where L.tag = "c{client_id}""#
                    ))
                    .unwrap();
                assert_eq!(mine.rows.len(), STATEMENTS);
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }

    let mut checker = RemoteSession::connect(&*addr, "admin").unwrap();
    let total = checker.query("retrieve (L.n) from L in Log").unwrap();
    assert_eq!(total.rows.len(), CLIENTS * STATEMENTS);

    let metrics = server.admission().metrics();
    assert!(
        metrics.statements_total.get() >= (CLIENTS * (STATEMENTS + 1)) as u64,
        "admitted statements: {}",
        metrics.statements_total.get()
    );
    assert_eq!(metrics.shed_statements_total.get(), 0);
    drop(checker);
    eventually("all connections to close", || {
        metrics.active_connections.get() == 0
    });
    assert_eq!(metrics.connections_total.get(), (CLIENTS + 1) as u64);
}

#[test]
fn connections_past_the_limit_are_shed_with_a_retryable_code() {
    let server = serve(AdmissionConfig {
        max_connections: 3,
        ..AdmissionConfig::default()
    });
    let metrics = server.admission().metrics();

    let held: Vec<_> = (0..3)
        .map(|_| RemoteSession::connect(server.addr(), "admin").unwrap())
        .collect();
    eventually("three active connections", || {
        metrics.active_connections.get() == 3
    });

    // The fourth is refused during the handshake, with the stable
    // retryable code — not a hang, not a socket reset.
    let refused = RemoteSession::connect(server.addr(), "admin").unwrap_err();
    match &refused {
        DbError::Remote { code, .. } => assert_eq!(*code, 2002),
        other => panic!("expected a remote shed error, got {other:?}"),
    }
    assert!(refused.is_retryable());
    eventually("the shed to be counted", || {
        metrics.shed_connections_total.get() == 1
    });
    assert_eq!(metrics.active_connections.get(), 3);

    // Capacity freed by a departing client is reusable.
    drop(held);
    eventually("held connections to close", || {
        metrics.active_connections.get() == 0
    });
    let mut retry = RemoteSession::connect(server.addr(), "admin").unwrap();
    retry.run("retrieve (L.n) from L in Log").unwrap();
}

#[test]
fn statement_queue_depth_sheds_but_keeps_the_connection() {
    let server = serve(AdmissionConfig {
        queue_depth: 0,
        ..AdmissionConfig::default()
    });
    let mut session = RemoteSession::connect(server.addr(), "admin").unwrap();
    // Every statement is refused (depth 0), but on the same live
    // connection — a later retry (here: after a config with capacity
    // would admit) still speaks the protocol.
    let err = session.run("retrieve (L.n) from L in Log").unwrap_err();
    match &err {
        DbError::Remote { code, .. } => assert_eq!(*code, 2002),
        other => panic!("expected a remote shed error, got {other:?}"),
    }
    assert!(err.is_retryable());
    // The connection survived the shed: another request gets the same
    // orderly answer rather than a broken pipe.
    let err = session.run("retrieve (L.n) from L in Log").unwrap_err();
    assert!(matches!(err, DbError::Remote { code: 2002, .. }));
    assert_eq!(server.admission().metrics().shed_statements_total.get(), 2);
}

#[test]
fn http_scrape_returns_valid_exposition_with_server_families() {
    use std::io::{Read, Write};

    let server = serve(AdmissionConfig::default());
    // Generate some traffic so the families carry real values.
    let mut session = RemoteSession::connect(server.addr(), "admin").unwrap();
    session
        .run(r#"append to Log (tag = "scrape", n = 1)"#)
        .unwrap();

    let mut http = std::net::TcpStream::connect(server.addr()).unwrap();
    http.write_all(b"GET /metrics HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n")
        .unwrap();
    let mut response = String::new();
    http.read_to_string(&mut response).unwrap();

    let (head, body) = response
        .split_once("\r\n\r\n")
        .expect("an HTTP head/body split");
    assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
    assert!(head.contains("text/plain; version=0.0.4"), "{head}");

    let families = validate_exposition(body).expect("a valid Prometheus exposition");
    assert!(families > 0);
    for family in [
        "server_connections_total",
        "server_active_connections",
        "server_statements_total",
        "server_shed_statements_total",
        "server_statement_ns",
        "server_frames_in_total",
        "server_frames_out_total",
        "server_metrics_scrapes_total",
    ] {
        assert!(
            body.contains(family),
            "exposition should carry {family}:\n{body}"
        );
    }
    // The database's own families share the page (one registry).
    assert!(body.contains("db_statements_total"), "{body}");

    // Unknown paths 404 without killing the listener.
    let mut http = std::net::TcpStream::connect(server.addr()).unwrap();
    http.write_all(b"GET /nope HTTP/1.1\r\n\r\n").unwrap();
    let mut response = String::new();
    http.read_to_string(&mut response).unwrap();
    assert!(response.starts_with("HTTP/1.1 404"), "{response}");
}

/// The same port serves the snapshot as JSON: `/metrics.json` by path,
/// or `/metrics` content-negotiated with `Accept: application/json`.
#[test]
fn http_scrape_serves_json_by_path_and_accept_header() {
    use std::io::{Read, Write};

    let server = serve(AdmissionConfig::default());
    let mut session = RemoteSession::connect(server.addr(), "admin").unwrap();
    session
        .run(r#"append to Log (tag = "json", n = 1)"#)
        .unwrap();

    let fetch = |request: &[u8]| {
        let mut http = std::net::TcpStream::connect(server.addr()).unwrap();
        http.write_all(request).unwrap();
        let mut response = String::new();
        http.read_to_string(&mut response).unwrap();
        let (head, body) = response
            .split_once("\r\n\r\n")
            .map(|(h, b)| (h.to_string(), b.to_string()))
            .expect("an HTTP head/body split");
        (head, body)
    };

    for request in [
        b"GET /metrics.json HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n".as_slice(),
        b"GET /metrics HTTP/1.1\r\nHost: test\r\nAccept: application/json\r\nConnection: close\r\n\r\n",
    ] {
        let (head, body) = fetch(request);
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        assert!(head.contains("application/json"), "{head}");
        let snap = exodus_db::MetricsSnapshot::from_json(&body)
            .expect("the JSON body parses back into a snapshot");
        assert!(
            snap.counter("server_statements_total").unwrap_or(0) > 0,
            "server families missing from the JSON snapshot"
        );
        assert!(snap.counter("db_statements_total").unwrap_or(0) > 0);
    }

    // The plain scrape still answers the Prometheus exposition.
    let (head, body) = fetch(b"GET /metrics HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n");
    assert!(head.contains("text/plain; version=0.0.4"), "{head}");
    validate_exposition(&body).expect("a valid Prometheus exposition");
}

#[test]
fn shutdown_interrupts_a_stalled_mid_frame_read() {
    use exodus_server::protocol::{read_frame, write_frame};
    use exodus_server::{Frame, PREAMBLE, VERSION};
    use std::io::Write;
    use std::sync::atomic::{AtomicBool, Ordering};

    let mut server = serve(AdmissionConfig::default());
    let mut conn = std::net::TcpStream::connect(server.addr()).unwrap();
    conn.write_all(&PREAMBLE).unwrap();
    write_frame(
        &mut conn,
        &Frame::Hello {
            version: VERSION,
            user: "admin".into(),
        },
    )
    .unwrap();
    let welcome = read_frame(&mut conn).unwrap().unwrap();
    assert!(matches!(welcome, Frame::Welcome { .. }), "{welcome:?}");
    // A partial frame: a length prefix announcing 64 bytes, then
    // silence. The service thread is now blocked mid-frame; shutdown
    // must still interrupt it (it checks the stop flag on every read
    // timeout tick, not only between frames).
    conn.write_all(&64u32.to_le_bytes()).unwrap();

    let done = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&done);
    let closer = std::thread::spawn(move || {
        server.shutdown();
        flag.store(true, Ordering::Release);
    });
    eventually(
        "shutdown to return despite a stalled mid-frame read",
        || done.load(Ordering::Acquire),
    );
    closer.join().unwrap();
    drop(conn);
}

#[test]
fn a_half_handshake_cannot_pin_a_connection_slot() {
    use std::io::Write;

    let server = serve(AdmissionConfig {
        max_connections: 1,
        ..AdmissionConfig::default()
    });
    let metrics = server.admission().metrics();
    // Preamble only — then silence, never sending Hello. Admission
    // runs only after the opening frame arrives, so the dawdler holds
    // no connection slot at any point...
    let mut idle = std::net::TcpStream::connect(server.addr()).unwrap();
    idle.write_all(b"EXO\x01").unwrap();
    std::thread::sleep(Duration::from_millis(200));
    assert_eq!(
        metrics.active_connections.get(),
        0,
        "a half-handshake must not claim a slot"
    );
    // ...and a real client takes the only slot immediately, without
    // waiting out the dawdler's handshake deadline.
    let mut session = RemoteSession::connect(server.addr(), "admin").unwrap();
    session.run("retrieve (L.n) from L in Log").unwrap();
    drop(idle);
}

#[test]
fn a_transport_failure_poisons_the_remote_session() {
    use exodus_server::protocol::{read_frame, write_frame};
    use exodus_server::{Frame, VERSION};
    use std::io::Read;

    // A fake server that completes the handshake, then answers the
    // first request with a frame that is illegal in a response stream
    // and goes quiet — with the socket still open.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let fake = std::thread::spawn(move || {
        let (mut s, _) = listener.accept().unwrap();
        let mut preamble = [0u8; 4];
        s.read_exact(&mut preamble).unwrap();
        let hello = read_frame(&mut s).unwrap().unwrap();
        assert!(matches!(hello, Frame::Hello { .. }), "{hello:?}");
        write_frame(
            &mut s,
            &Frame::Welcome {
                version: VERSION,
                session_id: 7,
                banner: "fake".into(),
            },
        )
        .unwrap();
        let _request = read_frame(&mut s).unwrap().unwrap();
        write_frame(&mut s, &Frame::Goodbye).unwrap();
        s
    });

    let mut session = RemoteSession::connect(addr, "admin").unwrap();
    session.send("retrieve (L.n) from L in Log").unwrap();
    session.send("retrieve (L.n) from L in Log").unwrap();
    let results = session.drain().unwrap();
    assert_eq!(results.len(), 2);
    // Slot 1: the protocol violation, as a Net error (3001).
    assert_eq!(results[0].as_ref().unwrap_err().code(), 3001);
    // Slot 2 fails fast on the poisoned session — if it still read
    // the socket this test would hang, since the fake server sends
    // nothing more.
    let second = results[1].as_ref().unwrap_err();
    assert_eq!(second.code(), 3001);
    assert!(second.to_string().contains("poisoned"), "{second}");
    // Every later operation fails fast too: after a mid-group
    // failure the stream position is unknown, so the session must
    // not keep consuming leftover frames as fresh responses.
    let later = session.run("retrieve (L.n) from L in Log").unwrap_err();
    assert!(later.to_string().contains("poisoned"), "{later}");
    drop(session);
    drop(fake.join().unwrap());
}

#[test]
fn shutdown_is_orderly_and_idempotent() {
    let mut server = serve(AdmissionConfig::default());
    let mut session = RemoteSession::connect(server.addr(), "admin").unwrap();
    session
        .run(r#"append to Log (tag = "bye", n = 1)"#)
        .unwrap();
    server.shutdown();
    server.shutdown(); // idempotent
                       // The served port is gone: new connections fail outright.
    assert!(RemoteSession::connect(server.addr(), "admin").is_err());
}
