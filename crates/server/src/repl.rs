//! Wire replication: the [`RemoteStream`] a replica pulls batches
//! through, and the [`WireReplica`] runner behind `exodus-server
//! --replica-of`.
//!
//! A replication connection opens with the usual preamble but a
//! [`Frame::ReplSubscribe`] instead of `Hello`; after the primary's
//! [`Frame::ReplWelcome`] it is a pure poll/batch channel. The batch
//! payload is the `exodus_db::Batch` encoding, opaque to this layer —
//! the wire stream is nothing but an `exodus_db::ReplStream` whose
//! polls happen to cross a socket, so `Replica::connect` drives it
//! exactly like an in-process stream.

use std::io::{BufReader, BufWriter, Write as _};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use exodus_db::replication::{Batch, ReplStream, Replica, ReplicaOptions};
use exodus_db::{Database, DbError, DbResult};

use crate::protocol::{read_frame, write_frame, Frame, PREAMBLE, VERSION};

/// A replication subscription to a remote primary, implementing
/// [`ReplStream`] over EXOD/1.
///
/// Transport failures mark the stream broken; the next
/// [`ReplStream::poll`] transparently reconnects and re-subscribes
/// (the protocol is a stateless poll loop — the cursor and epoch
/// travel in every request, so a fresh connection resumes exactly).
pub struct RemoteStream {
    addr: String,
    conn: Option<Subscription>,
}

struct Subscription {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl RemoteStream {
    /// Subscribe to the primary at `addr` (host:port), verifying the
    /// handshake before returning.
    pub fn connect(addr: impl Into<String>) -> DbResult<RemoteStream> {
        let addr = addr.into();
        let conn = Subscription::open(&addr)?;
        Ok(RemoteStream {
            addr,
            conn: Some(conn),
        })
    }

    /// The primary's address this stream (re)connects to.
    pub fn addr(&self) -> &str {
        &self.addr
    }
}

impl Subscription {
    fn open(addr: &str) -> DbResult<Subscription> {
        let stream =
            TcpStream::connect(addr).map_err(|e| DbError::Net(format!("connect {addr}: {e}")))?;
        stream
            .set_nodelay(true)
            .map_err(|e| DbError::Net(format!("connect {addr}: {e}")))?;
        let reader = BufReader::new(
            stream
                .try_clone()
                .map_err(|e| DbError::Net(format!("connect {addr}: {e}")))?,
        );
        let mut writer = BufWriter::new(stream);
        writer
            .write_all(&PREAMBLE)
            .map_err(|e| DbError::Net(format!("subscribe handshake: {e}")))?;
        write_frame(&mut writer, &Frame::ReplSubscribe { version: VERSION })?;
        writer
            .flush()
            .map_err(|e| DbError::Net(format!("subscribe handshake: {e}")))?;
        let mut sub = Subscription { reader, writer };
        match sub.read_required()? {
            Frame::ReplWelcome { .. } => Ok(sub),
            Frame::Error { code, message } => Err(DbError::Remote { code, message }),
            other => Err(DbError::Net(format!(
                "expected ReplWelcome, primary sent {other:?}"
            ))),
        }
    }

    fn read_required(&mut self) -> DbResult<Frame> {
        read_frame(&mut self.reader)?
            .ok_or_else(|| DbError::Net("primary closed the subscription".into()))
    }

    fn poll(&mut self, after_lsn: u64, have_epoch: u64, max_records: usize) -> DbResult<Batch> {
        write_frame(
            &mut self.writer,
            &Frame::ReplPoll {
                after_lsn,
                have_epoch,
                max_records: u32::try_from(max_records).unwrap_or(u32::MAX),
            },
        )?;
        self.writer
            .flush()
            .map_err(|e| DbError::Net(format!("poll: {e}")))?;
        match self.read_required()? {
            Frame::ReplBatch { payload } => Batch::from_bytes(&payload),
            Frame::Error { code, message } => Err(DbError::Remote { code, message }),
            other => Err(DbError::Net(format!(
                "expected ReplBatch, primary sent {other:?}"
            ))),
        }
    }
}

impl ReplStream for RemoteStream {
    fn poll(&mut self, after_lsn: u64, have_epoch: u64, max_records: usize) -> DbResult<Batch> {
        if self.conn.is_none() {
            self.conn = Some(Subscription::open(&self.addr)?);
        }
        let sub = self.conn.as_mut().expect("just reconnected");
        let result = sub.poll(after_lsn, have_epoch, max_records);
        if let Err(e) = &result {
            // A relayed statement-level error leaves the stream in a
            // known state; anything else means the request/response
            // pairing can't be trusted — drop the connection and let
            // the next poll re-subscribe.
            if !matches!(e, DbError::Remote { .. }) {
                self.conn = None;
            }
        }
        result
    }
}

/// A wire replica: the database behind `exodus-server --replica-of` —
/// bootstrapped over a [`RemoteStream`], then kept caught up by a
/// background pump thread until shutdown.
pub struct WireReplica {
    db: Arc<Database>,
    stop: Arc<AtomicBool>,
    pump: Option<std::thread::JoinHandle<()>>,
}

impl WireReplica {
    /// Subscribe to the primary at `primary_addr`, replay to its
    /// current frontier (bootstrap blocks until caught up), and start
    /// the pump thread, which re-polls every `interval` once idle.
    pub fn spawn(
        primary_addr: impl Into<String>,
        path: impl Into<PathBuf>,
        opts: ReplicaOptions,
        interval: Duration,
    ) -> DbResult<WireReplica> {
        let stream = RemoteStream::connect(primary_addr)?;
        let mut replica = Replica::connect(path, Box::new(stream), opts)?;
        replica.pump_until_caught_up()?;
        let db = replica.database();
        let stop = Arc::new(AtomicBool::new(false));
        let pump = {
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("exodus-repl-pump".into())
                .spawn(move || {
                    while !stop.load(Ordering::Acquire) {
                        match replica.pump() {
                            // Applied a full batch: poll again at once,
                            // there may be more backlog.
                            Ok(n) if n > 0 => continue,
                            Ok(_) => {}
                            Err(e) => {
                                eprintln!(
                                    "exodus-server: replication pump: {e}; retrying in {}ms",
                                    interval.as_millis()
                                );
                            }
                        }
                        std::thread::park_timeout(interval);
                    }
                })
                .map_err(|e| DbError::Net(format!("spawning pump thread: {e}")))?
        };
        Ok(WireReplica {
            db,
            stop,
            pump: Some(pump),
        })
    }

    /// The replica database — serve it, read from it. Sessions on it
    /// refuse writes with the stable ReadOnly code (1007).
    pub fn database(&self) -> Arc<Database> {
        Arc::clone(&self.db)
    }

    /// Stop the pump thread and join it. Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(pump) = self.pump.take() {
            pump.thread().unpark();
            let _ = pump.join();
        }
    }
}

impl Drop for WireReplica {
    fn drop(&mut self) {
        self.shutdown();
    }
}
