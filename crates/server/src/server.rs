//! The serving loop: acceptor thread plus one service thread per
//! admitted connection.
//!
//! A single listener port serves two audiences, told apart by the
//! first four bytes of each connection:
//!
//! * `EXO\x01` — an EXOD/1 database client ([`crate::protocol`]);
//! * `GET ` — an HTTP metrics scraper, answered with one
//!   `text/plain; version=0.0.4` Prometheus exposition and closed.
//!
//! Shutdown is cooperative: service threads read with a short timeout
//! and re-check a shared stop flag on every timeout tick — between
//! frames *and* mid-frame, so a peer stalled after a partial frame
//! cannot pin a thread — and [`Server::shutdown`] wakes the blocked
//! acceptor with a throwaway self-connection, then joins every
//! thread — after it returns, nothing in the process still touches
//! the [`Database`].

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use exodus_db::{Database, DbError, DbResult, Response};

use crate::admission::{Admission, AdmissionConfig};
use crate::protocol::{
    explanation_to_frame, response_to_frame, write_frame, Frame, MAX_FRAME, PREAMBLE, VERSION,
    WIRE_BATCH_ROWS,
};
use crate::transport::{Conn, Transport};

/// How long a blocked service-thread read waits before re-checking the
/// stop flag.
const POLL_INTERVAL: Duration = Duration::from_millis(100);

/// How long a fresh connection may dawdle before its preamble and
/// handshake frames arrive.
const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(5);

/// Worker threads allowed beyond `max_connections`. Admission gate 1
/// runs only after the preamble arrives (HTTP scrapers must not be
/// charged against the connection limit), so the acceptor enforces
/// this separate, hard bound on total service threads *before*
/// spawning — without it a connection flood would create one OS
/// thread per connection regardless of the limit. The headroom covers
/// scrapers and clients legitimately mid-handshake.
const PREHANDSHAKE_HEADROOM: usize = 32;

/// A running server. Dropping the handle shuts the server down.
pub struct Server {
    addr: String,
    stop: Arc<AtomicBool>,
    /// `None` once shut down — dropping the last reference closes the
    /// listening socket, so post-shutdown connects are refused by the
    /// kernel instead of queueing in a dead backlog.
    transport: Option<Arc<dyn Transport>>,
    admission: Arc<Admission>,
    acceptor: Option<std::thread::JoinHandle<()>>,
    workers: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
}

impl Server {
    /// Start serving `db` over `transport` under `config`. Returns
    /// once the acceptor thread is running.
    pub fn spawn(
        db: Arc<Database>,
        transport: impl Transport + 'static,
        config: AdmissionConfig,
    ) -> DbResult<Server> {
        let addr = transport
            .local_addr()
            .map_err(|e| DbError::Net(format!("resolving listener address: {e}")))?;
        let transport: Arc<dyn Transport> = Arc::new(transport);
        let registry = db
            .metrics_registry()
            .unwrap_or_else(|| Arc::new(exodus_obs::MetricsRegistry::new()));
        let admission = Admission::new(config, registry);
        let stop = Arc::new(AtomicBool::new(false));
        let workers: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>> =
            Arc::new(Mutex::new(Vec::new()));

        let acceptor = {
            let transport = Arc::clone(&transport);
            let admission = Arc::clone(&admission);
            let stop = Arc::clone(&stop);
            let workers = Arc::clone(&workers);
            let live_workers = Arc::new(AtomicU64::new(0));
            std::thread::Builder::new()
                .name("exodus-acceptor".into())
                .spawn(move || loop {
                    let conn = match transport.accept() {
                        Ok(c) => c,
                        Err(_) if stop.load(Ordering::Acquire) => return,
                        Err(_) => continue,
                    };
                    if stop.load(Ordering::Acquire) {
                        return;
                    }
                    // Hard bound on live service threads, enforced
                    // before the spawn (see PREHANDSHAKE_HEADROOM).
                    let thread_bound =
                        (admission.config().max_connections + PREHANDSHAKE_HEADROOM) as u64;
                    if live_workers.load(Ordering::Acquire) >= thread_bound {
                        admission.metrics().connections_total.inc();
                        admission.metrics().shed_connections_total.inc();
                        drop(conn);
                        continue;
                    }
                    let worker_slot = WorkerSlot::claim(&live_workers);
                    let session_id = next_session_id();
                    let db = Arc::clone(&db);
                    let admission = Arc::clone(&admission);
                    let conn_stop = Arc::clone(&stop);
                    let worker = std::thread::Builder::new()
                        .name(format!("exodus-conn-{session_id}"))
                        .spawn(move || {
                            let _worker_slot = worker_slot;
                            serve_connection(conn, db, admission, conn_stop, session_id)
                        });
                    if let Ok(handle) = worker {
                        let mut pool = workers.lock().unwrap();
                        // Opportunistically reap finished threads so a
                        // long-lived server doesn't accumulate handles.
                        let (done, live): (Vec<_>, Vec<_>) =
                            pool.drain(..).partition(|h| h.is_finished());
                        for h in done {
                            let _ = h.join();
                        }
                        *pool = live;
                        pool.push(handle);
                    }
                })
                .map_err(|e| DbError::Net(format!("spawning acceptor: {e}")))?
        };

        Ok(Server {
            addr,
            stop,
            transport: Some(transport),
            admission,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The address clients should connect to (`host:port`).
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// The admission state, exposing the server metric families.
    pub fn admission(&self) -> &Arc<Admission> {
        &self.admission
    }

    /// Stop accepting, finish in-flight requests, and join every
    /// thread. Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        if self.stop.swap(true, Ordering::AcqRel) {
            return;
        }
        // Unblock the acceptor; the sacrificial connection sees the
        // stop flag and is dropped immediately.
        if let Some(transport) = &self.transport {
            let _ = transport.wake();
        }
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        let handles = std::mem::take(&mut *self.workers.lock().unwrap());
        for h in handles {
            let _ = h.join();
        }
        // Every thread holding a transport clone has been joined, so
        // this drops the last reference and closes the listener.
        self.transport = None;
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn next_session_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// RAII count of live service threads: claimed by the acceptor before
/// it spawns a worker, released when the worker exits (or when a
/// failed spawn drops the unstarted closure).
struct WorkerSlot(Arc<AtomicU64>);

impl WorkerSlot {
    fn claim(count: &Arc<AtomicU64>) -> WorkerSlot {
        count.fetch_add(1, Ordering::AcqRel);
        WorkerSlot(Arc::clone(count))
    }
}

impl Drop for WorkerSlot {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Buffers outgoing frames and writes them to the connection in large
/// chunks, flushing at request boundaries.
struct FrameSink<'a> {
    conn: &'a mut dyn Conn,
    buf: Vec<u8>,
    frames_out: u64,
}

impl<'a> FrameSink<'a> {
    const FLUSH_AT: usize = 256 << 10;

    fn new(conn: &'a mut dyn Conn) -> FrameSink<'a> {
        FrameSink {
            conn,
            buf: Vec::with_capacity(8 << 10),
            frames_out: 0,
        }
    }

    fn send(&mut self, frame: &Frame) -> DbResult<()> {
        write_frame(&mut self.buf, frame)?;
        self.frames_out += 1;
        if self.buf.len() >= Self::FLUSH_AT {
            self.flush()?;
        }
        Ok(())
    }

    fn flush(&mut self) -> DbResult<()> {
        if !self.buf.is_empty() {
            self.conn
                .write_all(&self.buf)
                .map_err(|e| DbError::Net(format!("writing response: {e}")))?;
            self.buf.clear();
        }
        Ok(())
    }
}

/// Read exactly `buf.len()` bytes, tolerating read timeouts.
///
/// The stop flag and `deadline` are checked on **every** timeout
/// tick, including mid-frame: a peer that sends half a frame and goes
/// silent must not be able to pin this thread past shutdown (or past
/// the handshake deadline). If nothing has arrived yet and
/// `allow_idle_eof` is set, a clean EOF, a raised stop flag, or an
/// exceeded deadline returns `Ok(false)` (orderly close); the same
/// conditions mid-frame are errors, since the peer is mid-message.
fn read_exact_interruptible(
    conn: &mut dyn Conn,
    buf: &mut [u8],
    stop: &AtomicBool,
    allow_idle_eof: bool,
    deadline: Option<Instant>,
) -> DbResult<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        match conn.read(&mut buf[filled..]) {
            Ok(0) => {
                if filled == 0 && allow_idle_eof {
                    return Ok(false);
                }
                return Err(DbError::Net("connection closed mid-frame".into()));
            }
            Ok(n) => filled += n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if stop.load(Ordering::Acquire) {
                    if filled == 0 && allow_idle_eof {
                        return Ok(false);
                    }
                    return Err(DbError::Net("server shutting down mid-frame".into()));
                }
                if deadline.is_some_and(|d| Instant::now() >= d) {
                    if filled == 0 && allow_idle_eof {
                        return Ok(false);
                    }
                    return Err(DbError::Net("read deadline exceeded mid-frame".into()));
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(DbError::Net(format!("reading frame: {e}"))),
        }
    }
    Ok(true)
}

/// Read one frame, returning `Ok(None)` on orderly close, shutdown, or
/// an exceeded `deadline` between frames. `deadline` bounds the whole
/// frame, prefix and body both — it is how the handshake timeout
/// covers the Hello frame, not just the preamble.
fn read_frame_interruptible(
    conn: &mut dyn Conn,
    stop: &AtomicBool,
    deadline: Option<Instant>,
) -> DbResult<Option<Frame>> {
    let mut len = [0u8; 4];
    if !read_exact_interruptible(conn, &mut len, stop, true, deadline)? {
        return Ok(None);
    }
    let len = u32::from_le_bytes(len);
    if len == 0 || len > MAX_FRAME {
        return Err(DbError::Net(format!("invalid frame length {len}")));
    }
    let mut body = vec![0u8; len as usize];
    read_exact_interruptible(conn, &mut body, stop, false, deadline)?;
    crate::protocol::decode_body(&body).map(Some)
}

fn serve_connection(
    mut conn: Box<dyn Conn>,
    db: Arc<Database>,
    admission: Arc<Admission>,
    stop: Arc<AtomicBool>,
    session_id: u64,
) {
    let _ = conn.set_read_timeout(Some(POLL_INTERVAL));
    let handshake_deadline = Some(Instant::now() + HANDSHAKE_TIMEOUT);
    let mut preamble = [0u8; 4];
    if !matches!(
        read_exact_interruptible(&mut *conn, &mut preamble, &stop, true, handshake_deadline),
        Ok(true)
    ) {
        return;
    }
    if preamble == *b"GET " {
        serve_http_scrape(&mut *conn, &admission);
        return;
    }
    if preamble != PREAMBLE {
        // Not a protocol error frame: the peer is not speaking EXOD/1,
        // so frames would be noise to it. Just close.
        return;
    }

    // The handshake deadline covers the opening frame too. Reading it
    // before admission keeps two properties: no connection slot is ever
    // held by a peer still mid-handshake, and replication subscriptions
    // (which announce themselves in this frame) never compete with
    // statement sessions for slots — a primary at its connection limit
    // must still feed its replicas.
    let opening = match read_frame_interruptible(&mut *conn, &stop, handshake_deadline) {
        Ok(Some(f)) => f,
        _ => return,
    };
    let (version, user) = match opening {
        Frame::Hello { version, user } => (version, user),
        Frame::ReplSubscribe { version } => {
            if version != VERSION {
                let _ = version_mismatch(&mut *conn, version);
                return;
            }
            serve_replication(&mut *conn, &db, &stop, session_id);
            return;
        }
        _ => return,
    };
    if version != VERSION {
        let _ = version_mismatch(&mut *conn, version);
        return;
    }

    // Gate 1: connection admission. Shed connections learn why.
    let slot = match admission.admit_connection() {
        Ok(slot) => slot,
        Err(e) => {
            let _ = write_frame(
                &mut WriteAdapter(&mut *conn),
                &Frame::Error {
                    code: e.code(),
                    message: e.to_string(),
                },
            );
            return;
        }
    };

    let mut session = db.session_as(&user);
    session.set_lock_timeout(Some(admission.config().lock_timeout));
    // Annotate the session's `sys.sessions` row: the remote peer flips
    // its kind to `wire`, and the state records that this connection
    // passed connection admission.
    session.set_peer(Some(conn.peer()));
    session.set_session_state("admitted");
    let _ = conn.set_read_timeout(Some(POLL_INTERVAL));

    let metrics = admission.metrics();
    {
        let mut sink = FrameSink::new(&mut *conn);
        let welcome = Frame::Welcome {
            version: VERSION,
            session_id,
            banner: format!("exodus-server EXOD/{VERSION}"),
        };
        if sink.send(&welcome).and_then(|()| sink.flush()).is_err() {
            return;
        }
        metrics.frames_out_total.add(sink.frames_out);
    }

    loop {
        let frame = match read_frame_interruptible(&mut *conn, &stop, None) {
            Ok(Some(f)) => f,
            Ok(None) => break,
            Err(_) => break,
        };
        metrics.frames_in_total.inc();
        if matches!(frame, Frame::Goodbye) {
            break;
        }
        let mut sink = FrameSink::new(&mut *conn);
        let ok = serve_request(&mut session, &admission, frame, &mut sink);
        let flushed = sink.flush();
        metrics.frames_out_total.add(sink.frames_out);
        if !ok || flushed.is_err() {
            break;
        }
    }
    drop(slot);
}

fn version_mismatch(conn: &mut dyn Conn, got: u16) -> DbResult<()> {
    write_frame(
        &mut WriteAdapter(conn),
        &Frame::Error {
            code: 3001,
            message: format!("server speaks EXOD/{VERSION}, client sent {got}"),
        },
    )
}

/// Serve a replication subscription: answer each [`Frame::ReplPoll`]
/// with one [`Frame::ReplBatch`] from the database's shared
/// [`exodus_db::Source`]. Runs outside statement admission — shipping
/// the log is how replicas *relieve* primary load, so it must not be
/// shed with it — but still honors the server's stop flag.
fn serve_replication(conn: &mut dyn Conn, db: &Arc<Database>, stop: &AtomicBool, session_id: u64) {
    let source = match db.replication_source() {
        Ok(s) => s,
        Err(e) => {
            let _ = write_frame(
                &mut WriteAdapter(conn),
                &Frame::Error {
                    code: e.code(),
                    message: e.to_string(),
                },
            );
            return;
        }
    };
    if write_frame(
        &mut WriteAdapter(conn),
        &Frame::ReplWelcome {
            version: VERSION,
            session_id,
        },
    )
    .is_err()
    {
        return;
    }
    loop {
        let frame = match read_frame_interruptible(conn, stop, None) {
            Ok(Some(f)) => f,
            _ => return,
        };
        let reply = match frame {
            Frame::ReplPoll {
                after_lsn,
                have_epoch,
                max_records,
            } => match source.poll(after_lsn, have_epoch, max_records as usize) {
                Ok(batch) => Frame::ReplBatch {
                    payload: batch.to_bytes(),
                },
                // A failed poll (e.g. a log read error) is reported and
                // the subscription stays open — the replica retries.
                Err(e) => Frame::Error {
                    code: e.code(),
                    message: e.to_string(),
                },
            },
            Frame::Goodbye => return,
            other => {
                // Protocol violation: answer and hang up.
                let _ = write_frame(
                    &mut WriteAdapter(conn),
                    &Frame::Error {
                        code: 3001,
                        message: format!(
                            "unexpected frame {other:?} on a replication subscription"
                        ),
                    },
                );
                return;
            }
        };
        if write_frame(&mut WriteAdapter(conn), &reply).is_err() {
            return;
        }
    }
}

/// Serve one request frame; returns `false` when the connection should
/// close (protocol violation or write failure).
fn serve_request(
    session: &mut exodus_db::Session,
    admission: &Arc<Admission>,
    frame: Frame,
    sink: &mut FrameSink<'_>,
) -> bool {
    // Gates 2 and 3: statement admission.
    let _slot = match admission.admit_statement() {
        Ok(slot) => slot,
        Err(e) => {
            return send_error(sink, &e) && sink.send(&Frame::Complete).is_ok();
        }
    };
    let started = Instant::now();
    let outcome = match frame {
        Frame::Run { src } => match session.run(&src) {
            Ok(responses) => responses.iter().try_for_each(|r| send_response(sink, r)),
            Err(e) => fail(sink, &e),
        },
        Frame::Explain { analyze, src } => {
            let result = if analyze {
                session.explain_analyze(&src)
            } else {
                session.explain(&src)
            };
            match result {
                Ok(e) => sink.send(&explanation_to_frame(&e)),
                Err(e) => fail(sink, &e),
            }
        }
        Frame::Observe { src } => match session.observe(&src) {
            Ok(obs) => sink.send(&response_to_frame(&Response::Observed(obs))),
            Err(e) => fail(sink, &e),
        },
        other => {
            // A server-to-client frame from a client is a protocol
            // violation: answer and hang up.
            let e = DbError::Net(format!("unexpected client frame {other:?}"));
            let _ = send_error(sink, &e);
            let _ = sink.send(&Frame::Complete);
            return false;
        }
    };
    admission
        .metrics()
        .statement_ns
        .observe(started.elapsed().as_nanos() as u64);
    outcome.is_ok() && sink.send(&Frame::Complete).is_ok()
}

/// Stream one [`Response`] as its frame sequence: result sets go out
/// header / batches / end, everything else as a single frame.
fn send_response(sink: &mut FrameSink<'_>, resp: &Response) -> DbResult<()> {
    match resp {
        Response::Rows(result) => {
            sink.send(&Frame::RowsHeader {
                columns: result.columns.clone(),
            })?;
            for batch in result.batches(WIRE_BATCH_ROWS) {
                sink.send(&Frame::RowBatch {
                    rows: batch.into_rows(),
                })?;
            }
            sink.send(&Frame::RowsEnd {
                total_rows: result.rows.len() as u64,
            })
        }
        other => sink.send(&response_to_frame(other)),
    }
}

fn send_error(sink: &mut FrameSink<'_>, e: &DbError) -> bool {
    fail(sink, e).is_ok()
}

fn fail(sink: &mut FrameSink<'_>, e: &DbError) -> DbResult<()> {
    sink.send(&Frame::Error {
        code: e.code(),
        message: e.to_string(),
    })
}

/// `io::Write` over a `dyn Conn` borrow (for one-off unbuffered
/// frames outside the sink's lifetime).
struct WriteAdapter<'a>(&'a mut dyn Conn);

impl std::io::Write for WriteAdapter<'_> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.write(buf)
    }
    fn flush(&mut self) -> std::io::Result<()> {
        self.0.flush()
    }
}

/// Answer an HTTP scraper. The `GET ` preamble has already been
/// consumed; read the rest of the request head, then respond with the
/// Prometheus exposition (for `/metrics`), the same snapshot as JSON
/// (for `/metrics.json`, or `/metrics` with `Accept: application/json`),
/// or a 404, and close.
fn serve_http_scrape(conn: &mut dyn Conn, admission: &Arc<Admission>) {
    let mut head = Vec::with_capacity(512);
    let mut byte = [0u8; 1];
    while head.len() < 8 << 10 && !head.ends_with(b"\r\n\r\n") {
        match conn.read(&mut byte) {
            Ok(1) => head.push(byte[0]),
            _ => break,
        }
    }
    let request_head = String::from_utf8_lossy(&head);
    let path = request_head.split_whitespace().next().unwrap_or("");
    let wants_json = path == "/metrics.json"
        || path.starts_with("/metrics.json?")
        || request_head.lines().any(|l| {
            let l = l.to_ascii_lowercase();
            l.starts_with("accept:") && l.contains("application/json")
        });
    let is_metrics = |p: &str| {
        p == "/metrics" || p.starts_with("/metrics?") || p == "/metrics.json"
            || p.starts_with("/metrics.json?")
    };
    let (status, content_type, body) = if is_metrics(path) {
        admission.metrics().metrics_scrapes_total.inc();
        let snapshot = admission.metrics().registry.snapshot();
        if wants_json {
            ("200 OK", "application/json; charset=utf-8", snapshot.to_json())
        } else {
            (
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                snapshot.to_prometheus(),
            )
        }
    } else {
        (
            "404 Not Found",
            "text/plain; version=0.0.4; charset=utf-8",
            format!("no route for {path}\n"),
        )
    };
    let response = format!(
        "HTTP/1.1 {status}\r\n\
         Content-Type: {content_type}\r\n\
         Content-Length: {}\r\n\
         Connection: close\r\n\r\n{body}",
        body.len(),
    );
    let _ = conn.write_all(response.as_bytes());
    let _ = conn.flush();
}
