//! The `exodus-server` binary: serve an EXTRA/EXCESS database over
//! EXOD/1, with `/metrics` on the same port.
//!
//! ```text
//! exodus-server [--addr HOST:PORT] [--path DIR | --in-memory]
//!               [--durability none|buffered|fsync]
//!               [--max-connections N] [--queue-depth N]
//!               [--shed-p99-ms MS] [--lock-timeout-ms MS]
//! ```

use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use exodus_db::{Database, Durability};
use exodus_server::{AdmissionConfig, Server, TcpTransport};

fn usage() -> ! {
    eprintln!(
        "usage: exodus-server [--addr HOST:PORT] [--path DIR | --in-memory]\n\
         \x20                    [--durability none|buffered|fsync]\n\
         \x20                    [--max-connections N] [--queue-depth N]\n\
         \x20                    [--shed-p99-ms MS] [--lock-timeout-ms MS]"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut addr = "127.0.0.1:7044".to_string();
    let mut path: Option<String> = None;
    let mut durability = Durability::Fsync;
    let mut config = AdmissionConfig::default();

    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut value = |name: &str| {
            argv.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                usage()
            })
        };
        match flag.as_str() {
            "--addr" => addr = value("--addr"),
            "--path" => path = Some(value("--path")),
            "--in-memory" => path = None,
            "--durability" => {
                durability = match value("--durability").as_str() {
                    "none" => Durability::None,
                    "buffered" => Durability::Buffered,
                    "fsync" => Durability::Fsync,
                    other => {
                        eprintln!("unknown durability level {other:?}");
                        usage()
                    }
                }
            }
            "--max-connections" => {
                config.max_connections = parse(&value("--max-connections"), "--max-connections")
            }
            "--queue-depth" => config.queue_depth = parse(&value("--queue-depth"), "--queue-depth"),
            "--shed-p99-ms" => {
                let ms: u64 = parse(&value("--shed-p99-ms"), "--shed-p99-ms");
                config.shed_p99_ns = Some(ms * 1_000_000);
            }
            "--lock-timeout-ms" => {
                let ms: u64 = parse(&value("--lock-timeout-ms"), "--lock-timeout-ms");
                config.lock_timeout = Duration::from_millis(ms);
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other:?}");
                usage()
            }
        }
    }

    let db = match &path {
        Some(dir) => match Database::builder().path(dir).durability(durability).build() {
            Ok(db) => db,
            Err(e) => {
                eprintln!("exodus-server: opening {dir}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => Database::in_memory(),
    };
    if let Some(report) = db.recovery() {
        eprintln!("exodus-server: recovery: {report:?}");
    }

    let transport = match TcpTransport::bind(&addr) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("exodus-server: binding {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut server = match Server::spawn(db, transport, config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("exodus-server: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "exodus-server: serving EXOD/1 and /metrics on {} ({})",
        server.addr(),
        match &path {
            Some(dir) => format!("database at {dir}"),
            None => "in-memory database".to_string(),
        }
    );

    // Park until SIGINT/SIGTERM-ish: without signal-handling crates we
    // watch for stdin EOF (works under CI harnesses and `kill` both,
    // since the process dies on the signal anyway).
    let stop = Arc::new(AtomicBool::new(false));
    let waiter = Arc::clone(&stop);
    std::thread::spawn(move || {
        let mut sink = String::new();
        while std::io::stdin().read_line(&mut sink).is_ok_and(|n| n > 0) {
            sink.clear();
        }
        waiter.store(true, Ordering::Release);
    });
    while !stop.load(Ordering::Acquire) {
        std::thread::sleep(Duration::from_millis(200));
    }
    eprintln!("exodus-server: stdin closed; shutting down");
    server.shutdown();
    ExitCode::SUCCESS
}

fn parse<T: std::str::FromStr>(text: &str, flag: &str) -> T {
    text.parse().unwrap_or_else(|_| {
        eprintln!("{flag}: cannot parse {text:?}");
        usage()
    })
}
