//! The `exodus-server` binary: serve an EXTRA/EXCESS database over
//! EXOD/1, with `/metrics` on the same port.
//!
//! ```text
//! exodus-server [--addr HOST:PORT] [--path DIR | --in-memory]
//!               [--durability none|buffered|fsync]
//!               [--max-connections N] [--queue-depth N]
//!               [--shed-p99-ms MS] [--lock-timeout-ms MS]
//!               [--replica-of HOST:PORT [--max-replica-lag N]
//!                [--poll-interval-ms MS]]
//! ```
//!
//! With `--replica-of`, the server bootstraps a read-only replica of
//! the primary at that address into `--path` and serves it: retrieves
//! run at the replay horizon, writes are refused with code 1007, and
//! reads shed with code 2004 when replay lag exceeds
//! `--max-replica-lag` records. See `docs/REPLICATION.md`.

use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use exodus_db::{Database, Durability, ReplicaOptions};
use exodus_server::{AdmissionConfig, Server, TcpTransport, WireReplica};

fn usage() -> ! {
    eprintln!(
        "usage: exodus-server [--addr HOST:PORT] [--path DIR | --in-memory]\n\
         \x20                    [--durability none|buffered|fsync]\n\
         \x20                    [--max-connections N] [--queue-depth N]\n\
         \x20                    [--shed-p99-ms MS] [--lock-timeout-ms MS]\n\
         \x20                    [--replica-of HOST:PORT [--max-replica-lag N]\n\
         \x20                     [--poll-interval-ms MS]]"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut addr = "127.0.0.1:7044".to_string();
    let mut path: Option<String> = None;
    let mut durability = Durability::Fsync;
    let mut config = AdmissionConfig::default();
    let mut replica_of: Option<String> = None;
    let mut max_replica_lag: Option<u64> = None;
    let mut poll_interval = Duration::from_millis(100);

    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut value = |name: &str| {
            argv.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                usage()
            })
        };
        match flag.as_str() {
            "--addr" => addr = value("--addr"),
            "--path" => path = Some(value("--path")),
            "--in-memory" => path = None,
            "--durability" => {
                durability = match value("--durability").as_str() {
                    "none" => Durability::None,
                    "buffered" => Durability::Buffered,
                    "fsync" => Durability::Fsync,
                    other => {
                        eprintln!("unknown durability level {other:?}");
                        usage()
                    }
                }
            }
            "--max-connections" => {
                config.max_connections = parse(&value("--max-connections"), "--max-connections")
            }
            "--queue-depth" => config.queue_depth = parse(&value("--queue-depth"), "--queue-depth"),
            "--shed-p99-ms" => {
                let ms: u64 = parse(&value("--shed-p99-ms"), "--shed-p99-ms");
                config.shed_p99_ns = Some(ms * 1_000_000);
            }
            "--lock-timeout-ms" => {
                let ms: u64 = parse(&value("--lock-timeout-ms"), "--lock-timeout-ms");
                config.lock_timeout = Duration::from_millis(ms);
            }
            "--replica-of" => replica_of = Some(value("--replica-of")),
            "--max-replica-lag" => {
                max_replica_lag = Some(parse(&value("--max-replica-lag"), "--max-replica-lag"))
            }
            "--poll-interval-ms" => {
                let ms: u64 = parse(&value("--poll-interval-ms"), "--poll-interval-ms");
                poll_interval = Duration::from_millis(ms);
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other:?}");
                usage()
            }
        }
    }

    let (db, mut replica) = if let Some(primary) = &replica_of {
        let Some(dir) = &path else {
            eprintln!("exodus-server: --replica-of needs --path for the replica's local volume");
            return ExitCode::FAILURE;
        };
        let opts = ReplicaOptions {
            durability,
            max_lag: max_replica_lag,
            ..ReplicaOptions::default()
        };
        match WireReplica::spawn(primary.clone(), dir, opts, poll_interval) {
            Ok(r) => (r.database(), Some(r)),
            Err(e) => {
                eprintln!("exodus-server: replicating {primary}: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        let db = match &path {
            Some(dir) => match Database::builder().path(dir).durability(durability).build() {
                Ok(db) => db,
                Err(e) => {
                    eprintln!("exodus-server: opening {dir}: {e}");
                    return ExitCode::FAILURE;
                }
            },
            None => Database::in_memory(),
        };
        (db, None)
    };
    if let Some(report) = db.recovery() {
        eprintln!("exodus-server: recovery: {report:?}");
    }

    let transport = match TcpTransport::bind(&addr) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("exodus-server: binding {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut server = match Server::spawn(db, transport, config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("exodus-server: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "exodus-server: serving EXOD/1 and /metrics on {} ({})",
        server.addr(),
        match (&replica_of, &path) {
            (Some(primary), Some(dir)) =>
                format!("read-only replica of {primary}, local volume at {dir}"),
            (_, Some(dir)) => format!("database at {dir}"),
            _ => "in-memory database".to_string(),
        }
    );

    // Park until SIGINT/SIGTERM-ish: without signal-handling crates we
    // watch for stdin EOF (works under CI harnesses and `kill` both,
    // since the process dies on the signal anyway).
    let stop = Arc::new(AtomicBool::new(false));
    let waiter = Arc::clone(&stop);
    std::thread::spawn(move || {
        let mut sink = String::new();
        while std::io::stdin().read_line(&mut sink).is_ok_and(|n| n > 0) {
            sink.clear();
        }
        waiter.store(true, Ordering::Release);
    });
    while !stop.load(Ordering::Acquire) {
        std::thread::sleep(Duration::from_millis(200));
    }
    eprintln!("exodus-server: stdin closed; shutting down");
    server.shutdown();
    if let Some(replica) = replica.as_mut() {
        replica.shutdown();
    }
    ExitCode::SUCCESS
}

fn parse<T: std::str::FromStr>(text: &str, flag: &str) -> T {
    text.parse().unwrap_or_else(|_| {
        eprintln!("{flag}: cannot parse {text:?}");
        usage()
    })
}
