//! # exodus-server
//!
//! The network face of the EXTRA/EXCESS database: a framed wire
//! protocol (EXOD/1), a serving loop with admission control, and the
//! [`RemoteSession`] client that implements the same
//! [`Client`](exodus_db::Client) trait as the in-process session — so
//! code written against the trait runs unchanged locally or over a
//! socket.
//!
//! Layers, bottom up:
//!
//! * [`protocol`] — the EXOD/1 frame codec: length-prefixed frames,
//!   values in the storage engine's own encoding, stable error codes.
//! * [`transport`] — the [`Transport`]/[`Conn`] seam; the default is a
//!   blocking TCP listener with a thread per connection.
//! * [`admission`] — connection limits, a bounded statement queue, and
//!   a latency governor that sheds load (retryable code 2002) instead
//!   of queueing without bound.
//! * [`server`] — the acceptor and per-connection serving loop, plus
//!   HTTP `/metrics` Prometheus exposition on the same port.
//! * [`client`] — [`RemoteSession`], with pipelining.
//! * [`repl`] — wire replication: [`RemoteStream`] (a replica's
//!   poll/batch subscription) and [`WireReplica`] (the pump behind
//!   `exodus-server --replica-of`).
//!
//! See `docs/SERVER.md` for the wire grammar, `docs/REPLICATION.md`
//! for the replication protocol, and `docs/ERRORS.md` for the
//! error-code table.
//!
//! # Quickstart
//!
//! ```
//! use exodus_db::{Client, Database};
//! use exodus_server::{AdmissionConfig, RemoteSession, Server, TcpTransport};
//!
//! let db = Database::in_memory();
//! let transport = TcpTransport::bind("127.0.0.1:0").unwrap();
//! let server = Server::spawn(db, transport, AdmissionConfig::default()).unwrap();
//!
//! let mut session = RemoteSession::connect(server.addr(), "admin").unwrap();
//! session.run(r#"
//!     define type Person (name: varchar, age: int4);
//!     create { own ref Person } People;
//!     append to People (name = "ann", age = 30);
//! "#).unwrap();
//! let result = session.query(
//!     "retrieve (P.name) from P in People").unwrap();
//! assert_eq!(result.rows.len(), 1);
//! ```

#![deny(rustdoc::broken_intra_doc_links)]

pub mod admission;
pub mod client;
pub mod protocol;
pub mod repl;
pub mod server;
pub mod transport;

pub use admission::{Admission, AdmissionConfig, ServerMetrics};
pub use client::RemoteSession;
pub use protocol::{Frame, MAX_FRAME, PREAMBLE, VERSION, WIRE_BATCH_ROWS};
pub use repl::{RemoteStream, WireReplica};
pub use server::Server;
pub use transport::{Conn, TcpTransport, Transport};
