//! Connection transport, kept behind a trait so the serving loop never
//! names a socket type.
//!
//! The default [`TcpTransport`] is a blocking `std::net` listener with
//! one service thread per admitted connection — the classic
//! process-per-connection Postgres shape, minus the fork. The trait is
//! the seam where an epoll/thread-per-core reactor (or an in-process
//! loopback for tests) slots in without touching the protocol or
//! admission layers: a `Transport` yields [`Conn`]s, and everything
//! above it only reads, writes, and sets read timeouts.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// One bidirectional byte stream between a client and the server.
pub trait Conn: Read + Write + Send {
    /// Bound blocking reads so service threads can notice shutdown;
    /// `None` blocks forever.
    fn set_read_timeout(&self, limit: Option<Duration>) -> std::io::Result<()>;

    /// Peer description for diagnostics (address, or a synthetic name).
    fn peer(&self) -> String;
}

/// A listening endpoint producing [`Conn`]s.
pub trait Transport: Send + Sync {
    /// Block until the next connection arrives.
    fn accept(&self) -> std::io::Result<Box<dyn Conn>>;

    /// The bound address, rendered (`host:port` for TCP).
    fn local_addr(&self) -> std::io::Result<String>;

    /// Open a throwaway connection to this endpoint from the local
    /// process (used to wake a blocked `accept` during shutdown).
    fn wake(&self) -> std::io::Result<()>;
}

/// The default transport: a blocking TCP listener.
pub struct TcpTransport {
    listener: TcpListener,
}

impl TcpTransport {
    /// Bind to `addr` (use port 0 for an ephemeral test port).
    pub fn bind(addr: impl ToSocketAddrs) -> std::io::Result<TcpTransport> {
        Ok(TcpTransport {
            listener: TcpListener::bind(addr)?,
        })
    }
}

impl Transport for TcpTransport {
    fn accept(&self) -> std::io::Result<Box<dyn Conn>> {
        let (stream, _) = self.listener.accept()?;
        // Frames are small and latency-sensitive; leaving Nagle on
        // costs a round trip per pipelined request.
        stream.set_nodelay(true)?;
        Ok(Box::new(stream))
    }

    fn local_addr(&self) -> std::io::Result<String> {
        self.listener.local_addr().map(|a| a.to_string())
    }

    fn wake(&self) -> std::io::Result<()> {
        let addr = self.listener.local_addr()?;
        TcpStream::connect(addr).map(|_| ())
    }
}

impl Conn for TcpStream {
    fn set_read_timeout(&self, limit: Option<Duration>) -> std::io::Result<()> {
        TcpStream::set_read_timeout(self, limit)
    }

    fn peer(&self) -> String {
        self.peer_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| "<unknown>".into())
    }
}
