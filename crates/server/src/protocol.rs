//! The EXOD/1 framed wire protocol.
//!
//! Everything on the wire is a **frame**: a little-endian `u32` payload
//! length, then the payload — one type byte followed by a type-specific
//! body. Bodies reuse the storage crate's [`ByteWriter`]/[`ByteReader`]
//! primitives (varints, length-prefixed strings) and values travel in
//! the same self-describing encoding heap records use
//! (`extra_model::valueio`), so a value round-trips the wire bit-exact.
//!
//! A connection opens with a 4-byte preamble (`EXO\x01`) that lets the
//! server tell database clients from HTTP scrapers on one port, then a
//! [`Frame::Hello`]. After the server's [`Frame::Welcome`], the client
//! sends request frames (`Run`, `Explain`, `Observe`) and may
//! **pipeline** — send many requests before reading any response. The
//! server answers each request with zero or more response frames
//! terminated by [`Frame::Complete`], in request order. Statement
//! errors arrive as [`Frame::Error`] carrying the stable `DbError`
//! code (see `docs/ERRORS.md`); they end the current request's
//! responses but not the connection. Large results stream: one
//! [`Frame::RowsHeader`], then a [`Frame::RowBatch`] per engine batch,
//! then [`Frame::RowsEnd`].
//!
//! The full grammar is specified in `docs/SERVER.md`.

use std::io::{Read, Write};

use exodus_db::{DbError, DbResult, Explanation, Observation, QueryResult, Response};
use exodus_storage::encoding::{ByteReader, ByteWriter};
use extra_model::{valueio, Value};

/// Protocol preamble: distinguishes EXOD/1 connections from HTTP
/// scrapers sharing the listener. The trailing byte is the protocol
/// major version.
pub const PREAMBLE: [u8; 4] = *b"EXO\x01";

/// Protocol version spoken by this build.
pub const VERSION: u16 = 1;

/// Hard cap on a single frame's payload (guards the length prefix
/// against garbage and a hostile peer against unbounded allocation).
pub const MAX_FRAME: u32 = 64 << 20;

/// Rows per [`Frame::RowBatch`] the server emits.
pub const WIRE_BATCH_ROWS: usize = 1024;

const T_HELLO: u8 = 0x01;
const T_RUN: u8 = 0x02;
const T_EXPLAIN: u8 = 0x03;
const T_OBSERVE: u8 = 0x04;
const T_GOODBYE: u8 = 0x0F;
const T_REPL_SUBSCRIBE: u8 = 0x10;
const T_REPL_POLL: u8 = 0x11;
const T_WELCOME: u8 = 0x81;
const T_DONE: u8 = 0x82;
const T_ROWS_HEADER: u8 = 0x83;
const T_ROW_BATCH: u8 = 0x84;
const T_ROWS_END: u8 = 0x85;
const T_EXPLANATION: u8 = 0x86;
const T_OBSERVATION: u8 = 0x87;
const T_ROWS_INLINE: u8 = 0x88;
const T_COMPLETE: u8 = 0x8D;
const T_ERROR: u8 = 0x8E;
const T_REPL_WELCOME: u8 = 0x8F;
const T_REPL_BATCH: u8 = 0x90;

/// One protocol frame, decoded.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Client → server: open a session as `user`.
    Hello {
        /// Protocol version the client speaks.
        version: u16,
        /// User to open the session as (name-trust, like early
        /// Postgres `trust` auth; see docs/SERVER.md §Handshake).
        user: String,
    },
    /// Client → server: execute statements (the `Client::run` verb).
    Run {
        /// EXCESS source, possibly multiple statements.
        src: String,
    },
    /// Client → server: explain (optionally analyze) a statement.
    Explain {
        /// Execute with profiling (`explain analyze`) instead of
        /// planning only.
        analyze: bool,
        /// EXCESS source.
        src: String,
    },
    /// Client → server: observe a statement's metric activity.
    Observe {
        /// EXCESS source.
        src: String,
    },
    /// Client → server: orderly shutdown of the connection.
    Goodbye,
    /// Replica → primary, instead of [`Frame::Hello`]: this connection
    /// is a replication subscription, not a statement session. The
    /// server answers [`Frame::ReplWelcome`] (or [`Frame::Error`]) and
    /// the connection speaks only poll/batch afterwards.
    ReplSubscribe {
        /// Protocol version the replica speaks.
        version: u16,
    },
    /// Replica → primary: request the next batch after `after_lsn`.
    ReplPoll {
        /// The replica's local log frontier (its replay cursor).
        after_lsn: u64,
        /// The catalog-image epoch the replica already holds (0 for
        /// none); a differing primary epoch ships a fresh image.
        have_epoch: u64,
        /// Cap on WAL records in the reply.
        max_records: u32,
    },
    /// Primary → replica: the subscription is open.
    ReplWelcome {
        /// Protocol version the primary speaks.
        version: u16,
        /// Server-assigned session id (diagnostics only).
        session_id: u64,
    },
    /// Primary → replica: one replication batch — the
    /// `exodus_db::Batch` encoding (epoch, durable frontier, optional
    /// catalog image, raw WAL frames) carried opaquely.
    ReplBatch {
        /// `Batch::to_bytes` payload, decoded with `Batch::from_bytes`.
        payload: Vec<u8>,
    },
    /// Server → client: the session is open.
    Welcome {
        /// Protocol version the server speaks.
        version: u16,
        /// Server-assigned session id (diagnostics only).
        session_id: u64,
        /// Human-readable server banner.
        banner: String,
    },
    /// Server → client: a DDL/update acknowledgment.
    Done {
        /// The acknowledgment message.
        message: String,
    },
    /// Server → client: a result set begins; column names follow.
    RowsHeader {
        /// Output column names.
        columns: Vec<String>,
    },
    /// Server → client: one batch of result rows.
    RowBatch {
        /// Row-major values; each row has one value per header column.
        rows: Vec<Vec<Value>>,
    },
    /// Server → client: the result set is complete.
    RowsEnd {
        /// Total rows sent across all batches.
        total_rows: u64,
    },
    /// Server → client: an `explain [analyze]` report.
    Explanation {
        /// The physical plan, rendered.
        plan: String,
        /// The rendered execution profile (`explain analyze` only).
        /// Profiles cross the wire in display form; the structured
        /// `QueryProfile` stays server-side.
        profile: Option<String>,
    },
    /// Server → client: an `observe <stmt>` report with its inner
    /// response nested in the body.
    Observation {
        /// Wall-clock duration of the observed statement.
        elapsed_ns: u64,
        /// Counter deltas, sorted by name, zeros dropped.
        counters: Vec<(String, u64)>,
        /// The observed statement's own response.
        inner: Box<Frame>,
    },
    /// Server → client (nested inside [`Frame::Observation`] only): a
    /// complete result set in one frame — header and rows together, so
    /// an observed retrieve round-trips with its column names.
    RowsInline {
        /// Output column names.
        columns: Vec<String>,
        /// Row-major values.
        rows: Vec<Vec<Value>>,
    },
    /// Server → client: all responses for one request were sent.
    Complete,
    /// Server → client: the request failed. Ends the request's
    /// responses (a `Complete` still follows) but not the connection.
    Error {
        /// Stable error code (`DbError::code`, docs/ERRORS.md).
        code: u16,
        /// Rendered message.
        message: String,
    },
}

fn net_err(m: impl Into<String>) -> DbError {
    DbError::Net(m.into())
}

fn io_err(context: &str, e: std::io::Error) -> DbError {
    DbError::Net(format!("{context}: {e}"))
}

/// Write `frame` to `w` (unbuffered — callers wrap `w` in a
/// `BufWriter` and flush at request/response boundaries).
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> DbResult<()> {
    let mut body = ByteWriter::new();
    encode_frame(&mut body, frame);
    let body = body.into_bytes();
    let len = u32::try_from(body.len()).map_err(|_| net_err("frame over 4 GiB"))?;
    if len > MAX_FRAME {
        return Err(net_err(format!("frame of {len} bytes exceeds MAX_FRAME")));
    }
    w.write_all(&len.to_le_bytes())
        .and_then(|()| w.write_all(&body))
        .map_err(|e| io_err("writing frame", e))
}

/// Read one frame from `r`. An EOF **before the length prefix** yields
/// `Ok(None)` (orderly close); EOF mid-frame is an error.
pub fn read_frame(r: &mut impl Read) -> DbResult<Option<Frame>> {
    let mut len = [0u8; 4];
    match r.read_exact(&mut len) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(io_err("reading frame length", e)),
    }
    let len = u32::from_le_bytes(len);
    if len == 0 || len > MAX_FRAME {
        return Err(net_err(format!("invalid frame length {len}")));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)
        .map_err(|e| io_err("reading frame body", e))?;
    decode_frame(&mut ByteReader::new(&body)).map(Some)
}

/// Decode a frame body whose length prefix has already been consumed
/// (the server's interruptible reader peels the prefix itself so it
/// can poll a stop flag between frames).
pub(crate) fn decode_body(body: &[u8]) -> DbResult<Frame> {
    decode_frame(&mut ByteReader::new(body))
}

fn encode_frame(w: &mut ByteWriter, frame: &Frame) {
    match frame {
        Frame::Hello { version, user } => {
            w.put_u8(T_HELLO);
            w.put_u16(*version);
            w.put_str(user);
        }
        Frame::Run { src } => {
            w.put_u8(T_RUN);
            w.put_str(src);
        }
        Frame::Explain { analyze, src } => {
            w.put_u8(T_EXPLAIN);
            w.put_u8(*analyze as u8);
            w.put_str(src);
        }
        Frame::Observe { src } => {
            w.put_u8(T_OBSERVE);
            w.put_str(src);
        }
        Frame::Goodbye => w.put_u8(T_GOODBYE),
        Frame::ReplSubscribe { version } => {
            w.put_u8(T_REPL_SUBSCRIBE);
            w.put_u16(*version);
        }
        Frame::ReplPoll {
            after_lsn,
            have_epoch,
            max_records,
        } => {
            w.put_u8(T_REPL_POLL);
            w.put_u64(*after_lsn);
            w.put_u64(*have_epoch);
            w.put_u32(*max_records);
        }
        Frame::ReplWelcome {
            version,
            session_id,
        } => {
            w.put_u8(T_REPL_WELCOME);
            w.put_u16(*version);
            w.put_u64(*session_id);
        }
        Frame::ReplBatch { payload } => {
            w.put_u8(T_REPL_BATCH);
            w.put_bytes(payload);
        }
        Frame::Welcome {
            version,
            session_id,
            banner,
        } => {
            w.put_u8(T_WELCOME);
            w.put_u16(*version);
            w.put_u64(*session_id);
            w.put_str(banner);
        }
        Frame::Done { message } => {
            w.put_u8(T_DONE);
            w.put_str(message);
        }
        Frame::RowsHeader { columns } => {
            w.put_u8(T_ROWS_HEADER);
            w.put_varint(columns.len() as u64);
            for c in columns {
                w.put_str(c);
            }
        }
        Frame::RowBatch { rows } => {
            w.put_u8(T_ROW_BATCH);
            w.put_varint(rows.len() as u64);
            for row in rows {
                w.put_varint(row.len() as u64);
                for v in row {
                    w.put_bytes(&valueio::to_bytes(v));
                }
            }
        }
        Frame::RowsEnd { total_rows } => {
            w.put_u8(T_ROWS_END);
            w.put_u64(*total_rows);
        }
        Frame::Explanation { plan, profile } => {
            w.put_u8(T_EXPLANATION);
            w.put_str(plan);
            match profile {
                Some(p) => {
                    w.put_u8(1);
                    w.put_str(p);
                }
                None => w.put_u8(0),
            }
        }
        Frame::Observation {
            elapsed_ns,
            counters,
            inner,
        } => {
            w.put_u8(T_OBSERVATION);
            w.put_u64(*elapsed_ns);
            w.put_varint(counters.len() as u64);
            for (name, delta) in counters {
                w.put_str(name);
                w.put_u64(*delta);
            }
            encode_frame(w, inner);
        }
        Frame::RowsInline { columns, rows } => {
            w.put_u8(T_ROWS_INLINE);
            w.put_varint(columns.len() as u64);
            for c in columns {
                w.put_str(c);
            }
            w.put_varint(rows.len() as u64);
            for row in rows {
                w.put_varint(row.len() as u64);
                for v in row {
                    w.put_bytes(&valueio::to_bytes(v));
                }
            }
        }
        Frame::Complete => w.put_u8(T_COMPLETE),
        Frame::Error { code, message } => {
            w.put_u8(T_ERROR);
            w.put_u16(*code);
            w.put_str(message);
        }
    }
}

fn decode_frame(r: &mut ByteReader<'_>) -> DbResult<Frame> {
    let bad = |e: exodus_storage::StorageError| net_err(format!("malformed frame: {e}"));
    let ty = r.get_u8().map_err(bad)?;
    let frame = match ty {
        T_HELLO => Frame::Hello {
            version: r.get_u16().map_err(bad)?,
            user: r.get_str().map_err(bad)?.to_string(),
        },
        T_RUN => Frame::Run {
            src: r.get_str().map_err(bad)?.to_string(),
        },
        T_EXPLAIN => Frame::Explain {
            analyze: r.get_u8().map_err(bad)? != 0,
            src: r.get_str().map_err(bad)?.to_string(),
        },
        T_OBSERVE => Frame::Observe {
            src: r.get_str().map_err(bad)?.to_string(),
        },
        T_GOODBYE => Frame::Goodbye,
        T_REPL_SUBSCRIBE => Frame::ReplSubscribe {
            version: r.get_u16().map_err(bad)?,
        },
        T_REPL_POLL => Frame::ReplPoll {
            after_lsn: r.get_u64().map_err(bad)?,
            have_epoch: r.get_u64().map_err(bad)?,
            max_records: r.get_u32().map_err(bad)?,
        },
        T_REPL_WELCOME => Frame::ReplWelcome {
            version: r.get_u16().map_err(bad)?,
            session_id: r.get_u64().map_err(bad)?,
        },
        T_REPL_BATCH => Frame::ReplBatch {
            payload: r.get_bytes().map_err(bad)?.to_vec(),
        },
        T_WELCOME => Frame::Welcome {
            version: r.get_u16().map_err(bad)?,
            session_id: r.get_u64().map_err(bad)?,
            banner: r.get_str().map_err(bad)?.to_string(),
        },
        T_DONE => Frame::Done {
            message: r.get_str().map_err(bad)?.to_string(),
        },
        T_ROWS_HEADER => {
            let n = r.get_varint().map_err(bad)? as usize;
            let mut columns = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                columns.push(r.get_str().map_err(bad)?.to_string());
            }
            Frame::RowsHeader { columns }
        }
        T_ROW_BATCH => {
            let n = r.get_varint().map_err(bad)? as usize;
            let mut rows = Vec::with_capacity(n.min(WIRE_BATCH_ROWS));
            for _ in 0..n {
                let cols = r.get_varint().map_err(bad)? as usize;
                let mut row = Vec::with_capacity(cols.min(1024));
                for _ in 0..cols {
                    let bytes = r.get_bytes().map_err(bad)?;
                    row.push(
                        valueio::from_bytes(bytes)
                            .map_err(|e| net_err(format!("malformed wire value: {e}")))?,
                    );
                }
                rows.push(row);
            }
            Frame::RowBatch { rows }
        }
        T_ROWS_END => Frame::RowsEnd {
            total_rows: r.get_u64().map_err(bad)?,
        },
        T_EXPLANATION => {
            let plan = r.get_str().map_err(bad)?.to_string();
            let profile = match r.get_u8().map_err(bad)? {
                0 => None,
                _ => Some(r.get_str().map_err(bad)?.to_string()),
            };
            Frame::Explanation { plan, profile }
        }
        T_OBSERVATION => {
            let elapsed_ns = r.get_u64().map_err(bad)?;
            let n = r.get_varint().map_err(bad)? as usize;
            let mut counters = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                let name = r.get_str().map_err(bad)?.to_string();
                counters.push((name, r.get_u64().map_err(bad)?));
            }
            Frame::Observation {
                elapsed_ns,
                counters,
                inner: Box::new(decode_frame(r)?),
            }
        }
        T_ROWS_INLINE => {
            let ncols = r.get_varint().map_err(bad)? as usize;
            let mut columns = Vec::with_capacity(ncols.min(1024));
            for _ in 0..ncols {
                columns.push(r.get_str().map_err(bad)?.to_string());
            }
            let n = r.get_varint().map_err(bad)? as usize;
            let mut rows = Vec::with_capacity(n.min(WIRE_BATCH_ROWS));
            for _ in 0..n {
                let cols = r.get_varint().map_err(bad)? as usize;
                let mut row = Vec::with_capacity(cols.min(1024));
                for _ in 0..cols {
                    let bytes = r.get_bytes().map_err(bad)?;
                    row.push(
                        valueio::from_bytes(bytes)
                            .map_err(|e| net_err(format!("malformed wire value: {e}")))?,
                    );
                }
                rows.push(row);
            }
            Frame::RowsInline { columns, rows }
        }
        T_COMPLETE => Frame::Complete,
        T_ERROR => Frame::Error {
            code: r.get_u16().map_err(bad)?,
            message: r.get_str().map_err(bad)?.to_string(),
        },
        other => return Err(net_err(format!("unknown frame type 0x{other:02x}"))),
    };
    Ok(frame)
}

/// Encode a [`Response`] as the frame(s) it becomes inside an
/// [`Frame::Observation`] body — a single nested frame, rows inlined.
/// (The streaming encoder in `server.rs` handles top-level responses.)
pub fn response_to_frame(resp: &Response) -> Frame {
    match resp {
        Response::Done(m) => Frame::Done { message: m.clone() },
        Response::Rows(r) => Frame::RowsInline {
            columns: r.columns.clone(),
            rows: r.rows.clone(),
        },
        Response::Explained(e) => explanation_to_frame(e),
        Response::Observed(o) => Frame::Observation {
            elapsed_ns: o.elapsed_ns,
            counters: o.counters.clone(),
            inner: Box::new(response_to_frame(&o.response)),
        },
    }
}

/// Render an [`Explanation`] for the wire: the plan string plus the
/// profile in display form when present.
pub fn explanation_to_frame(e: &Explanation) -> Frame {
    Frame::Explanation {
        plan: e.plan.clone(),
        profile: e.profile.as_ref().map(|p| p.to_string()),
    }
}

/// Rebuild a client-side [`Response`] from an observation's nested
/// frame.
pub fn frame_to_response(frame: Frame) -> DbResult<Response> {
    Ok(match frame {
        Frame::Done { message } => Response::Done(message),
        Frame::RowsInline { columns, rows } => Response::Rows(QueryResult {
            columns,
            rows,
            profile: None,
        }),
        Frame::Explanation { plan, profile } => {
            Response::Explained(wire_explanation(plan, profile))
        }
        Frame::Observation {
            elapsed_ns,
            counters,
            inner,
        } => Response::Observed(Observation {
            response: Box::new(frame_to_response(*inner)?),
            elapsed_ns,
            counters,
        }),
        other => {
            return Err(net_err(format!(
                "frame {other:?} cannot appear inside an observation"
            )))
        }
    })
}

/// A client-side [`Explanation`] from wire parts: the structured
/// profile stays server-side, so an analyze report folds its rendered
/// profile into `plan` (which is what `Explanation::Display` shows).
pub fn wire_explanation(plan: String, profile: Option<String>) -> Explanation {
    Explanation {
        plan: profile.unwrap_or(plan),
        profile: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(f: Frame) {
        let mut buf = Vec::new();
        write_frame(&mut buf, &f).unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        let got = read_frame(&mut cursor).unwrap().unwrap();
        assert_eq!(got, f);
        assert!(read_frame(&mut cursor).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn frames_round_trip() {
        round_trip(Frame::Hello {
            version: VERSION,
            user: "admin".into(),
        });
        round_trip(Frame::Run {
            src: "retrieve (P.name) from P in People".into(),
        });
        round_trip(Frame::Explain {
            analyze: true,
            src: "retrieve (1)".into(),
        });
        round_trip(Frame::Goodbye);
        round_trip(Frame::Welcome {
            version: VERSION,
            session_id: 42,
            banner: "exodus".into(),
        });
        round_trip(Frame::RowsHeader {
            columns: vec!["a".into(), "b".into()],
        });
        round_trip(Frame::RowBatch {
            rows: vec![
                vec![Value::Int(1), Value::Str("x".into())],
                vec![Value::Float(2.5), Value::Null],
            ],
        });
        round_trip(Frame::RowsEnd { total_rows: 2 });
        round_trip(Frame::Explanation {
            plan: "SeqScan P".into(),
            profile: Some("SeqScan P [rows=2]".into()),
        });
        round_trip(Frame::Observation {
            elapsed_ns: 123,
            counters: vec![("db_statements_total".into(), 1)],
            inner: Box::new(Frame::Done {
                message: "ok".into(),
            }),
        });
        round_trip(Frame::Complete);
        round_trip(Frame::Error {
            code: 2002,
            message: "shed".into(),
        });
        round_trip(Frame::ReplSubscribe { version: VERSION });
        round_trip(Frame::ReplPoll {
            after_lsn: 99,
            have_epoch: 3,
            max_records: 512,
        });
        round_trip(Frame::ReplWelcome {
            version: VERSION,
            session_id: 7,
        });
        round_trip(Frame::ReplBatch {
            payload: vec![0xDE, 0xAD, 0xBE, 0xEF],
        });
    }

    #[test]
    fn hostile_lengths_are_rejected() {
        // A length prefix past MAX_FRAME must not allocate.
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME + 1).to_le_bytes());
        buf.extend_from_slice(&[0u8; 16]);
        let err = read_frame(&mut std::io::Cursor::new(buf)).unwrap_err();
        assert_eq!(err.code(), 3001);
        // Zero-length frames are malformed too.
        let err = read_frame(&mut std::io::Cursor::new(vec![0u8; 4])).unwrap_err();
        assert_eq!(err.code(), 3001);
        // Unknown frame type.
        let mut buf = Vec::new();
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.push(0x7F);
        let err = read_frame(&mut std::io::Cursor::new(buf)).unwrap_err();
        assert!(err.to_string().contains("unknown frame type"));
    }

    #[test]
    fn truncated_frame_is_an_error_not_eof() {
        let mut buf = Vec::new();
        write_frame(
            &mut buf,
            &Frame::Done {
                message: "hello".into(),
            },
        )
        .unwrap();
        buf.truncate(buf.len() - 2);
        let err = read_frame(&mut std::io::Cursor::new(buf)).unwrap_err();
        assert_eq!(err.code(), 3001);
    }
}
