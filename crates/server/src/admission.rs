//! Admission control: the server's promise to degrade by *refusing*
//! work instead of melting under it.
//!
//! Three gates, checked in order, each of which turns overload into a
//! fast, retryable error rather than unbounded queueing:
//!
//! 1. **Connection limit** — at most [`AdmissionConfig::max_connections`]
//!    service threads exist. A connection past the limit gets a
//!    `Shed` error frame during the handshake and is closed.
//! 2. **Statement queue depth** — at most
//!    [`AdmissionConfig::queue_depth`] statements may be in flight
//!    across all connections. Past that, requests are shed before any
//!    parsing or execution happens.
//! 3. **Latency governor** — if the p99 statement latency observed
//!    over the current [`AdmissionConfig::governor_window`] (a
//!    sliding view over the cumulative `server_statement_ns`
//!    histogram) exceeds [`AdmissionConfig::shed_p99_ns`], new
//!    statements are shed until the tail recovers. This is the brake
//!    that keeps p99 bounded in an open-loop workload: admitting more
//!    work when the tail is already blown only moves queueing delay
//!    somewhere invisible. The window is what lets the tail *recover*:
//!    once a window passes with no completions (because everything was
//!    shed), the estimate empties and the gate reopens, so shedding
//!    can never latch permanently on all-time history.
//!
//! Shed errors carry code 2002 and `is_retryable() == true`, so a
//! well-behaved client backs off and retries; see `docs/ERRORS.md`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use exodus_db::DbError;
use exodus_obs::{Counter, Gauge, Histogram, MetricsRegistry, LATENCY_BUCKETS_NS};

/// Knobs governing how much concurrent work the server accepts.
#[derive(Debug, Clone)]
pub struct AdmissionConfig {
    /// Maximum simultaneously served connections; further connections
    /// are shed at handshake time.
    pub max_connections: usize,
    /// Maximum statements in flight across all connections; further
    /// requests are shed before execution.
    pub queue_depth: usize,
    /// Shed statements while the windowed p99 statement latency
    /// exceeds this many nanoseconds (`None` disables the governor).
    pub shed_p99_ns: Option<u64>,
    /// Length of the latency governor's observation window. The p99
    /// feeding gate 3 is computed over statements that *completed
    /// within the current window*, so the estimate — and therefore the
    /// shedding decision — tracks recent behavior and recovers once
    /// the tail does, instead of latching on all-time history.
    pub governor_window: Duration,
    /// How long a statement may wait for the single-writer gate before
    /// failing with a retryable `Busy` error instead of blocking the
    /// service thread indefinitely.
    pub lock_timeout: Duration,
}

impl Default for AdmissionConfig {
    fn default() -> AdmissionConfig {
        AdmissionConfig {
            max_connections: 128,
            queue_depth: 256,
            shed_p99_ns: None,
            governor_window: Duration::from_secs(1),
            lock_timeout: Duration::from_secs(5),
        }
    }
}

/// Metric families the server registers, plus the counters the
/// admission gates update. One instance is shared by the acceptor and
/// every service thread.
pub struct ServerMetrics {
    /// The registry these families live in (the database's own
    /// registry when it has one, so `/metrics` shows both sides).
    pub registry: Arc<MetricsRegistry>,
    /// Connections accepted, including ones later shed.
    pub connections_total: Arc<Counter>,
    /// Connections currently being served.
    pub active_connections: Arc<Gauge>,
    /// Connections refused at handshake by the connection limit.
    pub shed_connections_total: Arc<Counter>,
    /// Statements admitted for execution.
    pub statements_total: Arc<Counter>,
    /// Statements refused by the queue-depth or latency gates.
    pub shed_statements_total: Arc<Counter>,
    /// Statements currently executing or queued.
    pub inflight_statements: Arc<Gauge>,
    /// Wall-clock statement service time, admission to final frame.
    pub statement_ns: Arc<Histogram>,
    /// Request frames decoded.
    pub frames_in_total: Arc<Counter>,
    /// Response frames written.
    pub frames_out_total: Arc<Counter>,
    /// HTTP `/metrics` scrapes served.
    pub metrics_scrapes_total: Arc<Counter>,
}

impl ServerMetrics {
    /// Register the server families in `registry`.
    pub fn register(registry: Arc<MetricsRegistry>) -> ServerMetrics {
        ServerMetrics {
            connections_total: registry
                .counter("server_connections_total", "Connections accepted."),
            active_connections: registry
                .gauge("server_active_connections", "Connections currently served."),
            shed_connections_total: registry.counter(
                "server_shed_connections_total",
                "Connections refused by the connection limit.",
            ),
            statements_total: registry.counter(
                "server_statements_total",
                "Statements admitted for execution.",
            ),
            shed_statements_total: registry.counter(
                "server_shed_statements_total",
                "Statements refused by queue-depth or latency gates.",
            ),
            inflight_statements: registry.gauge(
                "server_inflight_statements",
                "Statements currently executing or queued.",
            ),
            statement_ns: registry.histogram(
                "server_statement_ns",
                "Statement service time in nanoseconds, admission to final frame.",
                LATENCY_BUCKETS_NS,
            ),
            frames_in_total: registry.counter("server_frames_in_total", "Request frames decoded."),
            frames_out_total: registry
                .counter("server_frames_out_total", "Response frames written."),
            metrics_scrapes_total: registry.counter(
                "server_metrics_scrapes_total",
                "HTTP /metrics scrapes served.",
            ),
            registry,
        }
    }
}

/// Shared admission state: the gates plus the metrics they update.
pub struct Admission {
    config: AdmissionConfig,
    metrics: ServerMetrics,
    active_connections: AtomicU64,
    inflight: AtomicU64,
    governor: Mutex<GovernorWindow>,
}

/// The latency governor's sliding view over the cumulative
/// `server_statement_ns` histogram: bucket counts snapshotted at the
/// start of the current window, so quantiles can be computed over the
/// difference (= observations made during the window alone).
struct GovernorWindow {
    /// Cumulative `(bound, count)` pairs at the window start; empty
    /// means "all zeros" (the initial window).
    base: Vec<(u64, u64)>,
    started: Instant,
}

/// RAII slot for one admitted connection; releasing it reopens the gate.
pub struct ConnSlot {
    admission: Arc<Admission>,
}

/// RAII slot for one admitted statement.
pub struct StatementSlot {
    admission: Arc<Admission>,
}

impl std::fmt::Debug for ConnSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("ConnSlot")
    }
}

impl std::fmt::Debug for StatementSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("StatementSlot")
    }
}

impl Admission {
    /// Build admission state over `config`, registering metric
    /// families in `registry`.
    pub fn new(config: AdmissionConfig, registry: Arc<MetricsRegistry>) -> Arc<Admission> {
        Arc::new(Admission {
            config,
            metrics: ServerMetrics::register(registry),
            active_connections: AtomicU64::new(0),
            inflight: AtomicU64::new(0),
            governor: Mutex::new(GovernorWindow {
                base: Vec::new(),
                started: Instant::now(),
            }),
        })
    }

    /// The configuration this server runs under.
    pub fn config(&self) -> &AdmissionConfig {
        &self.config
    }

    /// The server metric families.
    pub fn metrics(&self) -> &ServerMetrics {
        &self.metrics
    }

    /// Gate 1: claim a connection slot, or shed.
    pub fn admit_connection(self: &Arc<Admission>) -> Result<ConnSlot, DbError> {
        self.metrics.connections_total.inc();
        let limit = self.config.max_connections as u64;
        let mut held = self.active_connections.load(Ordering::Relaxed);
        loop {
            if held >= limit {
                self.metrics.shed_connections_total.inc();
                return Err(DbError::Shed(format!(
                    "connection limit of {limit} reached; retry after backoff"
                )));
            }
            match self.active_connections.compare_exchange_weak(
                held,
                held + 1,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(now) => held = now,
            }
        }
        self.metrics.active_connections.inc();
        Ok(ConnSlot {
            admission: Arc::clone(self),
        })
    }

    /// Gates 2 and 3: claim a statement slot, or shed.
    pub fn admit_statement(self: &Arc<Admission>) -> Result<StatementSlot, DbError> {
        let limit = self.config.queue_depth as u64;
        let mut held = self.inflight.load(Ordering::Relaxed);
        loop {
            if held >= limit {
                self.metrics.shed_statements_total.inc();
                return Err(DbError::Shed(format!(
                    "statement queue depth of {limit} reached; retry after backoff"
                )));
            }
            match self.inflight.compare_exchange_weak(
                held,
                held + 1,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(now) => held = now,
            }
        }
        // The latency governor runs after the queue-depth CAS, so a
        // shed here must hand the claimed count back itself (the gauge
        // has not been touched yet — only the raw counter).
        if let Some(ceiling) = self.config.shed_p99_ns {
            if let Some(p99) = self.windowed_p99() {
                if p99 > ceiling {
                    self.metrics.shed_statements_total.inc();
                    self.inflight.fetch_sub(1, Ordering::AcqRel);
                    return Err(DbError::Shed(format!(
                        "p99 statement latency {p99}ns exceeds governor ceiling \
                         {ceiling}ns; retry after backoff"
                    )));
                }
            }
        }
        self.metrics.inflight_statements.inc();
        self.metrics.statements_total.inc();
        Ok(StatementSlot {
            admission: Arc::clone(self),
        })
    }

    /// The p99 of statement latencies observed during the current
    /// governor window, or `None` if the window has none yet.
    ///
    /// `server_statement_ns` is cumulative and never resets, so the
    /// governor snapshots its bucket counts each time a window
    /// elapses and takes quantiles over the difference. Rotation
    /// empties the view, which is exactly what lets a tripped
    /// governor recover: shed statements never execute and so add no
    /// observations — against all-time counts the estimate would be
    /// frozen and the server would refuse work forever, while against
    /// a fresh window the estimate is `None`, a probe trickle is
    /// admitted, and shedding resumes only if *those* statements blow
    /// the tail again.
    fn windowed_p99(&self) -> Option<u64> {
        let mut window = self.governor.lock().unwrap();
        let current = self.metrics.statement_ns.cumulative();
        if window.started.elapsed() >= self.config.governor_window {
            window.base = current.clone();
            window.started = Instant::now();
        }
        let base_total = window.base.last().map_or(0, |&(_, c)| c);
        let total = current.last().map_or(0, |&(_, c)| c) - base_total;
        if total == 0 {
            return None;
        }
        let rank = (0.99 * total as f64).ceil().max(1.0) as u64;
        current
            .iter()
            .enumerate()
            .find(|&(i, &(_, cum))| {
                let b = window.base.get(i).map_or(0, |&(_, c)| c);
                cum - b >= rank
            })
            .map(|(_, &(bound, _))| bound)
    }
}

impl Drop for ConnSlot {
    fn drop(&mut self) {
        self.admission
            .active_connections
            .fetch_sub(1, Ordering::AcqRel);
        self.admission.metrics.active_connections.dec();
    }
}

impl Drop for StatementSlot {
    fn drop(&mut self) {
        self.admission.inflight.fetch_sub(1, Ordering::AcqRel);
        self.admission.metrics.inflight_statements.dec();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn admission(max_conns: usize, depth: usize) -> Arc<Admission> {
        Admission::new(
            AdmissionConfig {
                max_connections: max_conns,
                queue_depth: depth,
                shed_p99_ns: None,
                lock_timeout: Duration::from_millis(10),
                ..AdmissionConfig::default()
            },
            Arc::new(MetricsRegistry::new()),
        )
    }

    #[test]
    fn connection_limit_sheds_and_recovers() {
        let adm = admission(2, 8);
        let a = adm.admit_connection().unwrap();
        let _b = adm.admit_connection().unwrap();
        let refused = adm.admit_connection().unwrap_err();
        assert_eq!(refused.code(), 2002);
        assert!(refused.is_retryable());
        drop(a);
        adm.admit_connection().unwrap();
        assert_eq!(adm.metrics().shed_connections_total.get(), 1);
        assert_eq!(adm.metrics().connections_total.get(), 4);
    }

    #[test]
    fn queue_depth_sheds_statements() {
        let adm = admission(8, 1);
        let slot = adm.admit_statement().unwrap();
        let refused = adm.admit_statement().unwrap_err();
        assert_eq!(refused.code(), 2002);
        drop(slot);
        let _held = adm.admit_statement().unwrap();
        assert_eq!(adm.metrics().statements_total.get(), 2);
        assert_eq!(adm.metrics().shed_statements_total.get(), 1);
        assert_eq!(adm.metrics().inflight_statements.get(), 1);
    }

    #[test]
    fn latency_governor_sheds_when_tail_blows() {
        let adm = Admission::new(
            AdmissionConfig {
                // Above the histogram's smallest bucket bound (1024ns),
                // so a fast workload's estimate stays under it.
                shed_p99_ns: Some(2_000),
                ..AdmissionConfig::default()
            },
            Arc::new(MetricsRegistry::new()),
        );
        // Tail under the ceiling: admitted.
        for _ in 0..100 {
            adm.metrics().statement_ns.observe(100);
        }
        adm.admit_statement().unwrap();
        // Blow the tail far past the ceiling: shed, with no slot leak.
        for _ in 0..1_000 {
            adm.metrics().statement_ns.observe(50_000_000);
        }
        let before = adm.inflight.load(Ordering::Relaxed);
        let refused = adm.admit_statement().unwrap_err();
        assert_eq!(refused.code(), 2002);
        assert!(refused.is_retryable());
        assert_eq!(adm.inflight.load(Ordering::Relaxed), before);
    }

    #[test]
    fn latency_governor_recovers_after_the_window_rotates() {
        let adm = Admission::new(
            AdmissionConfig {
                shed_p99_ns: Some(2_000),
                governor_window: Duration::from_millis(20),
                ..AdmissionConfig::default()
            },
            Arc::new(MetricsRegistry::new()),
        );
        // A blown tail trips the governor, repeatedly, within the
        // window — even though shed statements add no observations.
        for _ in 0..1_000 {
            adm.metrics().statement_ns.observe(50_000_000);
        }
        assert_eq!(adm.admit_statement().unwrap_err().code(), 2002);
        assert_eq!(adm.admit_statement().unwrap_err().code(), 2002);
        // Once the window elapses the stale estimate is discarded and
        // the gate reopens — no permanent latch on all-time history.
        std::thread::sleep(Duration::from_millis(30));
        let probe = adm.admit_statement().expect("governor must unlatch");
        drop(probe);
        // Fresh observations in the new window can trip it again.
        for _ in 0..1_000 {
            adm.metrics().statement_ns.observe(50_000_000);
        }
        assert_eq!(adm.admit_statement().unwrap_err().code(), 2002);
    }
}
