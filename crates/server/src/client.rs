//! [`RemoteSession`]: the wire-protocol counterpart of the in-process
//! `Session`, implementing the same [`Client`] trait.
//!
//! Besides the one-request-one-response surface of [`Client`], the
//! remote session supports **pipelining**: [`RemoteSession::send`]
//! queues a request without waiting, and [`RemoteSession::drain`]
//! collects the outstanding results in order. Statement errors come
//! back as [`DbError::Remote`] carrying the server's stable code, so
//! [`DbError::is_retryable`] gives the same answer it would in
//! process; transport failures surface as [`DbError::Net`] **and
//! poison the session**: once a read or write fails at the transport
//! layer the stream position is unknown (leftover frames from the
//! failed exchange would be mistaken for the next request's
//! responses), so every subsequent operation fails fast with
//! [`DbError::Net`] and the caller must reconnect.

use std::io::{BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};

use exodus_db::{Client, DbError, DbResult, Explanation, Observation, QueryResult, Response};

use crate::protocol::{frame_to_response, read_frame, write_frame, Frame, PREAMBLE, VERSION};

/// A connection to an `exodus-server`, usable wherever a local
/// `Session` is (both implement [`Client`]).
pub struct RemoteSession {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    /// Requests sent but not yet drained.
    pending: usize,
    /// Server-assigned id, from the handshake (diagnostics only).
    session_id: u64,
    /// Set on any transport-layer read/write/decode failure. The
    /// stream position is unknown after one, so request/response
    /// pairing can no longer be trusted; every later operation fails
    /// fast instead of consuming stale frames as fresh responses.
    broken: bool,
}

impl std::fmt::Debug for RemoteSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteSession")
            .field("session_id", &self.session_id)
            .field("pending", &self.pending)
            .finish()
    }
}

impl RemoteSession {
    /// Connect to `addr` and open a session as `user`.
    ///
    /// Fails with a retryable [`DbError::Remote`] (code 2002) when the
    /// server sheds the connection at its admission limit.
    pub fn connect(addr: impl ToSocketAddrs, user: &str) -> DbResult<RemoteSession> {
        let stream = TcpStream::connect(addr).map_err(|e| DbError::Net(format!("connect: {e}")))?;
        stream
            .set_nodelay(true)
            .map_err(|e| DbError::Net(format!("connect: {e}")))?;
        let reader = BufReader::new(
            stream
                .try_clone()
                .map_err(|e| DbError::Net(format!("connect: {e}")))?,
        );
        let mut writer = BufWriter::new(stream);
        writer
            .write_all(&PREAMBLE)
            .map_err(|e| DbError::Net(format!("handshake: {e}")))?;
        write_frame(
            &mut writer,
            &Frame::Hello {
                version: VERSION,
                user: user.to_string(),
            },
        )?;
        writer
            .flush()
            .map_err(|e| DbError::Net(format!("handshake: {e}")))?;
        let mut session = RemoteSession {
            reader,
            writer,
            pending: 0,
            session_id: 0,
            broken: false,
        };
        // Bound the handshake so a wedged server yields an error, not
        // a hang; steady-state reads may legitimately block for as
        // long as a statement runs.
        let _ = session
            .reader
            .get_ref()
            .set_read_timeout(Some(std::time::Duration::from_secs(30)));
        let greeting = session.read_frame_required();
        let _ = session.reader.get_ref().set_read_timeout(None);
        match greeting? {
            Frame::Welcome { session_id, .. } => {
                session.session_id = session_id;
                Ok(session)
            }
            Frame::Error { code, message } => Err(DbError::Remote { code, message }),
            other => Err(DbError::Net(format!(
                "expected Welcome, server sent {other:?}"
            ))),
        }
    }

    /// The server-assigned session id.
    pub fn session_id(&self) -> u64 {
        self.session_id
    }

    /// Queue a `run` request without waiting for its result
    /// (pipelining). Collect results — in order — with
    /// [`RemoteSession::drain`].
    pub fn send(&mut self, src: &str) -> DbResult<()> {
        self.check_usable()?;
        self.write_request(&Frame::Run {
            src: src.to_string(),
        })?;
        self.pending += 1;
        Ok(())
    }

    /// Collect the results of every [`RemoteSession::send`] since the
    /// last drain, in request order. Statement failures land in their
    /// slot; a transport failure poisons the session, and every
    /// remaining slot (and every later operation) fails fast with the
    /// poisoned-session error instead of reading frames whose pairing
    /// can no longer be trusted.
    pub fn drain(&mut self) -> DbResult<Vec<DbResult<Vec<Response>>>> {
        let mut results = Vec::with_capacity(self.pending);
        while self.pending > 0 {
            results.push(if self.broken {
                Err(Self::broken_error())
            } else {
                self.read_group()
            });
            self.pending -= 1;
        }
        Ok(results)
    }

    /// The error every operation on a poisoned session returns.
    fn broken_error() -> DbError {
        DbError::Net(
            "session poisoned by an earlier transport failure; reconnect to continue".into(),
        )
    }

    fn check_usable(&self) -> DbResult<()> {
        if self.broken {
            Err(Self::broken_error())
        } else {
            Ok(())
        }
    }

    /// Write one request frame and flush it; a failure poisons the
    /// session (a partial frame may already be on the wire).
    fn write_request(&mut self, frame: &Frame) -> DbResult<()> {
        let sent = write_frame(&mut self.writer, frame).and_then(|()| {
            self.writer
                .flush()
                .map_err(|e| DbError::Net(format!("send: {e}")))
        });
        if sent.is_err() {
            self.broken = true;
        }
        sent
    }

    fn read_frame_required(&mut self) -> DbResult<Frame> {
        read_frame(&mut self.reader)?
            .ok_or_else(|| DbError::Net("server closed the connection".into()))
    }

    /// Read one request's responses, poisoning the session on any
    /// transport or protocol failure. Only a statement error relayed
    /// by the server ([`DbError::Remote`]) leaves the stream in a
    /// known state — the server still terminated the group with
    /// `Complete` — so only that error kind keeps the session usable.
    fn read_group(&mut self) -> DbResult<Vec<Response>> {
        let result = self.read_group_frames();
        if let Err(e) = &result {
            if !matches!(e, DbError::Remote { .. }) {
                self.broken = true;
            }
        }
        result
    }

    /// Read one request's responses: frames up to the `Complete`
    /// terminator, with streamed result sets reassembled.
    fn read_group_frames(&mut self) -> DbResult<Vec<Response>> {
        let mut responses = Vec::new();
        let mut failure: Option<DbError> = None;
        loop {
            match self.read_frame_required()? {
                Frame::Complete => break,
                Frame::Error { code, message } => {
                    failure.get_or_insert(DbError::Remote { code, message });
                }
                Frame::RowsHeader { columns } => {
                    let rows = self.read_streamed_rows()?;
                    responses.push(Response::Rows(QueryResult {
                        columns,
                        rows,
                        profile: None,
                    }));
                }
                frame @ (Frame::Done { .. }
                | Frame::Explanation { .. }
                | Frame::Observation { .. }) => responses.push(frame_to_response(frame)?),
                other => {
                    return Err(DbError::Net(format!(
                        "unexpected frame {other:?} in response stream"
                    )))
                }
            }
        }
        match failure {
            Some(e) => Err(e),
            None => Ok(responses),
        }
    }

    /// After a `RowsHeader`: collect `RowBatch` frames until `RowsEnd`.
    fn read_streamed_rows(&mut self) -> DbResult<Vec<Vec<extra_model::Value>>> {
        let mut rows = Vec::new();
        loop {
            match self.read_frame_required()? {
                Frame::RowBatch { rows: batch } => rows.extend(batch),
                Frame::RowsEnd { total_rows } => {
                    if total_rows != rows.len() as u64 {
                        return Err(DbError::Net(format!(
                            "result stream announced {total_rows} rows but carried {}",
                            rows.len()
                        )));
                    }
                    return Ok(rows);
                }
                other => {
                    return Err(DbError::Net(format!(
                        "unexpected frame {other:?} inside a result stream"
                    )))
                }
            }
        }
    }

    /// Issue one request frame and read back its single-response group.
    fn round_trip(&mut self, frame: &Frame) -> DbResult<Vec<Response>> {
        self.check_usable()?;
        if self.pending > 0 {
            return Err(DbError::Net(format!(
                "{} pipelined requests outstanding; drain them first",
                self.pending
            )));
        }
        self.write_request(frame)?;
        self.read_group()
    }
}

impl Client for RemoteSession {
    fn run(&mut self, src: &str) -> DbResult<Vec<Response>> {
        self.round_trip(&Frame::Run {
            src: src.to_string(),
        })
    }

    fn explain(&mut self, src: &str) -> DbResult<Explanation> {
        self.explain_frame(src, false)
    }

    fn explain_analyze(&mut self, src: &str) -> DbResult<Explanation> {
        self.explain_frame(src, true)
    }

    fn observe(&mut self, src: &str) -> DbResult<Observation> {
        let responses = self.round_trip(&Frame::Observe {
            src: src.to_string(),
        })?;
        match responses.into_iter().next() {
            Some(Response::Observed(o)) => Ok(o),
            other => Err(DbError::Net(format!(
                "expected an observation, server sent {other:?}"
            ))),
        }
    }
}

impl RemoteSession {
    fn explain_frame(&mut self, src: &str, analyze: bool) -> DbResult<Explanation> {
        let responses = self.round_trip(&Frame::Explain {
            analyze,
            src: src.to_string(),
        })?;
        match responses.into_iter().next() {
            Some(Response::Explained(e)) => Ok(e),
            other => Err(DbError::Net(format!(
                "expected an explanation, server sent {other:?}"
            ))),
        }
    }
}

impl Drop for RemoteSession {
    fn drop(&mut self) {
        // Best-effort orderly close; the server also handles abrupt
        // disconnects. A poisoned stream gets no Goodbye — its write
        // position is unknown.
        if !self.broken {
            let _ = write_frame(&mut self.writer, &Frame::Goodbye);
            let _ = self.writer.flush();
        }
    }
}
