//! The database catalog: named objects, functions, procedures, indexes,
//! and the authorization tables.

use std::collections::{HashMap, HashSet};

use excess_lang::Privilege;
use excess_sema::{
    CatalogLookup, CollectionStats, FunctionDef, IndexInfo, NamedObject, ProcedureDef,
    SystemViewDef,
};
use extra_model::{AdtRegistry, ObjectStore, TypeRegistry, Value};

/// The built-in group every user belongs to (paper: "a special
/// 'all-users' group").
pub const ALL_USERS: &str = "all_users";
/// The administrative user that owns the database.
pub const ADMIN: &str = "admin";

/// System R / IDM-style authorization state.
#[derive(Debug, Default)]
pub struct Auth {
    users: HashSet<String>,
    /// group → members.
    groups: HashMap<String, HashSet<String>>,
    /// (object, grantee) → privileges.
    grants: HashMap<(String, String), HashSet<Privilege>>,
}

impl Auth {
    /// Create a user.
    pub fn create_user(&mut self, name: &str) -> bool {
        self.users.insert(name.to_string())
    }

    /// Create a group.
    pub fn create_group(&mut self, name: &str) -> bool {
        match self.groups.entry(name.to_string()) {
            std::collections::hash_map::Entry::Occupied(_) => false,
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(HashSet::new());
                true
            }
        }
    }

    /// Whether a user exists.
    pub fn user_exists(&self, name: &str) -> bool {
        name == ADMIN || self.users.contains(name)
    }

    /// Whether a grantee (user or group) exists.
    pub fn grantee_exists(&self, name: &str) -> bool {
        name == ALL_USERS || self.user_exists(name) || self.groups.contains_key(name)
    }

    /// Add a user to a group.
    pub fn add_to_group(&mut self, user: &str, group: &str) -> bool {
        match self.groups.get_mut(group) {
            Some(members) => {
                members.insert(user.to_string());
                true
            }
            None => false,
        }
    }

    /// Grant privileges on an object to a grantee.
    pub fn grant(&mut self, object: &str, grantee: &str, privileges: &[Privilege]) {
        let entry = self
            .grants
            .entry((object.to_string(), grantee.to_string()))
            .or_default();
        for p in privileges {
            entry.insert(*p);
        }
    }

    /// Revoke privileges.
    pub fn revoke(&mut self, object: &str, grantee: &str, privileges: &[Privilege]) {
        if let Some(entry) = self
            .grants
            .get_mut(&(object.to_string(), grantee.to_string()))
        {
            for p in privileges {
                if *p == Privilege::All {
                    entry.clear();
                } else {
                    entry.remove(p);
                }
            }
        }
    }

    fn grantee_has(&self, object: &str, grantee: &str, privilege: Privilege) -> bool {
        self.grants
            .get(&(object.to_string(), grantee.to_string()))
            .map(|ps| ps.contains(&privilege) || ps.contains(&Privilege::All))
            .unwrap_or(false)
    }

    /// Serialize the authorization state for a replication catalog
    /// image (`docs/REPLICATION.md`). Sorted for determinism.
    pub fn to_bytes(&self) -> Vec<u8> {
        fn put_str(out: &mut Vec<u8>, s: &str) {
            out.extend_from_slice(&(s.len() as u32).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
        let mut out = Vec::new();
        let mut users: Vec<&String> = self.users.iter().collect();
        users.sort();
        out.extend_from_slice(&(users.len() as u32).to_le_bytes());
        for u in users {
            put_str(&mut out, u);
        }
        let mut groups: Vec<(&String, &HashSet<String>)> = self.groups.iter().collect();
        groups.sort_by_key(|(g, _)| g.as_str());
        out.extend_from_slice(&(groups.len() as u32).to_le_bytes());
        for (g, members) in groups {
            put_str(&mut out, g);
            let mut ms: Vec<&String> = members.iter().collect();
            ms.sort();
            out.extend_from_slice(&(ms.len() as u32).to_le_bytes());
            for m in ms {
                put_str(&mut out, m);
            }
        }
        let mut grants: Vec<(&(String, String), &HashSet<Privilege>)> =
            self.grants.iter().collect();
        grants.sort_by_key(|((o, g), _)| (o.as_str(), g.as_str()));
        out.extend_from_slice(&(grants.len() as u32).to_le_bytes());
        for ((object, grantee), privs) in grants {
            put_str(&mut out, object);
            put_str(&mut out, grantee);
            let mut ps: Vec<u8> = privs.iter().map(|p| privilege_tag(*p)).collect();
            ps.sort_unstable();
            out.extend_from_slice(&(ps.len() as u32).to_le_bytes());
            out.extend_from_slice(&ps);
        }
        out
    }

    /// Rebuild authorization state from [`Auth::to_bytes`] output.
    /// Returns `None` on a malformed image.
    pub fn from_bytes(buf: &[u8]) -> Option<Auth> {
        fn get_u32(buf: &[u8], pos: &mut usize) -> Option<u32> {
            let end = pos.checked_add(4).filter(|&e| e <= buf.len())?;
            let v = u32::from_le_bytes(buf[*pos..end].try_into().ok()?);
            *pos = end;
            Some(v)
        }
        fn get_str(buf: &[u8], pos: &mut usize) -> Option<String> {
            let len = get_u32(buf, pos)? as usize;
            let end = pos.checked_add(len).filter(|&e| e <= buf.len())?;
            let s = std::str::from_utf8(&buf[*pos..end]).ok()?.to_string();
            *pos = end;
            Some(s)
        }
        let mut a = Auth::default();
        let mut pos = 0;
        for _ in 0..get_u32(buf, &mut pos)? {
            a.users.insert(get_str(buf, &mut pos)?);
        }
        for _ in 0..get_u32(buf, &mut pos)? {
            let g = get_str(buf, &mut pos)?;
            let mut members = HashSet::new();
            for _ in 0..get_u32(buf, &mut pos)? {
                members.insert(get_str(buf, &mut pos)?);
            }
            a.groups.insert(g, members);
        }
        for _ in 0..get_u32(buf, &mut pos)? {
            let object = get_str(buf, &mut pos)?;
            let grantee = get_str(buf, &mut pos)?;
            let mut privs = HashSet::new();
            for _ in 0..get_u32(buf, &mut pos)? {
                let tag = *buf.get(pos)?;
                pos += 1;
                privs.insert(privilege_from_tag(tag)?);
            }
            a.grants.insert((object, grantee), privs);
        }
        Some(a)
    }

    /// Whether `user` holds `privilege` on `object` (directly, through a
    /// group, or through `all_users`). The admin holds everything.
    pub fn allowed(&self, user: &str, object: &str, privilege: Privilege) -> bool {
        if user == ADMIN {
            return true;
        }
        if self.grantee_has(object, user, privilege) {
            return true;
        }
        if self.grantee_has(object, ALL_USERS, privilege) {
            return true;
        }
        self.groups
            .iter()
            .any(|(g, members)| members.contains(user) && self.grantee_has(object, g, privilege))
    }
}

fn privilege_tag(p: Privilege) -> u8 {
    match p {
        Privilege::Read => 0,
        Privilege::Append => 1,
        Privilege::Delete => 2,
        Privilege::Replace => 3,
        Privilege::Execute => 4,
        Privilege::All => 5,
    }
}

fn privilege_from_tag(t: u8) -> Option<Privilege> {
    Some(match t {
        0 => Privilege::Read,
        1 => Privilege::Append,
        2 => Privilege::Delete,
        3 => Privilege::Replace,
        4 => Privilege::Execute,
        5 => Privilege::All,
        _ => return None,
    })
}

/// The catalog: everything the analyzer and executor resolve names
/// against, plus the authorization tables.
pub struct Catalog {
    /// Schema types.
    pub types: TypeRegistry,
    /// ADTs.
    pub adts: AdtRegistry,
    /// Named persistent objects.
    pub named: HashMap<String, NamedObject>,
    /// EXCESS function definitions (name overloads allowed across
    /// receiver types).
    pub functions: Vec<FunctionDef>,
    /// EXCESS procedures.
    pub procedures: HashMap<String, ProcedureDef>,
    /// Secondary indexes.
    pub indexes: Vec<IndexInfo>,
    /// Optimizer statistics recorded by `analyze <collection>`, keyed by
    /// collection name (format and durability notes: DESIGN.md §14).
    pub stats: HashMap<String, StatsEntry>,
    /// Heap file holding serialized statistics payloads (created by the
    /// first `analyze`).
    pub stats_file: Option<exodus_storage::FileId>,
    /// Authorization state.
    pub auth: Auth,
}

/// One analyzed collection's statistics plus its durable location.
#[derive(Debug, Clone)]
pub struct StatsEntry {
    /// The decoded statistics the planner consults.
    pub stats: CollectionStats,
    /// Heap record holding the serialized payload (written inside the
    /// analyzing statement's logged transaction; updated in place on
    /// re-analyze).
    pub record: exodus_storage::RecordId,
}

impl Catalog {
    /// A catalog pre-loaded with the built-in ADTs.
    pub fn new() -> Catalog {
        Catalog {
            types: TypeRegistry::new(),
            adts: AdtRegistry::with_builtins(),
            named: HashMap::new(),
            functions: Vec::new(),
            procedures: HashMap::new(),
            indexes: Vec::new(),
            stats: HashMap::new(),
            stats_file: None,
            auth: Auth::default(),
        }
    }
}

impl Default for Catalog {
    fn default() -> Self {
        Self::new()
    }
}

/// The catalog joined with the store (for statistics), implementing the
/// analyzer's lookup interface.
pub struct CatalogView<'a> {
    /// The catalog.
    pub cat: &'a Catalog,
    /// The object store (member counts).
    pub store: &'a ObjectStore,
    /// The owning database, when known — resolves and materializes the
    /// `sys.*` virtual collections. `None` (tools constructing a bare
    /// view) simply has no system views.
    pub db: Option<&'a crate::database::Database>,
}

impl CatalogLookup for CatalogView<'_> {
    fn named(&self, name: &str) -> Option<NamedObject> {
        self.cat.named.get(name).cloned()
    }

    fn functions_named(&self, name: &str) -> Vec<FunctionDef> {
        self.cat
            .functions
            .iter()
            .filter(|f| f.name == name)
            .cloned()
            .collect()
    }

    fn procedure(&self, name: &str) -> Option<ProcedureDef> {
        self.cat.procedures.get(name).cloned()
    }

    fn index_on(&self, collection: &str, attr: &str) -> Option<IndexInfo> {
        self.cat
            .indexes
            .iter()
            .find(|i| i.collection == collection && i.attr == attr)
            .cloned()
    }

    fn collection_size(&self, name: &str) -> Option<u64> {
        let obj = self.cat.named.get(name)?;
        if !obj.is_collection {
            return None;
        }
        self.store.member_count(obj.oid).ok()
    }

    fn stats_for(&self, collection: &str) -> Option<CollectionStats> {
        self.cat.stats.get(collection).map(|e| e.stats.clone())
    }

    fn collections(&self) -> Vec<NamedObject> {
        self.cat
            .named
            .values()
            .filter(|o| o.is_collection)
            .cloned()
            .collect()
    }

    fn system_view(&self, name: &str) -> Option<SystemViewDef> {
        self.db?.system_view_def(name)
    }

    fn system_view_rows(&self, name: &str) -> Option<Vec<Value>> {
        self.db?.system_view_rows_with(self.cat, name)
    }

    fn system_views(&self) -> Vec<SystemViewDef> {
        self.db
            .map(|db| db.system_view_defs())
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auth_direct_group_and_all_users() {
        let mut a = Auth::default();
        a.create_user("alice");
        a.create_user("bob");
        a.create_group("staff");
        a.add_to_group("alice", "staff");

        a.grant("Employees", "staff", &[Privilege::Read]);
        assert!(a.allowed("alice", "Employees", Privilege::Read));
        assert!(!a.allowed("bob", "Employees", Privilege::Read));
        assert!(!a.allowed("alice", "Employees", Privilege::Append));

        a.grant("Employees", ALL_USERS, &[Privilege::Append]);
        assert!(a.allowed("bob", "Employees", Privilege::Append));

        // All implies everything; revoke all clears.
        a.grant("Payroll", "bob", &[Privilege::All]);
        assert!(a.allowed("bob", "Payroll", Privilege::Replace));
        a.revoke("Payroll", "bob", &[Privilege::All]);
        assert!(!a.allowed("bob", "Payroll", Privilege::Replace));

        // Admin can do anything.
        assert!(a.allowed(ADMIN, "Anything", Privilege::Delete));
    }
}
