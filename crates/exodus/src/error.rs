//! Database-level errors, with stable wire-safe codes.
//!
//! Every [`DbError`] variant maps to a stable numeric [`DbError::code`]
//! so errors round-trip the wire protocol losslessly: the server sends
//! `(code, message)`, the client reconstructs a [`DbError::Remote`]
//! whose `code()` and [`DbError::is_retryable`] agree with the
//! original. The code table is documented in `docs/ERRORS.md`; the
//! `code()` match is exhaustive (no wildcard arm), so adding a variant
//! without assigning a code is a compile error, and the
//! `code_table_is_complete_and_documented` test keeps the docs in sync.

use std::fmt;

use excess_lang::ParseError;
use excess_sema::SemaError;
use exodus_storage::StorageError;
use extra_model::ModelError;

/// Any error the database can raise.
#[derive(Debug)]
pub enum DbError {
    /// Syntax error.
    Parse(ParseError),
    /// Semantic error.
    Sema(SemaError),
    /// Data-model / storage / runtime error.
    Model(ModelError),
    /// Authorization failure.
    Auth(String),
    /// Catalog misuse (duplicate names, missing objects...).
    Catalog(String),
    /// Transaction misuse (`commit` without `begin`, DDL inside an
    /// explicit transaction...).
    Txn(String),
    /// The writer gate stayed busy past the session's lock timeout.
    /// Nothing was executed; retry freely.
    Busy(String),
    /// Admission control shed the request (connection limit, statement
    /// queue depth, or latency governor). Nothing was executed; retry
    /// after backoff.
    Shed(String),
    /// A commit whose record reached the log but whose fsync failed:
    /// the outcome is unknown until the next recovery. Retryable only
    /// because the workload must re-check and re-issue; the original
    /// attempt may still surface as committed after a restart.
    Indeterminate(String),
    /// The statement needs a write (or an explicit transaction) but
    /// this database is a read-only replica. Not retryable here: the
    /// statement will never succeed on this endpoint — route it to the
    /// primary.
    ReadOnly(String),
    /// The replica's replay horizon trails the primary past the
    /// configured lag bound and reads are being shed. Nothing was
    /// executed; retry after the replica catches up.
    Lagging(String),
    /// A wire-protocol or connection failure between a remote client
    /// and the server (framing violation, unexpected EOF, I/O error).
    Net(String),
    /// An error received over the wire, reconstructed on the client
    /// from its stable code and rendered message. `code()` returns the
    /// original code, so retryability survives the round trip even
    /// though the structured payload (parse positions, sema details)
    /// does not.
    Remote {
        /// The originating error's stable code.
        code: u16,
        /// The originating error's rendered message.
        message: String,
    },
}

/// One row of the stable error-code table: code, variant name,
/// meaning, retryable.
pub type CodeRow = (u16, &'static str, &'static str, bool);

/// The stable code table, one row per [`DbError`] variant (plus the
/// indeterminate-commit code that [`DbError::Model`] can also carry).
/// `docs/ERRORS.md` documents exactly these rows; a test enforces it.
pub const CODE_TABLE: &[CodeRow] = &[
    (1001, "Parse", "syntax error", false),
    (1002, "Sema", "semantic (type/name) error", false),
    (1003, "Auth", "authorization failure", false),
    (1004, "Catalog", "catalog misuse", false),
    (1005, "Txn", "transaction misuse", false),
    (1006, "Model", "data-model / storage / runtime error", false),
    (
        1007,
        "ReadOnly",
        "read-only replica refuses writes and explicit transactions",
        false,
    ),
    (2001, "Busy", "writer gate busy past the lock timeout", true),
    (2002, "Shed", "admission control shed the request", true),
    (
        2003,
        "Indeterminate",
        "commit fate unknown until recovery",
        true,
    ),
    (
        2004,
        "Lagging",
        "replica lagging past the configured bound; read shed",
        true,
    ),
    (3001, "Net", "wire-protocol or connection failure", false),
];

impl DbError {
    /// The stable numeric code for this error (see `docs/ERRORS.md`).
    /// Exhaustive by construction: a new variant cannot compile without
    /// choosing a code here.
    pub fn code(&self) -> u16 {
        match self {
            DbError::Parse(_) => 1001,
            DbError::Sema(_) => 1002,
            DbError::Auth(_) => 1003,
            DbError::Catalog(_) => 1004,
            DbError::Txn(_) => 1005,
            // An indeterminate commit can also surface wrapped in a
            // model error (bulk loads, store-level callers); keep its
            // code stable either way.
            DbError::Model(ModelError::Storage(StorageError::IndeterminateCommit { .. })) => 2003,
            DbError::Model(_) => 1006,
            DbError::ReadOnly(_) => 1007,
            DbError::Busy(_) => 2001,
            DbError::Shed(_) => 2002,
            DbError::Indeterminate(_) => 2003,
            DbError::Lagging(_) => 2004,
            DbError::Net(_) => 3001,
            DbError::Remote { code, .. } => *code,
        }
    }

    /// Whether a client may safely retry after this error. Derived from
    /// the code table, so it survives the wire round trip: shed
    /// requests and lock-timeout busies executed nothing, and an
    /// indeterminate commit demands a re-check-and-retry.
    pub fn is_retryable(&self) -> bool {
        let code = self.code();
        CODE_TABLE
            .iter()
            .any(|(c, _, _, retryable)| *c == code && *retryable)
    }
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::Parse(e) => write!(f, "parse error: {e}"),
            DbError::Sema(e) => write!(f, "semantic error: {e}"),
            DbError::Model(e) => write!(f, "{e}"),
            DbError::Auth(m) => write!(f, "authorization error: {m}"),
            DbError::Catalog(m) => write!(f, "catalog error: {m}"),
            DbError::Txn(m) => write!(f, "transaction error: {m}"),
            DbError::ReadOnly(m) => write!(f, "read-only replica: {m}"),
            DbError::Busy(m) => write!(f, "busy: {m}"),
            DbError::Shed(m) => write!(f, "shed: {m}"),
            DbError::Indeterminate(m) => write!(f, "indeterminate commit: {m}"),
            DbError::Lagging(m) => write!(f, "replica lagging: {m}"),
            DbError::Net(m) => write!(f, "network error: {m}"),
            DbError::Remote { code, message } => write!(f, "[{code}] {message}"),
        }
    }
}

impl std::error::Error for DbError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DbError::Parse(e) => Some(e),
            DbError::Sema(e) => Some(e),
            DbError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ParseError> for DbError {
    fn from(e: ParseError) -> Self {
        DbError::Parse(e)
    }
}

impl From<SemaError> for DbError {
    fn from(e: SemaError) -> Self {
        DbError::Sema(e)
    }
}

impl From<ModelError> for DbError {
    fn from(e: ModelError) -> Self {
        DbError::Model(e)
    }
}

impl From<exodus_storage::StorageError> for DbError {
    fn from(e: exodus_storage::StorageError) -> Self {
        match e {
            StorageError::IndeterminateCommit { ts, cause } => DbError::Indeterminate(format!(
                "commit at timestamp {ts} reached the log but its fsync failed ({cause}); \
                 recovery will decide its fate"
            )),
            other => DbError::Model(ModelError::Storage(other)),
        }
    }
}

/// Convenience alias.
pub type DbResult<T> = Result<T, DbError>;

#[cfg(test)]
mod tests {
    use super::*;

    /// One constructed value of every variant, for table checks. A new
    /// variant that is not added here fails the count assertion below
    /// (and `code()` itself fails to compile without a code).
    fn one_of_each() -> Vec<DbError> {
        vec![
            DbError::Auth("x".into()),
            DbError::Catalog("x".into()),
            DbError::Txn("x".into()),
            DbError::ReadOnly("x".into()),
            DbError::Lagging("x".into()),
            DbError::Busy("x".into()),
            DbError::Shed("x".into()),
            DbError::Indeterminate("x".into()),
            DbError::Net("x".into()),
        ]
    }

    #[test]
    fn code_table_is_complete_and_documented() {
        // Codes are unique.
        let mut codes: Vec<u16> = CODE_TABLE.iter().map(|(c, ..)| *c).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), CODE_TABLE.len(), "duplicate code in table");
        // Every constructed variant's code appears in the table.
        for e in one_of_each() {
            assert!(
                CODE_TABLE.iter().any(|(c, ..)| *c == e.code()),
                "variant {e:?} has uncoded code {}",
                e.code()
            );
        }
        // Every code row is documented in docs/ERRORS.md.
        let docs = include_str!("../../../docs/ERRORS.md");
        for (code, name, _, retryable) in CODE_TABLE {
            assert!(
                docs.contains(&format!("`{code}`")),
                "docs/ERRORS.md is missing code {code} ({name})"
            );
            let _ = retryable;
        }
    }

    #[test]
    fn retryability_survives_remote_reconstruction() {
        for original in one_of_each() {
            let remote = DbError::Remote {
                code: original.code(),
                message: original.to_string(),
            };
            assert_eq!(remote.code(), original.code());
            assert_eq!(remote.is_retryable(), original.is_retryable());
        }
    }

    #[test]
    fn storage_indeterminate_maps_to_retryable_2003() {
        let e: DbError = StorageError::IndeterminateCommit {
            ts: 7,
            cause: "disk gone".into(),
        }
        .into();
        assert_eq!(e.code(), 2003);
        assert!(e.is_retryable());
        let wrapped = DbError::Model(ModelError::Storage(StorageError::IndeterminateCommit {
            ts: 7,
            cause: "disk gone".into(),
        }));
        assert_eq!(wrapped.code(), 2003);
        assert!(wrapped.is_retryable());
    }
}
