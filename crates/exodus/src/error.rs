//! Database-level errors.

use std::fmt;

use excess_lang::ParseError;
use excess_sema::SemaError;
use extra_model::ModelError;

/// Any error the database can raise.
#[derive(Debug)]
pub enum DbError {
    /// Syntax error.
    Parse(ParseError),
    /// Semantic error.
    Sema(SemaError),
    /// Data-model / storage / runtime error.
    Model(ModelError),
    /// Authorization failure.
    Auth(String),
    /// Catalog misuse (duplicate names, missing objects...).
    Catalog(String),
    /// Transaction misuse (`commit` without `begin`, DDL inside an
    /// explicit transaction...).
    Txn(String),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::Parse(e) => write!(f, "parse error: {e}"),
            DbError::Sema(e) => write!(f, "semantic error: {e}"),
            DbError::Model(e) => write!(f, "{e}"),
            DbError::Auth(m) => write!(f, "authorization error: {m}"),
            DbError::Catalog(m) => write!(f, "catalog error: {m}"),
            DbError::Txn(m) => write!(f, "transaction error: {m}"),
        }
    }
}

impl std::error::Error for DbError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DbError::Parse(e) => Some(e),
            DbError::Sema(e) => Some(e),
            DbError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ParseError> for DbError {
    fn from(e: ParseError) -> Self {
        DbError::Parse(e)
    }
}

impl From<SemaError> for DbError {
    fn from(e: SemaError) -> Self {
        DbError::Sema(e)
    }
}

impl From<ModelError> for DbError {
    fn from(e: ModelError) -> Self {
        DbError::Model(e)
    }
}

impl From<exodus_storage::StorageError> for DbError {
    fn from(e: exodus_storage::StorageError) -> Self {
        DbError::Model(ModelError::Storage(e))
    }
}

/// Convenience alias.
pub type DbResult<T> = Result<T, DbError>;
