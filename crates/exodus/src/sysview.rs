//! Queryable system introspection: the `sys.*` virtual collections.
//!
//! Every database exposes a read-only `sys` schema of *virtual
//! collections* — `sys.metrics`, `sys.sessions`, `sys.transactions`,
//! `sys.collections`, `sys.slow_queries`, `sys.trace_spans`,
//! `sys.replication` — materialized on demand from live engine state
//! and queryable with ordinary EXCESS:
//!
//! ```text
//! retrieve (m in sys.metrics) where m.name = "db_statements_total"
//! ```
//!
//! A [`SystemView`] is a row provider: it declares a tuple schema once
//! and produces a `Vec<Value>` of tuple rows when scanned. The planner
//! compiles a range over `sys.<name>` into a dedicated `SystemScan`
//! leaf whose cursor loads the provider's rows exactly once per open —
//! that single load *is* the view's consistent snapshot — so filters,
//! projections, aggregates, `explain analyze` and `observe` compose
//! over system views exactly as over stored collections.
//!
//! Design constraints the providers honor:
//!
//! * **No catalog re-entry.** A provider runs under the statement's
//!   already-held shared catalog lock, so it receives the catalog by
//!   reference in [`SysCtx`] and must never call `db.catalog.read()`
//!   itself (read-recursion on a `parking_lot` lock can deadlock
//!   behind a queued writer).
//! * **No blocking on foreign locks.** `sys.replication` peeks at the
//!   source slot with `try_lock`: a replication poll holding that
//!   mutex must never be able to deadlock (or even stall) an
//!   introspection query.
//! * **Read-only and privilege-free.** System views surface operational
//!   state, not stored data; scanning one requires no object privilege
//!   and works on read replicas (introspection is never refused with
//!   the replica's `ReadOnly` error).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use excess_sema::SystemViewDef;
use exodus_obs::SampleValue;
use extra_model::{Attribute, QualType, Type, Value};
use parking_lot::Mutex;

use crate::catalog::Catalog;
use crate::database::Database;

fn int8() -> Type {
    Type::Base(extra_model::BaseType::Int8)
}

/// Per-scan context handed to a [`SystemView`]: the database and the
/// catalog view the running statement already holds. Providers read
/// `cat` instead of re-locking `db.catalog` (see the module docs).
pub struct SysCtx<'a> {
    /// The database whose state is being introspected.
    pub db: &'a Database,
    /// The catalog as seen by the running statement.
    pub cat: &'a Catalog,
}

/// A provider of one `sys.<name>` virtual collection: a fixed tuple
/// schema plus a row materializer invoked once per scan open.
///
/// Rows must be [`Value::Tuple`]s matching [`SystemView::fields`] in
/// declaration order. Providers should return rows in a deterministic
/// order (sorted by a natural key) so identical queries produce
/// identical row orders at any degree of parallelism.
pub trait SystemView: Send + Sync {
    /// The collection's name, without the `sys.` prefix.
    fn name(&self) -> &'static str;
    /// One-line description (surfaced in docs and error messages).
    fn help(&self) -> &'static str;
    /// The element tuple's attributes, in declaration order.
    fn fields(&self) -> Vec<Attribute>;
    /// Materialize the rows — one consistent snapshot per call.
    fn rows(&self, cx: &SysCtx<'_>) -> Vec<Value>;
}

impl dyn SystemView {
    /// The sema-facing definition: name plus owned tuple element type.
    pub(crate) fn def(&self) -> SystemViewDef {
        SystemViewDef {
            name: self.name().to_string(),
            elem: QualType::own(Type::Tuple(self.fields())),
        }
    }
}

// ---------------------------------------------------------------------------
// Session registry (feeds sys.sessions).
// ---------------------------------------------------------------------------

/// Live state of one open session, shared between the session itself
/// (which bumps `statements`) and annotators like the wire server
/// (which set `peer` and `state`).
pub struct SessionInfo {
    /// Process-unique session id (also the slow-query log's
    /// attribution key).
    pub id: u64,
    /// The session's user.
    pub user: String,
    /// Remote peer address, set by the server for wire sessions;
    /// `None` for in-process sessions.
    peer: Mutex<Option<String>>,
    /// Statements executed by this session.
    statements: AtomicU64,
    /// Admission / lifecycle state (`"open"`, `"admitted"`,
    /// `"draining"`, ...), annotated by the owning layer.
    state: Mutex<String>,
}

impl SessionInfo {
    /// Statements executed so far.
    pub fn statements(&self) -> u64 {
        self.statements.load(Ordering::Relaxed)
    }

    pub(crate) fn bump_statements(&self) {
        self.statements.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn set_peer(&self, peer: Option<String>) {
        *self.peer.lock() = peer;
    }

    pub(crate) fn set_state(&self, state: &str) {
        let mut s = self.state.lock();
        s.clear();
        s.push_str(state);
    }
}

/// The database-wide registry of open sessions behind `sys.sessions`.
#[derive(Default)]
pub struct SessionRegistry {
    next: AtomicU64,
    sessions: Mutex<Vec<Arc<SessionInfo>>>,
}

impl SessionRegistry {
    pub(crate) fn register(&self, user: &str) -> Arc<SessionInfo> {
        let info = Arc::new(SessionInfo {
            id: self.next.fetch_add(1, Ordering::Relaxed) + 1,
            user: user.to_string(),
            peer: Mutex::new(None),
            statements: AtomicU64::new(0),
            state: Mutex::new("open".to_string()),
        });
        self.sessions.lock().push(info.clone());
        info
    }

    pub(crate) fn unregister(&self, id: u64) {
        let mut sessions = self.sessions.lock();
        if let Some(i) = sessions.iter().position(|s| s.id == id) {
            sessions.swap_remove(i);
        }
    }

    /// All open sessions, sorted by id.
    pub(crate) fn snapshot(&self) -> Vec<Arc<SessionInfo>> {
        let mut out = self.sessions.lock().clone();
        out.sort_by_key(|s| s.id);
        out
    }
}

// ---------------------------------------------------------------------------
// The built-in providers.
// ---------------------------------------------------------------------------

/// `sys.metrics`: one row per registered metric family, name-sorted.
/// Counters and gauges carry their value in both `value` and `count`;
/// histograms surface their sum in `value` and their observation count
/// in `count`. Empty when the database was built with metrics off.
struct MetricsView;

impl SystemView for MetricsView {
    fn name(&self) -> &'static str {
        "metrics"
    }
    fn help(&self) -> &'static str {
        "every registered metric family: name, kind, value, count, help"
    }
    fn fields(&self) -> Vec<Attribute> {
        vec![
            Attribute::own("name", Type::varchar()),
            Attribute::own("kind", Type::varchar()),
            Attribute::own("value", Type::float8()),
            Attribute::own("count", int8()),
            Attribute::own("help", Type::varchar()),
        ]
    }
    fn rows(&self, cx: &SysCtx<'_>) -> Vec<Value> {
        let Some(snap) = cx.db.metrics_snapshot() else {
            return Vec::new();
        };
        snap.metrics
            .into_iter()
            .map(|m| {
                let (kind, value, count) = match &m.value {
                    SampleValue::Counter(v) => ("counter", *v as f64, *v as i64),
                    SampleValue::Gauge(v) => ("gauge", *v as f64, *v),
                    SampleValue::Histogram { sum, count, .. } => {
                        ("histogram", *sum as f64, *count as i64)
                    }
                };
                Value::Tuple(vec![
                    Value::str(&m.name),
                    Value::str(kind),
                    Value::Float(value),
                    Value::Int(count),
                    Value::str(&m.help),
                ])
            })
            .collect()
    }
}

/// `sys.sessions`: one row per open session, sorted by id. Wire
/// sessions carry the peer address and admission state the server
/// annotated; in-process sessions show kind `local` and a null peer.
struct SessionsView;

impl SystemView for SessionsView {
    fn name(&self) -> &'static str {
        "sessions"
    }
    fn help(&self) -> &'static str {
        "every open session: id, user_name, kind, peer, statements, state"
    }
    fn fields(&self) -> Vec<Attribute> {
        vec![
            Attribute::own("id", int8()),
            // `user` is a reserved word in EXCESS (`grant ... to user`),
            // so the attribute is `user_name`.
            Attribute::own("user_name", Type::varchar()),
            Attribute::own("kind", Type::varchar()),
            Attribute::own("peer", Type::varchar()),
            Attribute::own("statements", int8()),
            Attribute::own("state", Type::varchar()),
        ]
    }
    fn rows(&self, cx: &SysCtx<'_>) -> Vec<Value> {
        cx.db
            .sessions
            .snapshot()
            .into_iter()
            .map(|s| {
                let peer = s.peer.lock().clone();
                let kind = if peer.is_some() { "wire" } else { "local" };
                Value::Tuple(vec![
                    Value::Int(s.id as i64),
                    Value::str(&s.user),
                    Value::str(kind),
                    peer.map(|p| Value::str(&p)).unwrap_or(Value::Null),
                    Value::Int(s.statements() as i64),
                    Value::str(&s.state.lock()),
                ])
            })
            .collect()
    }
}

/// `sys.transactions`: a single row of transaction-manager state —
/// logical clock, the current writer's timestamp (null when idle), the
/// snapshot watermark, and lifetime commit/abort/park totals.
struct TransactionsView;

impl SystemView for TransactionsView {
    fn name(&self) -> &'static str {
        "transactions"
    }
    fn help(&self) -> &'static str {
        "transaction-manager state: clock, writer, watermark, totals"
    }
    fn fields(&self) -> Vec<Attribute> {
        vec![
            Attribute::own("clock", int8()),
            Attribute::own("write_ts", int8()),
            Attribute::own("watermark", int8()),
            Attribute::own("active_snapshots", int8()),
            Attribute::own("committed", int8()),
            Attribute::own("aborted", int8()),
            Attribute::own("parked", int8()),
            Attribute::own("pending_reclaims", int8()),
        ]
    }
    fn rows(&self, cx: &SysCtx<'_>) -> Vec<Value> {
        let txn = cx.db.store.storage().txn().clone();
        vec![Value::Tuple(vec![
            Value::Int(txn.clock() as i64),
            txn.current_write_ts()
                .map(|ts| Value::Int(ts as i64))
                .unwrap_or(Value::Null),
            Value::Int(txn.watermark() as i64),
            Value::Int(txn.active_count() as i64),
            Value::Int(txn.committed_total() as i64),
            Value::Int(txn.aborted_total() as i64),
            Value::Int(txn.parked_total() as i64),
            Value::Int(txn.pending_reclaims() as i64),
        ])]
    }
}

/// `sys.collections`: one row per named top-level collection, sorted
/// by name, with live member count and recorded `analyze` statistics —
/// `fresh` says whether the stats' row count still matches the live
/// member count.
struct CollectionsView;

impl SystemView for CollectionsView {
    fn name(&self) -> &'static str {
        "collections"
    }
    fn help(&self) -> &'static str {
        "named collections with member counts and analyze-stats freshness"
    }
    fn fields(&self) -> Vec<Attribute> {
        vec![
            Attribute::own("name", Type::varchar()),
            Attribute::own("members", int8()),
            Attribute::own("analyzed", Type::boolean()),
            Attribute::own("analyzed_rows", int8()),
            Attribute::own("stats_attrs", int8()),
            Attribute::own("fresh", Type::boolean()),
        ]
    }
    fn rows(&self, cx: &SysCtx<'_>) -> Vec<Value> {
        let mut names: Vec<&String> = cx
            .cat
            .named
            .iter()
            .filter(|(_, o)| o.is_collection)
            .map(|(n, _)| n)
            .collect();
        names.sort();
        names
            .into_iter()
            .map(|name| {
                let obj = &cx.cat.named[name];
                let members = cx.db.store.member_count(obj.oid).unwrap_or(0) as i64;
                let stats = cx.cat.stats.get(name);
                let (analyzed, rows, attrs) = match stats {
                    Some(e) => (
                        true,
                        e.stats.row_count as i64,
                        e.stats.attrs.len() as i64,
                    ),
                    None => (false, 0, 0),
                };
                Value::Tuple(vec![
                    Value::str(name),
                    Value::Int(members),
                    Value::Bool(analyzed),
                    if analyzed { Value::Int(rows) } else { Value::Null },
                    Value::Int(attrs),
                    Value::Bool(analyzed && rows == members),
                ])
            })
            .collect()
    }
}

/// `sys.slow_queries`: the slow-query log, slowest first, each entry
/// attributed to its originating session id and statement verb. Empty
/// unless the database was built with tracing on.
struct SlowQueriesView;

impl SystemView for SlowQueriesView {
    fn name(&self) -> &'static str {
        "slow_queries"
    }
    fn help(&self) -> &'static str {
        "over-threshold statements, slowest first, with session and verb"
    }
    fn fields(&self) -> Vec<Attribute> {
        vec![
            Attribute::own("statement", Type::varchar()),
            Attribute::own("verb", Type::varchar()),
            Attribute::own("session", int8()),
            Attribute::own("elapsed_ns", int8()),
        ]
    }
    fn rows(&self, cx: &SysCtx<'_>) -> Vec<Value> {
        cx.db
            .slow_queries()
            .into_iter()
            .map(|q| {
                Value::Tuple(vec![
                    Value::str(&q.statement),
                    Value::str(q.verb),
                    Value::Int(q.session_id as i64),
                    Value::Int(q.elapsed_ns as i64),
                ])
            })
            .collect()
    }
}

/// `sys.trace_spans`: the tracer's retained spans, oldest first
/// (children complete before their parents). Empty unless the database
/// was built with tracing on.
struct TraceSpansView;

impl SystemView for TraceSpansView {
    fn name(&self) -> &'static str {
        "trace_spans"
    }
    fn help(&self) -> &'static str {
        "completed tracing spans, oldest first"
    }
    fn fields(&self) -> Vec<Attribute> {
        vec![
            Attribute::own("id", int8()),
            Attribute::own("parent", int8()),
            Attribute::own("name", Type::varchar()),
            Attribute::own("detail", Type::varchar()),
            Attribute::own("start_ns", int8()),
            Attribute::own("elapsed_ns", int8()),
        ]
    }
    fn rows(&self, cx: &SysCtx<'_>) -> Vec<Value> {
        cx.db
            .trace_spans()
            .into_iter()
            .map(|s| {
                Value::Tuple(vec![
                    Value::Int(s.id as i64),
                    s.parent.map(|p| Value::Int(p as i64)).unwrap_or(Value::Null),
                    Value::str(s.name),
                    Value::str(&s.detail),
                    Value::Int(s.start_ns as i64),
                    Value::Int(s.elapsed_ns as i64),
                ])
            })
            .collect()
    }
}

/// `sys.replication`: one row describing this database's replication
/// role. On a replica: the replay horizon, current lag, and the
/// configured shed limit. On a primary with live subscribers: the
/// durable frontier and shipped totals. Fields that do not apply to
/// the role are null. The source slot is inspected with `try_lock`
/// only — never blocking behind a replication poll.
struct ReplicationView;

impl SystemView for ReplicationView {
    fn name(&self) -> &'static str {
        "replication"
    }
    fn help(&self) -> &'static str {
        "replication role and progress: horizon/lag or shipped frontier"
    }
    fn fields(&self) -> Vec<Attribute> {
        vec![
            Attribute::own("role", Type::varchar()),
            Attribute::own("horizon", int8()),
            Attribute::own("lag", int8()),
            Attribute::own("max_lag", int8()),
            Attribute::own("durable_lsn", int8()),
            Attribute::own("shipped_records", int8()),
            Attribute::own("shipped_bytes", int8()),
        ]
    }
    fn rows(&self, cx: &SysCtx<'_>) -> Vec<Value> {
        if let Some(state) = &cx.db.replica {
            return vec![Value::Tuple(vec![
                Value::str("replica"),
                Value::Int(state.horizon.load(Ordering::SeqCst) as i64),
                Value::Int(state.lag.load(Ordering::SeqCst) as i64),
                state
                    .max_lag
                    .map(|l| Value::Int(l as i64))
                    .unwrap_or(Value::Null),
                Value::Null,
                Value::Null,
                Value::Null,
            ])];
        }
        // Primary side: peek at the source without blocking. A held
        // lock (a replication poll in flight) or no live source both
        // report a bare primary row.
        let source = cx
            .db
            .repl
            .try_lock()
            .and_then(|slot| slot.source.upgrade());
        match source {
            Some(src) => vec![Value::Tuple(vec![
                Value::str("primary"),
                Value::Null,
                Value::Null,
                Value::Null,
                Value::Int(src.durable_lsn() as i64),
                Value::Int(src.shipped_records() as i64),
                Value::Int(src.shipped_bytes() as i64),
            ])],
            None => vec![Value::Tuple(vec![
                Value::str("primary"),
                Value::Null,
                Value::Null,
                Value::Null,
                Value::Null,
                Value::Null,
                Value::Null,
            ])],
        }
    }
}

// ---------------------------------------------------------------------------
// Registry plumbing on Database.
// ---------------------------------------------------------------------------

/// The built-in providers, in registration order.
pub(crate) fn builtin_views() -> Vec<Arc<dyn SystemView>> {
    vec![
        Arc::new(MetricsView),
        Arc::new(SessionsView),
        Arc::new(TransactionsView),
        Arc::new(CollectionsView),
        Arc::new(SlowQueriesView),
        Arc::new(TraceSpansView),
        Arc::new(ReplicationView),
    ]
}

impl Database {
    /// Register an additional `sys.<name>` virtual collection (layers
    /// above the engine add their own — the wire server does not need
    /// this, but embedders can). Fails if the name is taken.
    pub fn register_system_view(&self, view: Arc<dyn SystemView>) -> crate::DbResult<()> {
        let mut views = self.sysviews.write();
        if views.iter().any(|v| v.name() == view.name()) {
            return Err(crate::DbError::Catalog(format!(
                "system view 'sys.{}' already exists",
                view.name()
            )));
        }
        views.push(view);
        Ok(())
    }

    /// The definition of `sys.<name>`, if registered.
    pub(crate) fn system_view_def(&self, name: &str) -> Option<SystemViewDef> {
        self.sysviews
            .read()
            .iter()
            .find(|v| v.name() == name)
            .map(|v| v.def())
    }

    /// Every registered system view's definition.
    pub(crate) fn system_view_defs(&self) -> Vec<SystemViewDef> {
        self.sysviews.read().iter().map(|v| v.def()).collect()
    }

    /// Every registered system view's name, help line, and fields
    /// (drives the documentation and the docs drift gate).
    pub fn system_view_schemas(&self) -> Vec<(String, String, Vec<Attribute>)> {
        self.sysviews
            .read()
            .iter()
            .map(|v| (v.name().to_string(), v.help().to_string(), v.fields()))
            .collect()
    }

    /// Materialize `sys.<name>`'s rows against `cat` — one consistent
    /// snapshot per call (the scan cursor calls this exactly once per
    /// open). Clones the provider handle out of the registry lock so
    /// row materialization never holds it.
    pub(crate) fn system_view_rows_with(&self, cat: &Catalog, name: &str) -> Option<Vec<Value>> {
        let view = self
            .sysviews
            .read()
            .iter()
            .find(|v| v.name() == name)
            .cloned()?;
        let cx = SysCtx { db: self, cat };
        Some(view.rows(&cx))
    }

    /// Validate that every registered view's rows match its declared
    /// schema arity (used by tests; cheap sanity net for embedders'
    /// custom views).
    #[doc(hidden)]
    pub fn check_system_views(self: &Arc<Self>) -> Result<(), String> {
        let cat = self.catalog.read();
        let views: Vec<Arc<dyn SystemView>> = self.sysviews.read().clone();
        let mut arities = HashMap::new();
        for v in &views {
            arities.insert(v.name(), v.fields().len());
        }
        for v in &views {
            let cx = SysCtx { db: self, cat: &cat };
            for row in v.rows(&cx) {
                match row {
                    Value::Tuple(fields) if fields.len() == arities[v.name()] => {}
                    other => {
                        return Err(format!(
                            "sys.{}: row {other:?} does not match the declared arity {}",
                            v.name(),
                            arities[v.name()]
                        ))
                    }
                }
            }
        }
        Ok(())
    }
}
