//! The unified statement-execution surface: [`Client`].
//!
//! A [`Client`] is anything that can execute EXCESS statements and
//! hand back structured responses — the in-process [`Session`], and
//! the wire-protocol `RemoteSession` in the `exodus-server` crate. The
//! trait pins the surface both expose, and the shared conformance
//! suite (`tests/client_conformance.rs` at the workspace root) runs
//! the same scenarios against both implementations so local and remote
//! behavior cannot drift.

use excess_exec::QueryResult;

use crate::database::{Explanation, Observation, Response, Session};
use crate::error::{DbError, DbResult};

/// A statement-execution endpoint: the surface shared by the
/// in-process [`Session`] and the remote wire-protocol client.
///
/// Semantics every implementation must honor (the conformance suite
/// enforces them):
///
/// * `run` executes statements in order and stops at the first error;
///   earlier statements stay applied (each is its own autocommit
///   transaction unless an explicit transaction is open).
/// * `query` is `run` + "the last statement must be a retrieve".
/// * `explain` plans without executing; `explain_analyze` executes
///   exactly once.
/// * Errors carry stable codes: [`DbError::code`] and
///   [`DbError::is_retryable`] agree across implementations.
pub trait Client {
    /// Run one or more statements, returning one [`Response`] each.
    fn run(&mut self, src: &str) -> DbResult<Vec<Response>>;

    /// Run statements and return the last one's rows (it must be a
    /// retrieve).
    fn query(&mut self, src: &str) -> DbResult<QueryResult> {
        let responses = self.run(src)?;
        match responses.into_iter().next_back() {
            Some(Response::Rows(r)) => Ok(r),
            _ => Err(DbError::Catalog(
                "the last statement was not a retrieve".into(),
            )),
        }
    }

    /// Explain a statement's physical plan without executing it.
    fn explain(&mut self, src: &str) -> DbResult<Explanation>;

    /// Execute a statement — exactly once — with per-operator
    /// profiling and return the annotated plan.
    fn explain_analyze(&mut self, src: &str) -> DbResult<Explanation>;

    /// Execute a statement — exactly once — and report the metric
    /// activity it caused (`observe <stmt>`).
    fn observe(&mut self, src: &str) -> DbResult<Observation>;
}

impl Client for Session {
    fn run(&mut self, src: &str) -> DbResult<Vec<Response>> {
        Session::run(self, src)
    }

    fn query(&mut self, src: &str) -> DbResult<QueryResult> {
        Session::query(self, src)
    }

    fn explain(&mut self, src: &str) -> DbResult<Explanation> {
        Session::explain(self, src)
    }

    fn explain_analyze(&mut self, src: &str) -> DbResult<Explanation> {
        Session::explain_analyze(self, src)
    }

    fn observe(&mut self, src: &str) -> DbResult<Observation> {
        Session::observe(self, src)
    }
}
