//! Database-level observability: the metrics bundle every layer
//! registers into, and the statement-verb taxonomy.
//!
//! One [`DbMetrics`] lives on the [`crate::Database`] when metrics are
//! enabled (the default). Construction registers the session-layer
//! instruments (`db_*`) and collects the handles the hot path bumps;
//! storage and executor instruments are registered onto the same
//! registry by their own crates. See `docs/OBSERVABILITY.md` for the
//! full catalogue.

use std::sync::Arc;

use excess_exec::ExecMetrics;
use excess_lang::Stmt;
use exodus_obs::{Counter, Gauge, Histogram, MetricsRegistry, LATENCY_BUCKETS_NS};

/// Statement verbs with a dedicated `db_statements_<verb>_total`
/// counter. Everything else (DDL, grants, ranges, ...) lands in
/// `other`.
pub(crate) const VERBS: [&str; 8] = [
    "retrieve", "append", "delete", "replace", "execute", "explain", "observe", "other",
];

/// Index into [`VERBS`] / [`DbMetrics::statements_by_verb`] for a
/// statement.
pub(crate) fn verb_index(stmt: &Stmt) -> usize {
    match stmt {
        Stmt::Retrieve { .. } => 0,
        Stmt::Append { .. } => 1,
        Stmt::Delete { .. } => 2,
        Stmt::Replace { .. } => 3,
        Stmt::Execute { .. } => 4,
        Stmt::Explain { .. } => 5,
        Stmt::Observe { .. } => 6,
        _ => 7,
    }
}

/// The database's metric handles plus the registry they live in.
pub(crate) struct DbMetrics {
    /// The registry all layers register into; [`crate::Database::metrics_snapshot`]
    /// reads it.
    pub(crate) registry: Arc<MetricsRegistry>,
    /// Executor instruments, shared with every statement's `ExecCtx`.
    pub(crate) exec: Arc<ExecMetrics>,
    /// Statements executed (any verb, successful or not).
    pub(crate) statements: Arc<Counter>,
    /// Per-verb statement counters, indexed by [`verb_index`].
    pub(crate) statements_by_verb: [Arc<Counter>; VERBS.len()],
    /// Statements that returned an error.
    pub(crate) errors: Arc<Counter>,
    /// Currently open sessions.
    pub(crate) active_sessions: Arc<Gauge>,
    /// Wall-clock statement latency.
    pub(crate) statement_ns: Arc<Histogram>,
    /// Statements that entered the slow-query log.
    pub(crate) slow_queries: Arc<Counter>,
}

impl DbMetrics {
    /// Register the session layer's instruments on `registry` (the
    /// storage and executor instruments are assumed to be registered by
    /// their own layers).
    pub(crate) fn register(registry: Arc<MetricsRegistry>, exec: Arc<ExecMetrics>) -> DbMetrics {
        let statements_by_verb = VERBS.map(|verb| {
            registry.counter(
                &format!("db_statements_{verb}_total"),
                &format!("Statements executed with the {verb} verb."),
            )
        });
        DbMetrics {
            statements: registry.counter(
                "db_statements_total",
                "Statements executed (any verb, successful or not).",
            ),
            statements_by_verb,
            errors: registry.counter("db_errors_total", "Statements that returned an error."),
            active_sessions: registry.gauge("db_active_sessions", "Currently open sessions."),
            statement_ns: registry.histogram(
                "db_statement_ns",
                "Wall-clock statement latency.",
                LATENCY_BUCKETS_NS,
            ),
            slow_queries: registry.counter(
                "db_slow_queries_total",
                "Statements that entered the slow-query log.",
            ),
            exec,
            registry,
        }
    }
}
