//! WAL-shipping replication, database half (protocol: `docs/REPLICATION.md`).
//!
//! The storage layer already ships and replays physical log entries
//! ([`exodus_storage::ReplicationSource`] / [`exodus_storage::ReplicaApplier`]);
//! what it cannot ship is the catalog, which lives only in memory on the
//! primary. This module closes that gap with an **epoch-versioned
//! catalog image**: every batch a [`Source`] hands out carries the
//! primary's current catalog epoch, and when the subscriber's epoch is
//! stale the batch also carries a full serialized catalog — store
//! roots, the type registry, named objects, functions and procedures
//! (bodies travel as EXCESS source text and are re-parsed), indexes,
//! optimizer statistics, and the authorization tables.
//!
//! A [`Replica`] is then an ordinary [`Database`] over an ordinary
//! recovered volume, with three twists:
//!
//! * a pump ([`Replica::pump`]) polls its [`ReplStream`], feeds entries
//!   to the applier under a replay latch, and swaps in fresh catalog
//!   images;
//! * its sessions are read-only — only `retrieve` (without `into`) and
//!   `range of` execute; everything else is refused with the stable
//!   [`DbError::ReadOnly`] code 1007, because any write path would
//!   append to the replica's local log and diverge it from the
//!   primary's;
//! * reads pin a snapshot at the **replay horizon** — the last replayed
//!   commit timestamp — and can be shed with [`DbError::Lagging`]
//!   (code 2004) when replay trails the primary past a configured
//!   bound.
//!
//! Custom ADTs registered at runtime on the primary are **not**
//! shipped (an ADT is executable code, not data); replicas resolve the
//! built-in ADTs only. DDL visibility on a replica is eventually
//! consistent: a catalog image can momentarily lead the replayed data
//! (the epoch bumps before the DDL's commit record is durable), so a
//! query against a just-created collection may transiently error until
//! the next batch lands.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};

use parking_lot::RwLock;

use excess_lang::{parse_program, OperatorTable, Stmt};
use excess_sema::{CollectionStats, FunctionDef, IndexInfo, NamedObject, ProcedureDef};
use exodus_obs::{Histogram, TraceConfig, COUNT_BUCKETS};
use exodus_storage::wal::{decode_frames, encode_frame};
use exodus_storage::{
    Durability, FileId, Oid, RecordId, ReplicaApplier, ReplicationSource, StorageManager, WalEntry,
};
use extra_model::typeio::{read_qty, write_qty};
use extra_model::{ObjectStore, QualType, StoreRoots, TypeId, TypeRegistry};

use crate::catalog::{Auth, Catalog, StatsEntry};
use crate::database::{sync_operators, Database};
use crate::error::{DbError, DbResult};

/// Serialization version of the catalog image (bump on layout change;
/// primary and replica must agree).
const IMAGE_VERSION: u32 = 1;

// ---------------------------------------------------------------------------
// Byte helpers (little-endian, length-prefixed; the same dialect as the
// storage layer's frame codec).
// ---------------------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    put_u32(out, b.len() as u32);
    out.extend_from_slice(b);
}

fn truncated() -> DbError {
    DbError::Net("malformed replication payload: truncated".into())
}

fn get_u8(buf: &[u8], pos: &mut usize) -> DbResult<u8> {
    let v = *buf.get(*pos).ok_or_else(truncated)?;
    *pos += 1;
    Ok(v)
}

fn get_u32(buf: &[u8], pos: &mut usize) -> DbResult<u32> {
    let end = pos
        .checked_add(4)
        .filter(|&e| e <= buf.len())
        .ok_or_else(truncated)?;
    let v = u32::from_le_bytes(buf[*pos..end].try_into().expect("4 bytes"));
    *pos = end;
    Ok(v)
}

fn get_u64(buf: &[u8], pos: &mut usize) -> DbResult<u64> {
    let end = pos
        .checked_add(8)
        .filter(|&e| e <= buf.len())
        .ok_or_else(truncated)?;
    let v = u64::from_le_bytes(buf[*pos..end].try_into().expect("8 bytes"));
    *pos = end;
    Ok(v)
}

fn get_str(buf: &[u8], pos: &mut usize) -> DbResult<String> {
    let len = get_u32(buf, pos)? as usize;
    let end = pos
        .checked_add(len)
        .filter(|&e| e <= buf.len())
        .ok_or_else(truncated)?;
    let s = std::str::from_utf8(&buf[*pos..end])
        .map_err(|_| DbError::Net("malformed replication payload: invalid utf-8".into()))?
        .to_string();
    *pos = end;
    Ok(s)
}

fn get_bytes<'a>(buf: &'a [u8], pos: &mut usize) -> DbResult<&'a [u8]> {
    let len = get_u32(buf, pos)? as usize;
    let end = pos
        .checked_add(len)
        .filter(|&e| e <= buf.len())
        .ok_or_else(truncated)?;
    let b = &buf[*pos..end];
    *pos = end;
    Ok(b)
}

// ---------------------------------------------------------------------------
// The batch: what one poll of the stream returns.
// ---------------------------------------------------------------------------

/// One unit of the replication protocol: committed log entries after
/// the subscriber's cursor, the primary's durable frontier (the lag
/// denominator), and — when the subscriber's catalog epoch is stale —
/// a full catalog image.
pub struct Batch {
    /// The primary's catalog epoch at poll time.
    pub epoch: u64,
    /// A serialized catalog image, present iff the subscriber polled
    /// with a different (stale) epoch.
    pub image: Option<Vec<u8>>,
    /// Committed log entries with LSNs after the subscriber's cursor.
    pub entries: Vec<WalEntry>,
    /// The primary's durable log frontier at poll time.
    pub durable_lsn: u64,
}

impl Batch {
    /// Wire encoding (the `T_REPL_BATCH` payload): epoch, durable
    /// frontier, optional image, then the raw CRC-framed log entries.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_u64(&mut out, self.epoch);
        put_u64(&mut out, self.durable_lsn);
        match &self.image {
            Some(img) => {
                out.push(1);
                put_bytes(&mut out, img);
            }
            None => out.push(0),
        }
        for e in &self.entries {
            encode_frame(e, &mut out);
        }
        out
    }

    /// Decode a [`Batch::to_bytes`] payload. The trailing entry frames
    /// are CRC-checked by the storage codec.
    pub fn from_bytes(buf: &[u8]) -> DbResult<Batch> {
        let mut pos = 0;
        let epoch = get_u64(buf, &mut pos)?;
        let durable_lsn = get_u64(buf, &mut pos)?;
        let image = match get_u8(buf, &mut pos)? {
            0 => None,
            1 => Some(get_bytes(buf, &mut pos)?.to_vec()),
            _ => {
                return Err(DbError::Net(
                    "malformed replication payload: bad image tag".into(),
                ))
            }
        };
        let entries = decode_frames(&buf[pos..])?;
        Ok(Batch {
            epoch,
            image,
            entries,
            durable_lsn,
        })
    }
}

/// A subscriber's view of the primary: one poll returns one [`Batch`].
/// Implemented in-process by [`InProcessStream`] and over the wire by
/// the server crate's replication client.
pub trait ReplStream: Send {
    /// Fetch committed entries with LSNs after `after_lsn` (at most
    /// `max_records`), plus a catalog image when `have_epoch` is stale.
    fn poll(&mut self, after_lsn: u64, have_epoch: u64, max_records: usize) -> DbResult<Batch>;
}

// ---------------------------------------------------------------------------
// The primary side.
// ---------------------------------------------------------------------------

/// The primary-side endpoint: wraps the storage-level
/// [`ReplicationSource`] (which pins log GC) and stamps each batch
/// with the catalog epoch, attaching a fresh catalog image when the
/// subscriber's is stale. One source is shared by every subscriber of
/// a database ([`Database::replication_source`]).
pub struct Source {
    db: Weak<Database>,
    inner: ReplicationSource,
}

impl Source {
    /// Serve one poll. `have_epoch` 0 (no catalog yet) always gets an
    /// image — the primary's epoch starts at 1.
    pub fn poll(&self, after_lsn: u64, have_epoch: u64, max_records: usize) -> DbResult<Batch> {
        let db = self
            .db
            .upgrade()
            .ok_or_else(|| DbError::Net("the primary database has shut down".into()))?;
        // Epoch before image: a concurrent DDL between the two reads
        // makes the image newer than the stamped epoch, so the
        // subscriber re-fetches it on the next poll — redundant, never
        // wrong. Image before entries: the data in the batch can run
        // ahead of the catalog (unreachable pages — harmless), while
        // the reverse (catalog naming pages the entries don't cover
        // yet) is confined to the epoch-vs-commit-durability race
        // documented on the module.
        let epoch = db.catalog_epoch.load(Ordering::SeqCst);
        let image = (have_epoch != epoch).then(|| encode_catalog_image(&db));
        let (entries, durable_lsn) = self.inner.fetch(after_lsn, max_records)?;
        Ok(Batch {
            epoch,
            image,
            entries,
            durable_lsn,
        })
    }

    /// The primary's durable log frontier.
    pub fn durable_lsn(&self) -> u64 {
        self.inner.durable_lsn()
    }

    /// Records shipped through this source (`repl_shipped_records_total`).
    pub fn shipped_records(&self) -> u64 {
        self.inner.shipped_records()
    }

    /// Frame bytes shipped through this source (`repl_shipped_bytes_total`).
    pub fn shipped_bytes(&self) -> u64 {
        self.inner.shipped_bytes()
    }

    /// Sequence number of the segment currently being shipped from.
    pub fn segment_seq(&self) -> u64 {
        self.inner.segment_seq()
    }
}

/// The database's cached source handle plus the register-once flag for
/// the `repl_shipped_*` metric family.
#[derive(Default)]
pub(crate) struct SourceSlot {
    pub(crate) source: Weak<Source>,
    pub(crate) metrics_registered: bool,
}

impl Database {
    /// The database's replication source, shared by every subscriber
    /// (created on first use; kept alive by the subscribers
    /// themselves). While any subscriber holds it, checkpoints stop
    /// pruning the log. Requires a WAL-backed database; fails on a
    /// primary whose pre-subscription history was already pruned (see
    /// `docs/REPLICATION.md` on bootstrap).
    pub fn replication_source(self: &Arc<Self>) -> DbResult<Arc<Source>> {
        if self.replica.is_some() {
            return Err(DbError::ReadOnly(
                "cascading replication is not supported; subscribe to the primary".into(),
            ));
        }
        let wal = self.store.storage().pool().wal().cloned().ok_or_else(|| {
            DbError::Catalog(
                "replication requires a WAL-backed primary; open it with path(..) and \
                 durability buffered or fsync"
                    .into(),
            )
        })?;
        let (src, register) = {
            let mut slot = self.repl.lock();
            if let Some(src) = slot.source.upgrade() {
                return Ok(src);
            }
            let inner = ReplicationSource::new(wal.clone())?;
            let src = Arc::new(Source {
                db: Arc::downgrade(self),
                inner,
            });
            slot.source = Arc::downgrade(&src);
            let register = !slot.metrics_registered;
            slot.metrics_registered = true;
            (src, register)
        };
        if register {
            if let Some(reg) = self.metrics_registry() {
                // The closures navigate a weak chain so the registry
                // keeps neither the database nor the source alive; a
                // lapsed source reads as 0 until the next subscriber.
                let w = Arc::downgrade(self);
                reg.counter_fn(
                    "repl_shipped_records_total",
                    "WAL records shipped to replication subscribers.",
                    move || {
                        w.upgrade()
                            .and_then(|db| db.repl.lock().source.upgrade())
                            .map(|s| s.shipped_records())
                            .unwrap_or(0)
                    },
                );
                let w = Arc::downgrade(self);
                reg.counter_fn(
                    "repl_shipped_bytes_total",
                    "WAL frame bytes shipped to replication subscribers.",
                    move || {
                        w.upgrade()
                            .and_then(|db| db.repl.lock().source.upgrade())
                            .map(|s| s.shipped_bytes())
                            .unwrap_or(0)
                    },
                );
                reg.gauge_fn(
                    "repl_shipped_segments",
                    "Sequence number of the primary log segment currently being shipped.",
                    move || wal.segment_seq() as i64,
                );
            }
        }
        Ok(src)
    }
}

/// A [`ReplStream`] over an in-process primary: the replica and the
/// primary share an address space (the "in-process pair" of
/// `docs/REPLICATION.md`).
pub struct InProcessStream {
    source: Arc<Source>,
}

impl InProcessStream {
    /// Subscribe to a primary.
    pub fn new(source: Arc<Source>) -> InProcessStream {
        InProcessStream { source }
    }
}

impl ReplStream for InProcessStream {
    fn poll(&mut self, after_lsn: u64, have_epoch: u64, max_records: usize) -> DbResult<Batch> {
        self.source.poll(after_lsn, have_epoch, max_records)
    }
}

// ---------------------------------------------------------------------------
// The catalog image.
// ---------------------------------------------------------------------------

/// Serialize the primary's full catalog under the shared catalog lock.
/// Deterministic (maps are emitted sorted); function and procedure
/// bodies travel as EXCESS source text and are re-parsed on the
/// replica.
pub(crate) fn encode_catalog_image(db: &Database) -> Vec<u8> {
    let cat = db.catalog.read();
    let mut out = Vec::new();
    put_u32(&mut out, IMAGE_VERSION);
    let roots = db.store.roots();
    put_u64(&mut out, roots.table_root);
    put_u64(&mut out, roots.backrefs_root);
    put_u64(&mut out, roots.children_root);
    put_u64(&mut out, roots.file);
    put_bytes(&mut out, &db.store.export_image());
    put_bytes(&mut out, &cat.types.to_bytes());

    let mut named: Vec<&NamedObject> = cat.named.values().collect();
    named.sort_by(|a, b| a.name.cmp(&b.name));
    put_u32(&mut out, named.len() as u32);
    for o in named {
        put_str(&mut out, &o.name);
        put_u64(&mut out, o.oid.0);
        write_qty(&o.qty, &mut out);
        out.push(o.is_collection as u8);
    }

    put_u32(&mut out, cat.functions.len() as u32);
    for f in &cat.functions {
        put_str(&mut out, &f.name);
        put_u32(&mut out, f.params.len() as u32);
        for (p, q) in &f.params {
            put_str(&mut out, p);
            write_qty(q, &mut out);
        }
        write_qty(&f.returns, &mut out);
        put_str(&mut out, &f.body.to_string());
        match f.attached_to {
            Some(t) => {
                out.push(1);
                put_u32(&mut out, t.0);
            }
            None => out.push(0),
        }
    }

    let mut procs: Vec<&ProcedureDef> = cat.procedures.values().collect();
    procs.sort_by(|a, b| a.name.cmp(&b.name));
    put_u32(&mut out, procs.len() as u32);
    for p in procs {
        put_str(&mut out, &p.name);
        put_u32(&mut out, p.params.len() as u32);
        for (name, q) in &p.params {
            put_str(&mut out, name);
            write_qty(q, &mut out);
        }
        put_u32(&mut out, p.body.len() as u32);
        for s in &p.body {
            put_str(&mut out, &s.to_string());
        }
    }

    put_u32(&mut out, cat.indexes.len() as u32);
    for i in &cat.indexes {
        put_str(&mut out, &i.name);
        put_str(&mut out, &i.collection);
        put_str(&mut out, &i.attr);
        put_u64(&mut out, i.root);
        out.push(i.unique as u8);
    }

    let mut stats: Vec<(&String, &StatsEntry)> = cat.stats.iter().collect();
    stats.sort_by_key(|(name, _)| name.as_str());
    put_u32(&mut out, stats.len() as u32);
    for (name, entry) in stats {
        put_str(&mut out, name);
        put_bytes(&mut out, &entry.stats.to_bytes());
        put_u64(&mut out, entry.record.page);
        put_u32(&mut out, entry.record.slot as u32);
    }
    match cat.stats_file {
        Some(f) => {
            out.push(1);
            put_u64(&mut out, f.0);
        }
        None => out.push(0),
    }

    put_bytes(&mut out, &cat.auth.to_bytes());
    out
}

/// A decoded catalog image: the fixed store roots, the store's own
/// type/collection tables (applied via [`ObjectStore::import_image`]),
/// and a rebuilt [`Catalog`] (built-in ADTs only).
pub(crate) struct CatalogImage {
    pub(crate) roots: StoreRoots,
    pub(crate) store_image: Vec<u8>,
    pub(crate) catalog: Catalog,
}

/// Decode an [`encode_catalog_image`] payload, re-parsing function and
/// procedure bodies against the built-in operator table.
pub(crate) fn decode_catalog_image(buf: &[u8]) -> DbResult<CatalogImage> {
    let mut pos = 0;
    let version = get_u32(buf, &mut pos)?;
    if version != IMAGE_VERSION {
        return Err(DbError::Net(format!(
            "catalog image version {version} does not match this build's {IMAGE_VERSION}; \
             upgrade primary and replica together"
        )));
    }
    let roots = StoreRoots {
        table_root: get_u64(buf, &mut pos)?,
        backrefs_root: get_u64(buf, &mut pos)?,
        children_root: get_u64(buf, &mut pos)?,
        file: get_u64(buf, &mut pos)?,
    };
    let store_image = get_bytes(buf, &mut pos)?.to_vec();

    let mut cat = Catalog::new();
    cat.types = TypeRegistry::from_bytes(get_bytes(buf, &mut pos)?)?;

    for _ in 0..get_u32(buf, &mut pos)? {
        let name = get_str(buf, &mut pos)?;
        let oid = Oid(get_u64(buf, &mut pos)?);
        let qty = read_qty(buf, &mut pos)?;
        let is_collection = get_u8(buf, &mut pos)? != 0;
        cat.named.insert(
            name.clone(),
            NamedObject {
                name,
                oid,
                qty,
                is_collection,
            },
        );
    }

    // Bodies re-parse against the built-in ADTs' operator table; a
    // replica never sees custom-ADT operators (module docs).
    let mut ops = OperatorTable::new();
    sync_operators(&mut ops, &cat.adts);
    let parse_one = |src: &str, ops: &OperatorTable| -> DbResult<Stmt> {
        parse_program(src, ops)?
            .into_iter()
            .next()
            .ok_or_else(|| DbError::Net("catalog image carried an empty statement body".into()))
    };

    for _ in 0..get_u32(buf, &mut pos)? {
        let name = get_str(buf, &mut pos)?;
        let mut params: Vec<(String, QualType)> = Vec::new();
        for _ in 0..get_u32(buf, &mut pos)? {
            let p = get_str(buf, &mut pos)?;
            params.push((p, read_qty(buf, &mut pos)?));
        }
        let returns = read_qty(buf, &mut pos)?;
        let body = parse_one(&get_str(buf, &mut pos)?, &ops)?;
        let attached_to = match get_u8(buf, &mut pos)? {
            0 => None,
            _ => Some(TypeId(get_u32(buf, &mut pos)?)),
        };
        cat.functions.push(FunctionDef {
            name,
            params,
            returns,
            body,
            attached_to,
        });
    }

    for _ in 0..get_u32(buf, &mut pos)? {
        let name = get_str(buf, &mut pos)?;
        let mut params: Vec<(String, QualType)> = Vec::new();
        for _ in 0..get_u32(buf, &mut pos)? {
            let p = get_str(buf, &mut pos)?;
            params.push((p, read_qty(buf, &mut pos)?));
        }
        let mut body = Vec::new();
        for _ in 0..get_u32(buf, &mut pos)? {
            body.push(parse_one(&get_str(buf, &mut pos)?, &ops)?);
        }
        cat.procedures
            .insert(name.clone(), ProcedureDef { name, params, body });
    }

    for _ in 0..get_u32(buf, &mut pos)? {
        let name = get_str(buf, &mut pos)?;
        let collection = get_str(buf, &mut pos)?;
        let attr = get_str(buf, &mut pos)?;
        let root = get_u64(buf, &mut pos)?;
        let unique = get_u8(buf, &mut pos)? != 0;
        cat.indexes.push(IndexInfo {
            name,
            collection,
            attr,
            root,
            unique,
        });
    }

    for _ in 0..get_u32(buf, &mut pos)? {
        let name = get_str(buf, &mut pos)?;
        let stats = CollectionStats::from_bytes(get_bytes(buf, &mut pos)?)
            .ok_or_else(|| DbError::Net("catalog image carried malformed statistics".into()))?;
        let page = get_u64(buf, &mut pos)?;
        let slot = get_u32(buf, &mut pos)? as u16;
        cat.stats.insert(
            name,
            StatsEntry {
                stats,
                record: RecordId { page, slot },
            },
        );
    }
    cat.stats_file = match get_u8(buf, &mut pos)? {
        0 => None,
        _ => Some(FileId(get_u64(buf, &mut pos)?)),
    };

    cat.auth = Auth::from_bytes(get_bytes(buf, &mut pos)?)
        .ok_or_else(|| DbError::Net("catalog image carried malformed auth tables".into()))?;

    Ok(CatalogImage {
        roots,
        store_image,
        catalog: cat,
    })
}

// ---------------------------------------------------------------------------
// The replica side.
// ---------------------------------------------------------------------------

/// Shared replica state the session layer consults on every statement:
/// the replay latch, the published horizon, and the lag gauge.
pub struct ReplicaState {
    /// Readers hold this shared per statement; the pump holds it
    /// exclusively per batch, so a query never observes a half-applied
    /// B+-tree split.
    pub(crate) latch: RwLock<()>,
    /// Last replayed commit timestamp (monotonic; the `repl_horizon`
    /// gauge). Snapshots taken by replica reads pin exactly here.
    pub(crate) horizon: AtomicU64,
    /// Records between the primary's durable frontier and the replica's
    /// applied cursor, as of the last poll (`repl_lag_records`).
    pub(crate) lag: AtomicU64,
    /// Shed reads with [`DbError::Lagging`] when `lag` exceeds this.
    pub(crate) max_lag: Option<u64>,
}

/// Configuration for [`Replica::connect`].
pub struct ReplicaOptions {
    /// Buffer-pool pages for the replica's local store (default 4096).
    pub pool_pages: usize,
    /// Durability of the replica's local log (default
    /// [`Durability::Fsync`]; [`Durability::None`] is refused — a
    /// replica *is* its log).
    pub durability: Durability,
    /// Shed reads with [`DbError::Lagging`] (code 2004) when replay
    /// trails the primary's durable frontier by more than this many
    /// records (default: never shed).
    pub max_lag: Option<u64>,
    /// Register metrics (`repl_*` and the whole engine family) on the
    /// replica database (default true).
    pub metrics: bool,
    /// Tracing configuration for the replica database (default off;
    /// enables the `repl` span around each pump).
    pub trace: Option<TraceConfig>,
    /// Records fetched per poll (default 512).
    pub batch_records: usize,
}

impl Default for ReplicaOptions {
    fn default() -> Self {
        ReplicaOptions {
            pool_pages: 4096,
            durability: Durability::Fsync,
            max_lag: None,
            metrics: true,
            trace: None,
            batch_records: 512,
        }
    }
}

/// A read replica: an ordinary database continuously replaying the
/// primary's log. Open sessions via [`Replica::database`]; drive
/// replay via [`Replica::pump`] (the server's `--replica-of` mode runs
/// a pump thread; tests call it synchronously).
pub struct Replica {
    db: Arc<Database>,
    stream: Box<dyn ReplStream>,
    applier: ReplicaApplier,
    state: Arc<ReplicaState>,
    epoch: u64,
    batch_records: usize,
    lag_hist: Option<Arc<Histogram>>,
}

impl Replica {
    /// Connect a replica at `path` to an in-process primary
    /// (equivalent to `--replica-of` for two databases sharing a
    /// process).
    pub fn in_process(
        primary: &Arc<Database>,
        path: impl Into<PathBuf>,
        opts: ReplicaOptions,
    ) -> DbResult<Replica> {
        let source = primary.replication_source()?;
        Replica::connect(path, Box::new(InProcessStream::new(source)), opts)
    }

    /// Open (or re-open) the replica volume at `path`, run ordinary
    /// crash recovery on its local log, then catch up over `stream`
    /// until the primary's durable frontier is reached and a catalog
    /// image is in hand. Restarting a crashed replica is exactly this
    /// call again — replay resumes from the recovered cursor.
    pub fn connect(
        path: impl Into<PathBuf>,
        mut stream: Box<dyn ReplStream>,
        opts: ReplicaOptions,
    ) -> DbResult<Replica> {
        if opts.durability == Durability::None {
            return Err(DbError::Catalog(
                "a replica needs a write-ahead log; use durability buffered or fsync".into(),
            ));
        }
        let path = path.into();
        let (sm, report) = StorageManager::open(&path, opts.pool_pages, opts.durability)?;
        let mut applier = ReplicaApplier::new(sm)?;
        // Initial catch-up, before any session can observe the store:
        // the first poll carries epoch 0, so the primary always sends
        // an image (its epoch starts at 1).
        let mut epoch = 0u64;
        let mut image: Option<Vec<u8>> = None;
        loop {
            let mut batch = stream.poll(applier.applied_lsn(), epoch, opts.batch_records)?;
            if let Some(img) = batch.image.take() {
                image = Some(img);
                epoch = batch.epoch;
            }
            let drained = batch.entries.is_empty();
            applier.ingest(&batch.entries)?;
            if drained && applier.applied_lsn() >= batch.durable_lsn {
                break;
            }
        }
        let image =
            image.ok_or_else(|| DbError::Net("the primary never sent a catalog image".into()))?;
        let decoded = decode_catalog_image(&image)?;
        let store = ObjectStore::attach(applier.storage().clone(), &decoded.roots);
        store.import_image(&decoded.store_image)?;
        let state = Arc::new(ReplicaState {
            latch: RwLock::new(()),
            horizon: AtomicU64::new(applier.horizon()),
            lag: AtomicU64::new(0),
            max_lag: opts.max_lag,
        });
        let db = Database::assemble_replica(
            store,
            decoded.catalog,
            Some(report),
            state.clone(),
            opts.metrics,
            opts.trace,
        );
        let lag_hist = db.metrics_registry().map(|reg| {
            let counters = applier.counters();
            let c = counters.records.clone();
            reg.counter_fn(
                "repl_replayed_records_total",
                "Shipped WAL records appended to the replica's local log.",
                move || c.load(Ordering::Relaxed),
            );
            let c = counters.units.clone();
            reg.counter_fn(
                "repl_replayed_units_total",
                "Committed units replayed into the replica's store.",
                move || c.load(Ordering::Relaxed),
            );
            let c = counters.checkpoints.clone();
            reg.counter_fn(
                "repl_replayed_checkpoints_total",
                "Shipped checkpoints executed locally (flush + local log GC).",
                move || c.load(Ordering::Relaxed),
            );
            let wal = applier.wal();
            reg.gauge_fn(
                "repl_replayed_segments",
                "Sequence number of the replica log segment currently being written.",
                move || wal.segment_seq() as i64,
            );
            let st = state.clone();
            reg.gauge_fn(
                "repl_horizon",
                "Last replayed commit timestamp; replica reads pin here.",
                move || st.horizon.load(Ordering::Relaxed) as i64,
            );
            let st = state.clone();
            reg.gauge_fn(
                "repl_lag_records",
                "Records between the primary's durable frontier and the replica's \
                 applied cursor, as of the last poll.",
                move || st.lag.load(Ordering::Relaxed) as i64,
            );
            reg.histogram(
                "repl_lag",
                "Replay lag in records, observed at each poll.",
                COUNT_BUCKETS,
            )
        });
        Ok(Replica {
            db,
            stream,
            applier,
            state,
            epoch,
            batch_records: opts.batch_records,
            lag_hist,
        })
    }

    /// One replication round trip: poll the stream, apply the entries
    /// under the replay latch, swap in a fresh catalog image if one
    /// arrived, then publish the new horizon and lag. Returns the
    /// number of entries applied (0 = caught up at poll time).
    pub fn pump(&mut self) -> DbResult<u64> {
        let batch = self
            .stream
            .poll(self.applier.applied_lsn(), self.epoch, self.batch_records)?;
        let _span = self.db.start_span(
            "repl",
            format!(
                "{} records, durable lsn {}{}",
                batch.entries.len(),
                batch.durable_lsn,
                if batch.image.is_some() {
                    ", catalog image"
                } else {
                    ""
                }
            ),
        );
        let applied = batch.entries.len() as u64;
        // Entries first, then the image: the data may briefly run
        // ahead of the catalog (harmless), never the other way within
        // a batch.
        if !batch.entries.is_empty() {
            let _replay = self.state.latch.write();
            self.applier.ingest(&batch.entries)?;
        }
        if let Some(image) = &batch.image {
            let decoded = decode_catalog_image(image)?;
            let _replay = self.state.latch.write();
            self.db.store.import_image(&decoded.store_image)?;
            let mut cat = self.db.catalog.write();
            *cat = decoded.catalog;
            self.epoch = batch.epoch;
        }
        let lag = batch.durable_lsn.saturating_sub(self.applier.applied_lsn());
        self.state
            .horizon
            .store(self.applier.horizon(), Ordering::Relaxed);
        self.state.lag.store(lag, Ordering::Relaxed);
        if let Some(h) = &self.lag_hist {
            h.observe(lag);
        }
        Ok(applied)
    }

    /// Pump until a poll returns nothing and the applied cursor covers
    /// the primary's durable frontier.
    pub fn pump_until_caught_up(&mut self) -> DbResult<()> {
        loop {
            if self.pump()? == 0 && self.state.lag.load(Ordering::Relaxed) == 0 {
                return Ok(());
            }
        }
    }

    /// The replica database. Sessions opened on it are read-only:
    /// `retrieve` and `range of` execute (pinned at the replay
    /// horizon); everything else fails with [`DbError::ReadOnly`].
    pub fn database(&self) -> Arc<Database> {
        self.db.clone()
    }

    /// Last replayed commit timestamp (the `repl_horizon` gauge).
    pub fn horizon(&self) -> u64 {
        self.state.horizon.load(Ordering::Relaxed)
    }

    /// Replay lag in records as of the last poll.
    pub fn lag_records(&self) -> u64 {
        self.state.lag.load(Ordering::Relaxed)
    }

    /// The replica's applied log cursor (its local durable LSN).
    pub fn applied_lsn(&self) -> u64 {
        self.applier.applied_lsn()
    }
}
