//! DML execution: retrieve, append, delete, replace, and procedure
//! invocation — with the paper's update semantics (own/ref/own-ref
//! integrity, set-oriented updates over all satisfying bindings) and
//! index maintenance.

use std::collections::HashMap;

use excess_algebra::Physical;
use excess_exec::{
    prepare, run_plan, Bindings, BufferDelta, Env, ExecCtx, ExecNode, MemberId, PlanIndex,
    PlanProfiler, QueryProfile, QueryResult, RowBatch,
};
use excess_lang::{AppendValue, Expr, FromBinding, Privilege, Stmt, Target};
use excess_sema::resolve::Resolver;
use excess_sema::{CheckedRetrieve, RangeEnv, SemaCtx};
use exodus_storage::btree::BTree;
use exodus_storage::{Oid, RecordId};
use extra_model::{AdtRegistry, ModelError, Ownership, QualType, Type, Value};

use crate::catalog::{Catalog, CatalogView};
use crate::database::{default_value, Database};
use crate::error::{DbError, DbResult};

/// Pre-bound variables (function/procedure parameters).
#[derive(Debug, Clone, Default)]
pub struct Params {
    /// name → (static type, runtime value).
    pub vars: HashMap<String, (QualType, Value)>,
}

/// Maximum procedure nesting depth.
const MAX_PROC_DEPTH: u32 = 32;

fn base_env(params: &Params) -> Env {
    let mut env = Env::new();
    for (name, (_, v)) in &params.vars {
        let id = match v {
            Value::Ref(o) => MemberId::Object(*o),
            _ => MemberId::None,
        };
        env.bind(name, v.clone(), id);
    }
    env
}

/// EXPLAIN plumbing for update statements: captures the bindings-query
/// plan and, under `analyze`, its execution profile. Without `analyze`
/// the statement is only planned — [`collect_bindings`] returns an empty
/// batch, so the update applies to nothing and mutates no state.
#[derive(Default)]
pub(crate) struct ExplainSink {
    /// Execute the statement (`explain analyze`) or only plan it.
    pub analyze: bool,
    /// The rendered physical plan of the bindings query.
    pub plan: Option<String>,
    /// Execution profile (`analyze` only).
    pub profile: Option<QueryProfile>,
}

/// Build a profiler for a compiled plan, annotated with the physical
/// plan's labels and row estimates.
fn make_profiler(db: &Database, cat: &Catalog, node: &ExecNode, phys: &Physical) -> PlanProfiler {
    let view = CatalogView {
        cat,
        store: &db.store,
        db: Some(db),
    };
    let annot = excess_algebra::cost::annotate_preorder(phys, &view);
    PlanProfiler::new(PlanIndex::new(node, Some(&annot)))
}

/// Check, plan and compile a retrieve-shaped statement.
fn plan_query(
    db: &Database,
    cat: &Catalog,
    ranges: &RangeEnv,
    params: &Params,
    stmt: &Stmt,
) -> DbResult<(ExecNode, CheckedRetrieve, Physical)> {
    let view = CatalogView {
        cat,
        store: &db.store,
        db: Some(db),
    };
    let mut ctx = SemaCtx::new(&cat.types, &cat.adts, &view);
    for (name, (qty, _)) in &params.vars {
        ctx.vars.insert(name.clone(), qty.clone());
    }
    // Statement-local ranges: session declarations plus this statement's
    // from clauses (aggregate `over` resolution must see both).
    let mut local = ranges.clone();
    if let Stmt::Retrieve { from, .. } = stmt {
        for fb in from {
            local.declare(&fb.var, false, fb.path.clone());
        }
    }
    let resolver = Resolver::new(&ctx, &local);
    let checked = {
        let _span = db.span("sema", "");
        resolver.check_retrieve(stmt)?
    };
    let (plan, node) = {
        let _span = db.span("plan", "");
        let plan = excess_algebra::plan_retrieve_dop(
            stmt,
            &checked,
            &ctx,
            *db.planner.read(),
            db.worker_threads(),
        )?;
        let node = prepare(&plan, &ctx, &local)?;
        (plan, node)
    };
    Ok((node, checked, plan))
}

/// Read-authorization: the user needs `read` on every named object a
/// query touches directly.
fn check_read(cat: &Catalog, user: &str, checked: &CheckedRetrieve, stmt: &Stmt) -> DbResult<()> {
    let mut names: Vec<String> = Vec::new();
    for b in &checked.bindings {
        match &b.root {
            excess_sema::RootSource::Collection(o) | excess_sema::RootSource::Object(o) => {
                names.push(o.name.clone())
            }
            // System views surface operational state, not stored data:
            // introspection needs no object privilege.
            excess_sema::RootSource::Var(_) | excess_sema::RootSource::System(_) => {}
        }
    }
    if let Stmt::Retrieve {
        targets,
        qual,
        order_by,
        ..
    } = stmt
    {
        let mut exprs: Vec<&Expr> = targets.iter().map(|t| &t.expr).collect();
        if let Some(q) = qual {
            exprs.push(q);
        }
        if let Some((e, _)) = order_by {
            exprs.push(e);
        }
        for e in exprs {
            for v in excess_algebra::rules::free_vars(e) {
                if cat.named.contains_key(&v) {
                    names.push(v);
                }
            }
        }
    }
    names.sort();
    names.dedup();
    for n in names {
        if !cat.auth.allowed(user, &n, Privilege::Read) {
            return Err(DbError::Auth(format!("{user} may not read {n}")));
        }
    }
    // EXCESS function calls need execute (§4.2.3: schema types can be made
    // abstract by granting access only through their functions).
    if let Stmt::Retrieve {
        targets,
        qual,
        order_by,
        ..
    } = stmt
    {
        let mut fns: Vec<String> = Vec::new();
        let mut visit = |e: &Expr| collect_function_names(cat, e, &mut fns);
        for t in targets {
            visit(&t.expr);
        }
        if let Some(q) = qual {
            visit(q);
        }
        if let Some((e, _)) = order_by {
            visit(e);
        }
        fns.sort();
        fns.dedup();
        for f in fns {
            if !cat.auth.allowed(user, &f, Privilege::Execute) {
                return Err(DbError::Auth(format!("{user} may not execute {f}")));
            }
        }
    }
    Ok(())
}

/// Collect names of EXCESS functions (not ADT functions) referenced by an
/// expression.
fn collect_function_names(cat: &Catalog, e: &Expr, out: &mut Vec<String>) {
    use excess_lang::Aggregate;
    match e {
        Expr::Call { recv, name, args } => {
            if cat.functions.iter().any(|f| &f.name == name) {
                out.push(name.clone());
            }
            if let Some(r) = recv {
                collect_function_names(cat, r, out);
            }
            for a in args {
                collect_function_names(cat, a, out);
            }
        }
        Expr::Agg(Aggregate {
            func,
            arg,
            by,
            qual,
            ..
        }) => {
            if cat.functions.iter().any(|f| &f.name == func) {
                out.push(func.clone());
            }
            if let Some(a) = arg {
                collect_function_names(cat, a, out);
            }
            for b in by {
                collect_function_names(cat, b, out);
            }
            if let Some(q) = qual {
                collect_function_names(cat, q, out);
            }
        }
        Expr::Path(b, _) => collect_function_names(cat, b, out),
        Expr::Index(b, i) => {
            collect_function_names(cat, b, out);
            collect_function_names(cat, i, out);
        }
        Expr::Unary(_, a) => collect_function_names(cat, a, out),
        Expr::Binary(_, a, b) => {
            collect_function_names(cat, a, out);
            collect_function_names(cat, b, out);
        }
        Expr::UserOp(_, args) | Expr::SetLit(args) => {
            for a in args {
                collect_function_names(cat, a, out);
            }
        }
        Expr::TupleLit(fields) => {
            for (_, v) in fields {
                collect_function_names(cat, v, out);
            }
        }
        Expr::Var(_) | Expr::Lit(_) => {}
    }
}

/// Render the physical plan of a retrieve-shaped statement without
/// executing it.
pub(crate) fn explain_plan(
    db: &Database,
    cat: &Catalog,
    ranges: &RangeEnv,
    user: &str,
    stmt: &Stmt,
    params: &Params,
) -> DbResult<String> {
    let (_, checked, phys) = plan_query(db, cat, ranges, params, stmt)?;
    check_read(cat, user, &checked, stmt)?;
    Ok(phys.to_string())
}

/// The snapshot a statement executing under the session's write
/// transaction evaluates at: the writer's own timestamp. The writer
/// gate is held by the calling session for the whole statement, so the
/// storage layer's current write timestamp is unambiguously ours.
/// `TS_LATEST` outside a transaction (single-session read paths).
fn write_snap(db: &Database) -> u64 {
    db.store
        .storage()
        .txn()
        .current_write_ts()
        .unwrap_or(exodus_storage::TS_LATEST)
}

/// Execute a retrieve (no `into`; read-only — runs under a shared
/// catalog lock). With `profile`, per-operator metrics land on the
/// result's `profile` field. Reads at the calling transaction's own
/// timestamp; autocommit readers use [`retrieve_at`] with a registered
/// snapshot instead.
pub fn retrieve(
    db: &Database,
    cat: &Catalog,
    ranges: &RangeEnv,
    user: &str,
    stmt: &Stmt,
    params: &Params,
    profile: bool,
) -> DbResult<QueryResult> {
    retrieve_at(db, cat, ranges, user, stmt, params, profile, write_snap(db))
}

/// [`retrieve`] pinned to an explicit snapshot timestamp: every storage
/// read resolves the record version visible at `snap`.
#[allow(clippy::too_many_arguments)]
pub fn retrieve_at(
    db: &Database,
    cat: &Catalog,
    ranges: &RangeEnv,
    user: &str,
    stmt: &Stmt,
    params: &Params,
    profile: bool,
    snap: u64,
) -> DbResult<QueryResult> {
    let (node, checked, phys) = plan_query(db, cat, ranges, params, stmt)?;
    check_read(cat, user, &checked, stmt)?;
    let view = CatalogView {
        cat,
        store: &db.store,
        db: Some(db),
    };
    let mut ctx = ExecCtx::new(&db.store, &cat.types, &cat.adts, &view)
        .with_batch_size(db.batch_size())
        .with_workers(db.worker_threads())
        .with_snapshot(snap)
        .with_metrics(db.exec_metrics());
    let before = profile.then(|| db.store.storage().pool().stats());
    if profile {
        ctx = ctx.with_profiler(make_profiler(db, cat, &node, &phys));
    }
    let env = base_env(params);
    let t0 = std::time::Instant::now();
    let mut result = {
        let _span = db.span("execute", "");
        run_plan(&node, &ctx, &env)?
    };
    if let Some(p) = ctx.profiler.take() {
        let delta = before.map(|b| BufferDelta::between(&b, &db.store.storage().pool().stats()));
        result.profile = Some(p.finish(
            t0.elapsed().as_nanos() as u64,
            result.len() as u64,
            db.worker_threads(),
            delta,
        ));
    }
    drop(ctx);
    Ok(result)
}

/// Execute `retrieve into`: run the query, then materialize a new named
/// snapshot set (needs the catalog write lock).
pub fn retrieve_into(
    db: &Database,
    cat: &mut Catalog,
    ranges: &RangeEnv,
    user: &str,
    stmt: &Stmt,
    params: &Params,
    profile: bool,
) -> DbResult<QueryResult> {
    let (node, checked, phys) = plan_query(db, cat, ranges, params, stmt)?;
    check_read(cat, user, &checked, stmt)?;
    let view = CatalogView {
        cat,
        store: &db.store,
        db: Some(db),
    };
    let mut ctx = ExecCtx::new(&db.store, &cat.types, &cat.adts, &view)
        .with_batch_size(db.batch_size())
        .with_workers(db.worker_threads())
        .with_snapshot(write_snap(db))
        .with_metrics(db.exec_metrics());
    let before = profile.then(|| db.store.storage().pool().stats());
    if profile {
        ctx = ctx.with_profiler(make_profiler(db, cat, &node, &phys));
    }
    let env = base_env(params);
    let t0 = std::time::Instant::now();
    let mut result = {
        let _span = db.span("execute", "");
        run_plan(&node, &ctx, &env)?
    };
    if let Some(p) = ctx.profiler.take() {
        let delta = before.map(|b| BufferDelta::between(&b, &db.store.storage().pool().stats()));
        result.profile = Some(p.finish(
            t0.elapsed().as_nanos() as u64,
            result.len() as u64,
            db.worker_threads(),
            delta,
        ));
    }
    drop(ctx);

    if let Stmt::Retrieve {
        into: Some(name), ..
    } = stmt
    {
        if cat.named.contains_key(name.as_str()) {
            return Err(DbError::Catalog(format!(
                "the name '{name}' is already in use"
            )));
        }
        // Snapshot semantics: own-mode tuples; reference-valued outputs
        // are stored as plain refs (not integrity-tracked).
        let attrs: Vec<extra_model::Attribute> = checked
            .output
            .iter()
            .map(|(n, q)| {
                let mode = match q.mode {
                    Ownership::Own => Ownership::Own,
                    _ => Ownership::Ref,
                };
                extra_model::Attribute {
                    name: n.clone(),
                    qty: QualType {
                        mode,
                        ty: q.ty.clone(),
                    },
                }
            })
            .collect();
        let elem = QualType::own(Type::Tuple(attrs));
        let anchor = db.store.create_collection(&elem)?;
        for row in &result.rows {
            db.store
                .append_member(&cat.types, anchor, Value::Tuple(row.clone()))?;
        }
        cat.named.insert(
            name.clone(),
            excess_sema::NamedObject {
                name: name.clone(),
                oid: anchor,
                qty: QualType::own(Type::Set(Box::new(elem))),
                is_collection: true,
            },
        );
    }
    Ok(result)
}

/// Collect the satisfying bindings for an update statement as one
/// materialized [`RowBatch`] — every satisfying binding (values plus
/// update identities) is computed *before* any mutation, preserving the
/// paper's set-oriented update semantics. `exprs` are all expressions
/// whose variables must be bound; `extra_from` forces a binding for an
/// update-target collection.
#[allow(clippy::too_many_arguments)]
fn collect_bindings(
    db: &Database,
    cat: &Catalog,
    ranges: &RangeEnv,
    params: &Params,
    exprs: Vec<Expr>,
    extra_from: Vec<FromBinding>,
    qual: Option<Expr>,
    explain: Option<&mut ExplainSink>,
) -> DbResult<(RowBatch, CheckedRetrieve)> {
    let targets: Vec<Target> = exprs
        .into_iter()
        .map(|e| Target {
            name: None,
            expr: e,
        })
        .collect();
    let stmt = Stmt::Retrieve {
        into: None,
        targets: if targets.is_empty() {
            vec![Target {
                name: None,
                expr: Expr::Lit(excess_lang::Lit::Int(1)),
            }]
        } else {
            targets
        },
        from: extra_from,
        qual,
        order_by: None,
    };
    let (node, checked, phys) = plan_query(db, cat, ranges, params, &stmt)?;
    let profiling = match explain {
        Some(sink) => {
            sink.plan = Some(phys.to_string());
            if !sink.analyze {
                // Plan-only EXPLAIN: no bindings means every update
                // applies to nothing and mutates no state.
                return Ok((RowBatch::new(), checked));
            }
            Some(sink)
        }
        None => None,
    };
    let ExecNode::Project { input, .. } = &node else {
        return Err(DbError::Catalog("update plan has no projection".into()));
    };
    let view = CatalogView {
        cat,
        store: &db.store,
        db: Some(db),
    };
    let mut ctx = ExecCtx::new(&db.store, &cat.types, &cat.adts, &view)
        .with_batch_size(db.batch_size())
        .with_workers(db.worker_threads())
        .with_snapshot(write_snap(db))
        .with_metrics(db.exec_metrics());
    let before = profiling
        .as_ref()
        .map(|_| db.store.storage().pool().stats());
    if profiling.is_some() {
        ctx = ctx.with_profiler(make_profiler(db, cat, &node, &phys));
    }
    let env = base_env(params);
    let t0 = std::time::Instant::now();
    let index = ctx.profiler.as_ref().map(|p| p.index());
    let proj_slot = index.and_then(|ix| ix.slot_of(&node));
    let mut all = RowBatch::new();
    let exec_span = db.span("execute", "");
    let mut cur = input.cursor_profiled(RowBatch::single(&env), index);
    while let Some(batch) = cur.next(&ctx)? {
        ctx.prof_in(proj_slot, batch.len());
        all.append(batch);
    }
    drop(exec_span);
    if let (Some(sink), Some(p)) = (profiling, ctx.profiler.take()) {
        if let Some(slot) = proj_slot {
            p.record_ns(slot, t0.elapsed().as_nanos() as u64);
            p.record_out(slot, all.len());
        }
        let delta = before.map(|b| BufferDelta::between(&b, &db.store.storage().pool().stats()));
        sink.profile = Some(p.finish(
            t0.elapsed().as_nanos() as u64,
            all.len() as u64,
            db.worker_threads(),
            delta,
        ));
    }
    Ok((all, checked))
}

/// Key bytes for a member's indexed attribute (dereferencing ref-mode
/// members). `None` for nulls — indexes do not cover null keys.
pub fn member_attr_key(
    db: &Database,
    member: &Value,
    pos: usize,
    adts: &AdtRegistry,
) -> DbResult<Option<Vec<u8>>> {
    let mut v = member.clone();
    while let Value::Ref(oid) = v {
        v = db.store.value_of(oid)?;
    }
    let field = match v {
        Value::Tuple(mut fields) if pos < fields.len() => fields.swap_remove(pos),
        _ => return Ok(None),
    };
    if field.is_null() {
        return Ok(None);
    }
    Ok(field.key_encode(adts))
}

fn attr_pos_of(cat: &Catalog, db: &Database, elem: &QualType, attr: &str) -> DbResult<usize> {
    let view = CatalogView {
        cat,
        store: &db.store,
        db: Some(db),
    };
    let ctx = SemaCtx::new(&cat.types, &cat.adts, &view);
    Ok(ctx.attr_pos(elem, attr)?)
}

/// One index maintenance entry: `(root page, key bytes, unique, attr)`.
type IndexEntry = (u64, Vec<u8>, bool, String);

fn index_entries_for(
    db: &Database,
    cat: &Catalog,
    collection: &str,
    anchor: Oid,
    member: &Value,
) -> DbResult<Vec<IndexEntry>> {
    let mut out = Vec::new();
    let elem = db.store.collection_elem(anchor)?;
    for idx in cat.indexes.iter().filter(|i| i.collection == collection) {
        let pos = attr_pos_of(cat, db, &elem, &idx.attr)?;
        if let Some(key) = member_attr_key(db, member, pos, &cat.adts)? {
            out.push((idx.root, key, idx.unique, idx.attr.clone()));
        }
    }
    Ok(out)
}

/// Reject a prospective member whose unique-key values already exist.
/// Call *before* mutating, so violations leave no partial state.
fn probe_unique(db: &Database, entries: &[IndexEntry]) -> DbResult<()> {
    for (root, key, unique, attr) in entries {
        if *unique
            && !BTree::open(*root)
                .lookup(db.store.storage().pool(), key)?
                .is_empty()
        {
            return Err(DbError::Model(ModelError::Integrity(format!(
                "key violation: a member with this '{attr}' already exists"
            ))));
        }
    }
    Ok(())
}

fn index_insert(db: &Database, entries: &[IndexEntry], rid: RecordId) -> DbResult<()> {
    // Defensive re-check (the statement-level probe should have run).
    for (root, key, unique, attr) in entries {
        if *unique {
            let existing = BTree::open(*root).lookup(db.store.storage().pool(), key)?;
            if existing.iter().any(|v| *v != rid.pack()) {
                return Err(DbError::Model(ModelError::Integrity(format!(
                    "key violation: a member with this '{attr}' already exists"
                ))));
            }
        }
    }
    for (root, key, _, _) in entries {
        BTree::open(*root).insert(db.store.storage().pool(), key, rid.pack(), false)?;
    }
    Ok(())
}

fn index_remove(db: &Database, entries: &[IndexEntry], rid: RecordId) -> DbResult<()> {
    for (root, key, _, _) in entries {
        BTree::open(*root).delete(db.store.storage().pool(), key, rid.pack())?;
    }
    Ok(())
}

fn collection_name_of(cat: &Catalog, anchor: Oid) -> Option<String> {
    cat.named
        .values()
        .find(|o| o.is_collection && o.oid == anchor)
        .map(|o| o.name.clone())
}

/// Remove every index entry pointing at an object (via its memberships).
fn unindex_object(db: &Database, cat: &Catalog, oid: Oid) -> DbResult<()> {
    let member = Value::Ref(oid);
    for (anchor, rid) in db.store.memberships(oid)? {
        if let Some(name) = collection_name_of(cat, anchor) {
            let entries = index_entries_for(db, cat, &name, anchor, &member)?;
            index_remove(db, &entries, rid)?;
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Append
// ---------------------------------------------------------------------------

/// Build a member value for a collection element type from `append`
/// assignments.
fn member_from_assignments(
    cat: &Catalog,
    elem: &QualType,
    assignments: &[(String, Value)],
) -> DbResult<Value> {
    let Type::Schema(tid) = elem.ty else {
        return Err(DbError::Catalog(
            "attribute assignments require a tuple-typed element; append a value instead".into(),
        ));
    };
    let st = cat.types.get(tid);
    for (name, _) in assignments {
        if st.attribute(name).is_none() {
            return Err(DbError::Model(ModelError::UnknownAttribute {
                ty: st.name.clone(),
                attr: name.clone(),
            }));
        }
    }
    let fields: Vec<Value> = st
        .attributes()
        .map(|a| {
            assignments
                .iter()
                .find(|(n, _)| *n == a.name)
                .map(|(_, v)| v.clone())
                .unwrap_or_else(|| default_value(&a.qty, &cat.types))
        })
        .collect();
    let tuple = Value::Tuple(fields);
    tuple.conforms(&QualType::own(Type::Schema(tid)), &cat.types, &cat.adts)?;
    Ok(tuple)
}

/// Insert one member into a collection, creating the object for
/// reference-mode elements; maintains indexes.
fn insert_member(
    db: &Database,
    cat: &Catalog,
    name: &str,
    anchor: Oid,
    value: Value,
) -> DbResult<()> {
    let elem = db.store.collection_elem(anchor)?;
    let member = match elem.mode {
        Ownership::Own => {
            // Value semantics: copy through references.
            let mut v = value;
            while let Value::Ref(oid) = v {
                v = db.store.value_of(oid)?;
            }
            v.conforms(&elem, &cat.types, &cat.adts)?;
            v
        }
        Ownership::Ref | Ownership::OwnRef => match value {
            v @ Value::Ref(_) => v,
            Value::Tuple(fields) => {
                // A constructed tuple becomes a new object.
                let obj_q = QualType::own(elem.ty.clone());
                Value::Ref(
                    db.store
                        .create_object(&cat.types, &obj_q, Value::Tuple(fields))?,
                )
            }
            other => {
                return Err(DbError::Model(ModelError::TypeMismatch {
                    expected: "a reference or tuple".into(),
                    got: other.kind().into(),
                }))
            }
        },
    };
    let entries = index_entries_for(db, cat, name, anchor, &member)?;
    probe_unique(db, &entries)?;
    let rid = db.store.append_member(&cat.types, anchor, member)?;
    index_insert(db, &entries, rid)?;
    Ok(())
}

/// `append [to] target (...) [where q]`.
pub(crate) fn append(
    db: &Database,
    cat: &mut Catalog,
    ranges: &RangeEnv,
    user: &str,
    stmt: &Stmt,
    params: &Params,
    explain: Option<&mut ExplainSink>,
) -> DbResult<crate::database::Response> {
    let Stmt::Append {
        target,
        value,
        qual,
    } = stmt
    else {
        unreachable!("dispatch");
    };
    // Expressions that must be resolvable.
    let mut exprs: Vec<Expr> = Vec::new();
    match value {
        AppendValue::Assignments(assigns) => exprs.extend(assigns.iter().map(|(_, e)| e.clone())),
        AppendValue::Expr(e) => exprs.push(e.clone()),
    }

    match target {
        // append to <NamedCollection> ...
        Expr::Var(name)
            if cat
                .named
                .get(name)
                .map(|o| o.is_collection)
                .unwrap_or(false) =>
        {
            if !cat.auth.allowed(user, name, Privilege::Append) {
                return Err(DbError::Auth(format!("{user} may not append to {name}")));
            }
            let anchor = cat.named[name].oid;
            let (bindings, checked) = collect_bindings(
                db,
                cat,
                ranges,
                params,
                exprs,
                Vec::new(),
                qual.clone(),
                explain,
            )?;
            let vars = update_vars(params, &checked);
            let view = CatalogView {
                cat,
                store: &db.store,
                db: Some(db),
            };
            let ctx = ExecCtx::new(&db.store, &cat.types, &cat.adts, &view)
                .with_batch_size(db.batch_size())
                .with_workers(db.worker_threads())
                .with_snapshot(write_snap(db))
                .with_metrics(db.exec_metrics());
            let mut staged: Vec<Value> = Vec::new();
            for env in bindings.iter() {
                staged.push(eval_member_value(
                    db, cat, &ctx, &env, ranges, &vars, anchor, value,
                )?);
            }
            drop(ctx);
            let n = staged.len();
            for v in staged {
                insert_member(db, cat, name, anchor, v)?;
            }
            Ok(crate::database::Response::Done(format!(
                "appended {n} to {name}"
            )))
        }
        // append to <var-array object> <expr> — push.
        Expr::Var(name)
            if cat
                .named
                .get(name)
                .map(|o| !o.is_collection && matches!(o.qty.ty, Type::Array(None, _)))
                .unwrap_or(false) =>
        {
            let AppendValue::Expr(vexpr) = value else {
                return Err(DbError::Catalog(
                    "arrays take a value expression, not assignments".into(),
                ));
            };
            if !cat.auth.allowed(user, name, Privilege::Append) {
                return Err(DbError::Auth(format!("{user} may not append to {name}")));
            }
            let obj = cat.named[name].clone();
            let Type::Array(None, elem) = &obj.qty.ty else {
                unreachable!()
            };
            let elem = (**elem).clone();
            let (bindings, checked) = collect_bindings(
                db,
                cat,
                ranges,
                params,
                exprs,
                Vec::new(),
                qual.clone(),
                explain,
            )?;
            let vars = update_vars(params, &checked);
            let view = CatalogView {
                cat,
                store: &db.store,
                db: Some(db),
            };
            let ctx = ExecCtx::new(&db.store, &cat.types, &cat.adts, &view)
                .with_batch_size(db.batch_size())
                .with_workers(db.worker_threads())
                .with_snapshot(write_snap(db))
                .with_metrics(db.exec_metrics());
            let mut staged: Vec<Value> = Vec::new();
            for env in bindings.iter() {
                staged.push(eval_expr(db, cat, &ctx, &env, ranges, &vars, vexpr)?);
            }
            drop(ctx);
            let n = staged.len();
            for v in staged {
                v.conforms(&elem, &cat.types, &cat.adts)?;
                let mut arr = db.store.value_of(obj.oid)?;
                match &mut arr {
                    Value::Array(items) => items.push(v),
                    other => {
                        return Err(DbError::Model(ModelError::TypeMismatch {
                            expected: "an array".into(),
                            got: other.kind().into(),
                        }))
                    }
                }
                db.store.set_value(&cat.types, obj.oid, arr)?;
            }
            Ok(crate::database::Response::Done(format!(
                "appended {n} to {name}"
            )))
        }
        // append to <array>[i] <expr> — slot assignment.
        Expr::Index(_, _) => {
            let AppendValue::Expr(vexpr) = value else {
                return Err(DbError::Catalog(
                    "array slots take a value expression, not assignments".into(),
                ));
            };
            let Expr::Index(base, idx) = target else {
                unreachable!()
            };
            let Expr::Var(obj_name) = &**base else {
                return Err(DbError::Catalog(
                    "array slot assignment requires a named array object".into(),
                ));
            };
            let obj = cat
                .named
                .get(obj_name)
                .cloned()
                .ok_or_else(|| DbError::Catalog(format!("no named object '{obj_name}'")))?;
            if !cat.auth.allowed(user, obj_name, Privilege::Replace) {
                return Err(DbError::Auth(format!("{user} may not update {obj_name}")));
            }
            let Type::Array(_, elem) = &obj.qty.ty else {
                return Err(DbError::Catalog(format!("'{obj_name}' is not an array")));
            };
            let elem = (**elem).clone();
            let (bindings, checked) = collect_bindings(
                db,
                cat,
                ranges,
                params,
                vec![(**idx).clone(), vexpr.clone()],
                Vec::new(),
                qual.clone(),
                explain,
            )?;
            let vars = update_vars(params, &checked);
            let view = CatalogView {
                cat,
                store: &db.store,
                db: Some(db),
            };
            let ctx = ExecCtx::new(&db.store, &cat.types, &cat.adts, &view)
                .with_batch_size(db.batch_size())
                .with_workers(db.worker_threads())
                .with_snapshot(write_snap(db))
                .with_metrics(db.exec_metrics());
            let mut staged: Vec<(i64, Value)> = Vec::new();
            for env in bindings.iter() {
                let i = eval_expr(db, cat, &ctx, &env, ranges, &vars, idx)?.as_i64()?;
                let v = eval_expr(db, cat, &ctx, &env, ranges, &vars, vexpr)?;
                staged.push((i, v));
            }
            drop(ctx);
            for (i, v) in staged {
                let mut arr = db.store.value_of(obj.oid)?;
                match &mut arr {
                    Value::Array(items) => {
                        if i < 1 || i as usize > items.len() {
                            return Err(DbError::Model(ModelError::IndexOutOfRange {
                                index: i,
                                len: items.len(),
                            }));
                        }
                        v.conforms(&elem, &cat.types, &cat.adts)?;
                        items[i as usize - 1] = v;
                    }
                    other => {
                        return Err(DbError::Model(ModelError::TypeMismatch {
                            expected: "an array".into(),
                            got: other.kind().into(),
                        }))
                    }
                }
                db.store.set_value(&cat.types, obj.oid, arr)?;
            }
            Ok(crate::database::Response::Done(format!(
                "{obj_name} updated"
            )))
        }
        // append to <path>.<set attr> ... — nested set append.
        Expr::Path(_, _) => {
            let (root_var, steps) = flatten(target)?;
            let mut exprs2 = exprs.clone();
            exprs2.push(target.clone());
            let (bindings, checked) = collect_bindings(
                db,
                cat,
                ranges,
                params,
                exprs2,
                Vec::new(),
                qual.clone(),
                explain,
            )?;
            // Authorization: appending inside members of a collection.
            for b in &checked.bindings {
                if let excess_sema::RootSource::Collection(o) = &b.root {
                    if !cat.auth.allowed(user, &o.name, Privilege::Append) {
                        return Err(DbError::Auth(format!(
                            "{user} may not append into {}",
                            o.name
                        )));
                    }
                }
            }
            let elem = container_elem(db, cat, params, &checked, &root_var, &steps)?;
            let vars = update_vars(params, &checked);
            let view = CatalogView {
                cat,
                store: &db.store,
                db: Some(db),
            };
            let ctx = ExecCtx::new(&db.store, &cat.types, &cat.adts, &view)
                .with_batch_size(db.batch_size())
                .with_workers(db.worker_threads())
                .with_snapshot(write_snap(db))
                .with_metrics(db.exec_metrics());
            let mut staged: Vec<(UpdateSite, Value)> = Vec::new();
            for env in bindings.iter() {
                let member = match value {
                    AppendValue::Assignments(assigns) => {
                        let vals: Vec<(String, Value)> = assigns
                            .iter()
                            .map(|(n, e)| {
                                Ok((n.clone(), eval_expr(db, cat, &ctx, &env, ranges, &vars, e)?))
                            })
                            .collect::<DbResult<_>>()?;
                        let tuple = member_from_assignments(cat, &elem, &vals)?;
                        match elem.mode {
                            Ownership::Own => tuple,
                            _ => Value::Ref(db.store.create_object(
                                &cat.types,
                                &QualType::own(elem.ty.clone()),
                                tuple,
                            )?),
                        }
                    }
                    AppendValue::Expr(e) => eval_expr(db, cat, &ctx, &env, ranges, &vars, e)?,
                };
                let site = resolve_site(db, cat, &env, &root_var, &steps, &checked)?;
                staged.push((site, member));
            }
            drop(ctx);
            let n = staged.len();
            for (site, member) in staged {
                apply_container_edit(db, cat, site, ContainerEdit::Insert(member))?;
            }
            Ok(crate::database::Response::Done(format!("appended {n}")))
        }
        other => Err(DbError::Catalog(format!("cannot append to {other}"))),
    }
}

/// Evaluate the member value of a collection-level append for one env.
#[allow(clippy::too_many_arguments)]
fn eval_member_value(
    db: &Database,
    cat: &Catalog,
    ctx: &ExecCtx<'_>,
    env: &dyn Bindings,
    ranges: &RangeEnv,
    vars: &HashMap<String, QualType>,
    anchor: Oid,
    value: &AppendValue,
) -> DbResult<Value> {
    match value {
        AppendValue::Assignments(assigns) => {
            let elem = db.store.collection_elem(anchor)?;
            let vals: Vec<(String, Value)> = assigns
                .iter()
                .map(|(n, e)| Ok((n.clone(), eval_expr(db, cat, ctx, env, ranges, vars, e)?)))
                .collect::<DbResult<_>>()?;
            member_from_assignments(cat, &elem, &vals)
        }
        AppendValue::Expr(e) => eval_expr(db, cat, ctx, env, ranges, vars, e),
    }
}

/// Static types for the variables an update's expressions may mention:
/// parameters plus the checked bindings.
fn update_vars(params: &Params, checked: &CheckedRetrieve) -> HashMap<String, QualType> {
    let mut vars: HashMap<String, QualType> = params
        .vars
        .iter()
        .map(|(n, (q, _))| (n.clone(), q.clone()))
        .collect();
    for b in &checked.bindings {
        vars.insert(b.var.clone(), b.elem.clone());
    }
    vars
}

/// Compile and evaluate one expression in an environment.
fn eval_expr(
    db: &Database,
    cat: &Catalog,
    ctx: &ExecCtx<'_>,
    env: &dyn Bindings,
    ranges: &RangeEnv,
    vars: &HashMap<String, QualType>,
    e: &Expr,
) -> DbResult<Value> {
    let view = CatalogView {
        cat,
        store: &db.store,
        db: Some(db),
    };
    let mut sctx = SemaCtx::new(&cat.types, &cat.adts, &view);
    sctx.vars = vars.clone();
    let counter = std::cell::Cell::new(10_000);
    let compiler = excess_exec::Compiler::new(&sctx, ranges, &counter);
    let compiled = compiler.compile(e)?;
    Ok(excess_exec::eval::eval(&compiled, ctx, env)?)
}

// ---------------------------------------------------------------------------
// Delete / Replace plumbing
// ---------------------------------------------------------------------------

fn flatten(e: &Expr) -> DbResult<(String, Vec<String>)> {
    match e {
        Expr::Var(n) => Ok((n.clone(), Vec::new())),
        Expr::Path(b, a) => {
            let (root, mut steps) = flatten(b)?;
            steps.push(a.clone());
            Ok((root, steps))
        }
        other => Err(DbError::Catalog(format!(
            "unsupported update target {other}"
        ))),
    }
}

/// Where an update lands: a container inside an owner, or a member/object
/// directly.
#[derive(Debug)]
enum UpdateSite {
    /// Edit a set/array at `path` inside the value of `owner`.
    Container { owner: OwnerId, path: Vec<usize> },
}

/// The owner that must be rewritten.
#[derive(Debug, Clone, PartialEq)]
enum OwnerId {
    Object(Oid),
    Member { anchor: Oid, rid: RecordId },
}

#[derive(Debug)]
enum ContainerEdit {
    Insert(Value),
}

/// Static element type of the container `root.steps`.
fn container_elem(
    db: &Database,
    cat: &Catalog,
    params: &Params,
    checked: &CheckedRetrieve,
    root_var: &str,
    steps: &[String],
) -> DbResult<QualType> {
    let view = CatalogView {
        cat,
        store: &db.store,
        db: Some(db),
    };
    let ctx = SemaCtx::new(&cat.types, &cat.adts, &view);
    let mut cur = if let Some(b) = checked.bindings.iter().find(|b| b.var == root_var) {
        b.elem.clone()
    } else if let Some((q, _)) = params.vars.get(root_var) {
        q.clone()
    } else if let Some(obj) = cat.named.get(root_var) {
        obj.qty.clone()
    } else {
        return Err(DbError::Catalog(format!(
            "unknown update root '{root_var}'"
        )));
    };
    for s in steps {
        cur = ctx.attr_type(&cur, s)?;
    }
    match cur.ty.element() {
        Some(e) => Ok(e.clone()),
        None => Err(DbError::Catalog(format!(
            "'{root_var}.{}' is not a set or array",
            steps.join(".")
        ))),
    }
}

/// Resolve the owner object/record and in-value path for a nested update
/// target in one environment.
fn resolve_site(
    db: &Database,
    cat: &Catalog,
    env: &dyn Bindings,
    root_var: &str,
    steps: &[String],
    checked: &CheckedRetrieve,
) -> DbResult<UpdateSite> {
    let view = CatalogView {
        cat,
        store: &db.store,
        db: Some(db),
    };
    let ctx = SemaCtx::new(&cat.types, &cat.adts, &view);
    // Starting point: the root variable's value + identity, or a named
    // object.
    let (mut owner, mut value, mut qty): (OwnerId, Value, QualType) = if let Some(v) =
        env.value(root_var)
    {
        let qty = checked
            .bindings
            .iter()
            .find(|b| b.var == root_var)
            .map(|b| b.elem.clone())
            .ok_or_else(|| DbError::Catalog(format!("untyped update root '{root_var}'")))?;
        match env.ident(root_var) {
            MemberId::Object(oid) => (OwnerId::Object(oid), db.store.value_of(oid)?, qty),
            MemberId::Record { anchor, rid } => (OwnerId::Member { anchor, rid }, v.clone(), qty),
            MemberId::Nested { .. } | MemberId::None => {
                return Err(DbError::Catalog(format!(
                    "cannot update through '{root_var}' (no stable identity)"
                )))
            }
        }
    } else if let Some(obj) = cat.named.get(root_var) {
        (
            OwnerId::Object(obj.oid),
            db.store.value_of(obj.oid)?,
            obj.qty.clone(),
        )
    } else {
        return Err(DbError::Catalog(format!(
            "unknown update root '{root_var}'"
        )));
    };

    // Walk the steps; crossing a reference moves the owner.
    let mut path: Vec<usize> = Vec::new();
    for s in steps {
        // Dereference the current value if it is a ref.
        while let Value::Ref(oid) = value {
            owner = OwnerId::Object(oid);
            path.clear();
            value = db.store.value_of(oid)?;
        }
        let pos = ctx.attr_pos(&qty, s)?;
        qty = ctx.attr_type(&qty, s)?;
        path.push(pos);
        value = match value {
            Value::Tuple(mut fields) if pos < fields.len() => fields.swap_remove(pos),
            Value::Null => {
                return Err(DbError::Model(ModelError::Semantic(format!(
                    "null encountered at '{s}' while updating"
                ))))
            }
            other => {
                return Err(DbError::Model(ModelError::TypeMismatch {
                    expected: "a tuple".into(),
                    got: other.kind().into(),
                }))
            }
        };
    }
    Ok(UpdateSite::Container { owner, path })
}

/// Load an owner's current value.
fn owner_value(db: &Database, owner: &OwnerId) -> DbResult<Value> {
    match owner {
        OwnerId::Object(oid) => Ok(db.store.value_of(*oid)?),
        OwnerId::Member { rid, .. } => {
            let bytes = db.store.storage().read(*rid)?;
            Ok(extra_model::valueio::from_bytes(&bytes)?)
        }
    }
}

/// Write an owner's value back (maintaining integrity edges / indexes).
fn write_owner(db: &Database, cat: &Catalog, owner: OwnerId, value: Value) -> DbResult<()> {
    match owner {
        OwnerId::Object(oid) => {
            db.store.set_value(&cat.types, oid, value)?;
            Ok(())
        }
        OwnerId::Member { anchor, rid } => {
            let name = collection_name_of(cat, anchor);
            let old = owner_value(db, &OwnerId::Member { anchor, rid })?;
            if let Some(name) = &name {
                let old_entries = index_entries_for(db, cat, name, anchor, &old)?;
                let new_entries = index_entries_for(db, cat, name, anchor, &value)?;
                index_remove(db, &old_entries, rid)?;
                // Probe uniqueness before mutating; restore on violation.
                if let Err(e) = probe_unique(db, &new_entries) {
                    index_insert(db, &old_entries, rid)?;
                    return Err(e);
                }
                let new_rid = db.store.update_member(anchor, rid, &value)?;
                index_insert(db, &new_entries, new_rid)?;
            } else {
                db.store.update_member(anchor, rid, &value)?;
            }
            Ok(())
        }
    }
}

fn apply_container_edit(
    db: &Database,
    cat: &Catalog,
    site: UpdateSite,
    edit: ContainerEdit,
) -> DbResult<()> {
    let UpdateSite::Container { owner, path } = site;
    let mut value = owner_value(db, &owner)?;
    {
        let slot = navigate_mut(&mut value, &path)?;
        match edit {
            ContainerEdit::Insert(member) => match slot {
                Value::Set(_) => {
                    slot.set_insert(member)?;
                }
                Value::Array(items) => items.push(member),
                Value::Null => *slot = Value::Set(vec![member]),
                other => {
                    return Err(DbError::Model(ModelError::TypeMismatch {
                        expected: "a set or array".into(),
                        got: other.kind().into(),
                    }))
                }
            },
        }
    }
    write_owner(db, cat, owner, value)
}

fn navigate_mut<'v>(value: &'v mut Value, path: &[usize]) -> DbResult<&'v mut Value> {
    let mut cur = value;
    for &pos in path {
        let kind = cur.kind();
        match cur {
            Value::Tuple(fields) if pos < fields.len() => cur = &mut fields[pos],
            _ => {
                return Err(DbError::Model(ModelError::TypeMismatch {
                    expected: "a tuple".into(),
                    got: kind.into(),
                }))
            }
        }
    }
    Ok(cur)
}

// ---------------------------------------------------------------------------
// Delete
// ---------------------------------------------------------------------------

/// `delete <var> [where q]`.
pub(crate) fn delete(
    db: &Database,
    cat: &mut Catalog,
    ranges: &RangeEnv,
    user: &str,
    stmt: &Stmt,
    params: &Params,
    explain: Option<&mut ExplainSink>,
) -> DbResult<crate::database::Response> {
    let Stmt::Delete { target, qual } = stmt else {
        unreachable!("dispatch");
    };
    let Expr::Var(var) = target else {
        return Err(DbError::Catalog(
            "delete targets a range variable or collection name".into(),
        ));
    };
    // Force a binding when the target is a bare collection name.
    let extra_from = synth_from(cat, ranges, var);
    let (bindings, checked) = collect_bindings(
        db,
        cat,
        ranges,
        params,
        vec![target.clone()],
        extra_from,
        qual.clone(),
        explain,
    )?;
    check_update_auth(cat, user, &checked, Privilege::Delete)?;

    // Collect distinct identities.
    let mut objects: Vec<Oid> = Vec::new();
    let mut records: Vec<(Oid, RecordId)> = Vec::new();
    let mut nested: Vec<(UpdateSite, usize)> = Vec::new();
    for env in bindings.iter() {
        match env.ident(var) {
            MemberId::Object(oid) => {
                if !objects.contains(&oid) {
                    objects.push(oid);
                }
            }
            MemberId::Record { anchor, rid } => {
                if !records.contains(&(anchor, rid)) {
                    records.push((anchor, rid));
                }
            }
            MemberId::Nested {
                parent,
                steps,
                index,
            } => {
                let site = resolve_site(db, cat, &env, &parent, &steps, &checked)?;
                nested.push((site, index));
            }
            MemberId::None => {
                return Err(DbError::Catalog(format!(
                    "'{var}' has no stable identity to delete"
                )))
            }
        }
    }

    let n = objects.len() + records.len() + nested.len();
    // Objects: full deletion (cascade + null-out) after removing index
    // entries that point at them.
    for oid in objects {
        if db.store.exists(oid)? {
            unindex_object(db, cat, oid)?;
            db.store.delete_object(&cat.types, oid)?;
        }
    }
    // Own members: drop records (plus index entries).
    for (anchor, rid) in records {
        let name = collection_name_of(cat, anchor);
        if let Some(name) = &name {
            let old = owner_value(db, &OwnerId::Member { anchor, rid })?;
            let entries = index_entries_for(db, cat, name, anchor, &old)?;
            index_remove(db, &entries, rid)?;
        }
        db.store.remove_member(&cat.types, anchor, rid)?;
    }
    // Nested members: group by owner, remove indices descending.
    let mut grouped: Vec<(OwnerId, Vec<usize>, Vec<usize>)> = Vec::new();
    for (UpdateSite::Container { owner, path }, index) in nested {
        match grouped
            .iter_mut()
            .find(|(o, p, _)| *o == owner && *p == path)
        {
            Some((_, _, idxs)) => idxs.push(index),
            None => grouped.push((owner, path, vec![index])),
        }
    }
    for (owner, path, mut idxs) in grouped {
        idxs.sort_unstable();
        idxs.dedup();
        let mut value = owner_value(db, &owner)?;
        {
            let slot = navigate_mut(&mut value, &path)?;
            match slot {
                Value::Set(ms) => {
                    for i in idxs.iter().rev() {
                        if *i < ms.len() {
                            ms.remove(*i);
                        }
                    }
                }
                Value::Array(items) => {
                    for i in idxs.iter().rev() {
                        if *i < items.len() {
                            items[*i] = Value::Null;
                        }
                    }
                }
                other => {
                    return Err(DbError::Model(ModelError::TypeMismatch {
                        expected: "a set or array".into(),
                        got: other.kind().into(),
                    }))
                }
            }
        }
        write_owner(db, cat, owner, value)?;
    }
    Ok(crate::database::Response::Done(format!("deleted {n}")))
}

fn synth_from(cat: &Catalog, ranges: &RangeEnv, var: &str) -> Vec<FromBinding> {
    let declared = ranges.get(var).is_some();
    let is_collection = cat.named.get(var).map(|o| o.is_collection).unwrap_or(false);
    if !declared && is_collection {
        vec![FromBinding {
            var: var.to_string(),
            path: Expr::Var(var.to_string()),
        }]
    } else {
        Vec::new()
    }
}

fn check_update_auth(
    cat: &Catalog,
    user: &str,
    checked: &CheckedRetrieve,
    privilege: Privilege,
) -> DbResult<()> {
    for b in &checked.bindings {
        if let excess_sema::RootSource::Collection(o) = &b.root {
            if !cat.auth.allowed(user, &o.name, privilege) {
                return Err(DbError::Auth(format!(
                    "{user} lacks {privilege} on {}",
                    o.name
                )));
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Replace
// ---------------------------------------------------------------------------

/// `replace <var> (attr = e, ...) [where q]`.
pub(crate) fn replace(
    db: &Database,
    cat: &mut Catalog,
    ranges: &RangeEnv,
    user: &str,
    stmt: &Stmt,
    params: &Params,
    explain: Option<&mut ExplainSink>,
) -> DbResult<crate::database::Response> {
    let Stmt::Replace {
        target,
        assignments,
        qual,
    } = stmt
    else {
        unreachable!("dispatch");
    };
    let Expr::Var(var) = target else {
        return Err(DbError::Catalog(
            "replace targets a range variable, collection name or named object".into(),
        ));
    };
    let extra_from = synth_from(cat, ranges, var);
    let mut exprs: Vec<Expr> = vec![target.clone()];
    exprs.extend(assignments.iter().map(|(_, e)| e.clone()));
    let (bindings, checked) = collect_bindings(
        db,
        cat,
        ranges,
        params,
        exprs,
        extra_from,
        qual.clone(),
        explain,
    )?;
    check_update_auth(cat, user, &checked, Privilege::Replace)?;
    if let Some(obj) = cat.named.get(var) {
        if !obj.is_collection && !cat.auth.allowed(user, var, Privilege::Replace) {
            return Err(DbError::Auth(format!("{user} may not replace {var}")));
        }
    }

    // The target's tuple type (for attribute positions + conformance).
    let target_qty = if let Some(b) = checked.bindings.iter().find(|b| &b.var == var) {
        b.elem.clone()
    } else if let Some(obj) = cat.named.get(var) {
        obj.qty.clone()
    } else if let Some((q, _)) = params.vars.get(var) {
        q.clone()
    } else {
        return Err(DbError::Catalog(format!("unknown replace target '{var}'")));
    };
    let view = CatalogView {
        cat,
        store: &db.store,
        db: Some(db),
    };
    let sctx = SemaCtx::new(&cat.types, &cat.adts, &view);
    let mut positions = Vec::with_capacity(assignments.len());
    for (attr, _) in assignments {
        positions.push((
            sctx.attr_pos(&target_qty, attr)?,
            sctx.attr_type(&target_qty, attr)?,
        ));
    }
    drop(sctx);

    // Stage: evaluate new field values per env against the pre-state.
    enum Staged {
        Object(Oid, Vec<(usize, Value)>),
        Record(Oid, RecordId, Vec<(usize, Value)>),
        Nested(OwnerId, Vec<usize>, usize, Vec<(usize, Value)>),
    }
    let vars = update_vars(params, &checked);
    let view = CatalogView {
        cat,
        store: &db.store,
        db: Some(db),
    };
    let ctx = ExecCtx::new(&db.store, &cat.types, &cat.adts, &view)
        .with_batch_size(db.batch_size())
        .with_workers(db.worker_threads())
        .with_snapshot(write_snap(db))
        .with_metrics(db.exec_metrics());
    let mut staged: Vec<Staged> = Vec::new();
    for env in bindings.iter() {
        let mut updates = Vec::with_capacity(assignments.len());
        for ((_, e), (pos, qty)) in assignments.iter().zip(&positions) {
            let v = eval_expr(db, cat, &ctx, &env, ranges, &vars, e)?;
            v.conforms(qty, &cat.types, &cat.adts)?;
            updates.push((*pos, v));
        }
        match env.ident(var) {
            MemberId::Object(oid) => staged.push(Staged::Object(oid, updates)),
            MemberId::Record { anchor, rid } => staged.push(Staged::Record(anchor, rid, updates)),
            MemberId::Nested {
                parent,
                steps,
                index,
            } => {
                let UpdateSite::Container { owner, path } =
                    resolve_site(db, cat, &env, &parent, &steps, &checked)?;
                staged.push(Staged::Nested(owner, path, index, updates));
            }
            MemberId::None => {
                // A named object without iteration.
                if let Some(obj) = cat.named.get(var) {
                    staged.push(Staged::Object(obj.oid, updates));
                } else {
                    return Err(DbError::Catalog(format!(
                        "'{var}' has no stable identity to replace"
                    )));
                }
            }
        }
    }
    drop(ctx);

    let n = staged.len();
    for s in staged {
        match s {
            Staged::Object(oid, updates) => {
                // Index maintenance on ref-mode members: the member record
                // (a Ref) is unchanged, but indexed attribute values live
                // in the object. Probe unique keys against the prospective
                // value before mutating anything.
                let mut new_value = db.store.value_of(oid)?;
                apply_updates(&mut new_value, &updates)?;
                let old = Value::Ref(oid);
                let memberships = db.store.memberships(oid)?;
                let mut removed: Vec<(Oid, RecordId, Vec<IndexEntry>)> = Vec::new();
                let mut violation: Option<DbError> = None;
                for (anchor, rid) in &memberships {
                    if let Some(name) = collection_name_of(cat, *anchor) {
                        let old_entries = index_entries_for(db, cat, &name, *anchor, &old)?;
                        let elem = db.store.collection_elem(*anchor)?;
                        let mut new_entries = Vec::new();
                        for idx in cat.indexes.iter().filter(|i| i.collection == name) {
                            let pos = attr_pos_of(cat, db, &elem, &idx.attr)?;
                            if let Some(key) = member_attr_key(db, &new_value, pos, &cat.adts)? {
                                new_entries.push((idx.root, key, idx.unique, idx.attr.clone()));
                            }
                        }
                        index_remove(db, &old_entries, *rid)?;
                        removed.push((*anchor, *rid, old_entries));
                        if let Err(e) = probe_unique(db, &new_entries) {
                            violation = Some(e);
                            break;
                        }
                    }
                }
                if let Some(e) = violation {
                    // Restore the removed entries; the object is untouched.
                    for (_, rid, entries) in removed {
                        index_insert(db, &entries, rid)?;
                    }
                    return Err(e);
                }
                db.store.set_value(&cat.types, oid, new_value)?;
                for (anchor, rid, _) in removed {
                    if let Some(name) = collection_name_of(cat, anchor) {
                        let entries = index_entries_for(db, cat, &name, anchor, &Value::Ref(oid))?;
                        index_insert(db, &entries, rid)?;
                    }
                }
            }
            Staged::Record(anchor, rid, updates) => {
                let mut value = owner_value(db, &OwnerId::Member { anchor, rid })?;
                apply_updates(&mut value, &updates)?;
                write_owner(db, cat, OwnerId::Member { anchor, rid }, value)?;
            }
            Staged::Nested(owner, path, index, updates) => {
                let mut value = owner_value(db, &owner)?;
                {
                    let slot = navigate_mut(&mut value, &path)?;
                    let item = match slot {
                        Value::Set(ms) if index < ms.len() => &mut ms[index],
                        Value::Array(items) if index < items.len() => &mut items[index],
                        other => {
                            return Err(DbError::Model(ModelError::TypeMismatch {
                                expected: "a set or array".into(),
                                got: other.kind().into(),
                            }))
                        }
                    };
                    apply_updates(item, &updates)?;
                }
                write_owner(db, cat, owner, value)?;
            }
        }
    }
    Ok(crate::database::Response::Done(format!("replaced {n}")))
}

fn apply_updates(value: &mut Value, updates: &[(usize, Value)]) -> DbResult<()> {
    match value {
        Value::Tuple(fields) => {
            for (pos, v) in updates {
                if *pos >= fields.len() {
                    return Err(DbError::Model(ModelError::Semantic(format!(
                        "tuple has {} fields, wanted {pos}",
                        fields.len()
                    ))));
                }
                fields[*pos] = v.clone();
            }
            Ok(())
        }
        other => Err(DbError::Model(ModelError::TypeMismatch {
            expected: "a tuple".into(),
            got: other.kind().into(),
        })),
    }
}

// ---------------------------------------------------------------------------
// Procedures
// ---------------------------------------------------------------------------

/// `execute P(args) [where q]` — invoked once per satisfying binding of
/// the `where` clause (the paper's generalization of IDM stored commands).
#[allow(clippy::too_many_arguments)]
pub(crate) fn execute_procedure(
    db: &Database,
    cat: &mut Catalog,
    ranges: &mut RangeEnv,
    user: &str,
    stmt: &Stmt,
    params: &Params,
    depth: u32,
    explain: Option<&mut ExplainSink>,
) -> DbResult<crate::database::Response> {
    let Stmt::Execute { proc, args, qual } = stmt else {
        unreachable!("dispatch");
    };
    if depth >= MAX_PROC_DEPTH {
        return Err(DbError::Catalog(format!(
            "procedure nesting deeper than {MAX_PROC_DEPTH} (in '{proc}')"
        )));
    }
    let def = cat
        .procedures
        .get(proc)
        .cloned()
        .ok_or_else(|| DbError::Catalog(format!("no procedure '{proc}'")))?;
    if !cat.auth.allowed(user, proc, Privilege::Execute) {
        return Err(DbError::Auth(format!("{user} may not execute {proc}")));
    }
    if args.len() != def.params.len() {
        return Err(DbError::Catalog(format!(
            "'{proc}' takes {} arguments, got {}",
            def.params.len(),
            args.len()
        )));
    }
    let (bindings, checked) = collect_bindings(
        db,
        cat,
        ranges,
        params,
        args.clone(),
        Vec::new(),
        qual.clone(),
        explain,
    )?;
    // Evaluate argument tuples per binding.
    let vars = update_vars(params, &checked);
    let mut calls: Vec<Vec<Value>> = Vec::with_capacity(bindings.len());
    {
        let view = CatalogView {
            cat,
            store: &db.store,
            db: Some(db),
        };
        let ctx = ExecCtx::new(&db.store, &cat.types, &cat.adts, &view)
            .with_batch_size(db.batch_size())
            .with_workers(db.worker_threads())
            .with_snapshot(write_snap(db))
            .with_metrics(db.exec_metrics());
        for env in bindings.iter() {
            let vals: Vec<Value> = args
                .iter()
                .map(|a| eval_expr(db, cat, &ctx, &env, ranges, &vars, a))
                .collect::<DbResult<_>>()?;
            calls.push(vals);
        }
    }
    let n = calls.len();
    // The body runs with definer rights (data abstraction through
    // procedures, §4.2.3) and its own range scope (range statements in
    // the body do not leak into the caller's session).
    for vals in calls {
        let mut proc_params = Params::default();
        for ((pname, pqty), v) in def.params.iter().zip(vals) {
            v.conforms(pqty, &cat.types, &cat.adts)?;
            proc_params.vars.insert(pname.clone(), (pqty.clone(), v));
        }
        let mut body_ranges = ranges.clone();
        for body_stmt in &def.body {
            crate::database::exec_statement(
                db,
                cat,
                &mut body_ranges,
                crate::catalog::ADMIN,
                body_stmt,
                &proc_params,
                depth + 1,
            )?;
        }
    }
    Ok(crate::database::Response::Done(format!(
        "{proc} executed for {n} bindings"
    )))
}
