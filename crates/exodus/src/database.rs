//! The `Database` facade and `Session`s.

use std::fmt;
use std::path::PathBuf;
use std::sync::Arc;

use parking_lot::RwLock;

use excess_algebra::PlannerConfig;
use excess_exec::{QueryProfile, QueryResult};
use excess_lang::ops::OpAssoc;
use excess_lang::{parse_program, AttrDecl, InheritClause, OperatorTable, Param, Privilege, Stmt};
use excess_sema::lower::lower_qual;
use excess_sema::resolve::Resolver;
use excess_sema::{
    AttrStats, CollectionStats, FunctionDef, IndexInfo, NamedObject, ProcedureDef, RangeEnv,
    SemaCtx, HISTOGRAM_BUCKETS,
};
use exodus_obs::{
    MetricsRegistry, MetricsSnapshot, RingTracer, SlowQuery, SlowQueryLog, Span, SpanGuard,
    TraceConfig,
};
use exodus_storage::btree::BTree;
use exodus_storage::{Durability, Oid, RecoveryReport, StorageManager};
use extra_model::adt::Assoc;
use extra_model::schema::InheritSpec;
use extra_model::{AdtType, Attribute, ObjectStore, Ownership, QualType, Type, Value};

use crate::catalog::{Catalog, CatalogView, ADMIN};
use crate::dml::{self, Params};
use crate::error::{DbError, DbResult};
use crate::observe::{verb_index, DbMetrics};

/// Result of one statement.
#[derive(Debug)]
pub enum Response {
    /// A DDL/update acknowledgment.
    Done(String),
    /// Query rows.
    Rows(QueryResult),
    /// An `explain [analyze]` report.
    Explained(Explanation),
    /// An `observe <stmt>` report: the inner response plus the metric
    /// activity the statement caused.
    Observed(Observation),
}

impl Response {
    /// The rows, if this was a query (looking through `observe`).
    pub fn rows(self) -> Option<QueryResult> {
        match self {
            Response::Rows(r) => Some(r),
            Response::Observed(o) => o.response.rows(),
            Response::Done(_) | Response::Explained(_) => None,
        }
    }

    /// The explanation, if this was an `explain` (looking through
    /// `observe`).
    pub fn explanation(self) -> Option<Explanation> {
        match self {
            Response::Explained(e) => Some(e),
            Response::Observed(o) => o.response.explanation(),
            _ => None,
        }
    }

    /// The observation, if this was an `observe`.
    pub fn observation(self) -> Option<Observation> {
        match self {
            Response::Observed(o) => Some(o),
            _ => None,
        }
    }
}

/// What an `observe <stmt>` saw: the wrapped statement's response plus
/// the counters it moved (zero deltas omitted). Requires metrics
/// (`counters` is empty when the database was built with
/// [`DatabaseBuilder::metrics`] off).
#[derive(Debug)]
pub struct Observation {
    /// The wrapped statement's own response.
    pub response: Box<Response>,
    /// Wall-clock duration of the wrapped statement.
    pub elapsed_ns: u64,
    /// Counter deltas caused by the statement, sorted by name with
    /// zero deltas dropped.
    pub counters: Vec<(String, u64)>,
}

impl fmt::Display for Observation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "elapsed: {:.3} ms", self.elapsed_ns as f64 / 1e6)?;
        for (name, delta) in &self.counters {
            writeln!(f, "{name}: +{delta}")?;
        }
        Ok(())
    }
}

/// A structured `EXPLAIN` report: the optimizer's physical plan, plus —
/// for `EXPLAIN ANALYZE` — the observed per-operator execution profile.
#[derive(Debug, Clone)]
pub struct Explanation {
    /// The physical plan, rendered as an indented operator tree.
    pub plan: String,
    /// Per-operator metrics (`EXPLAIN ANALYZE` only).
    pub profile: Option<QueryProfile>,
}

impl fmt::Display for Explanation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // The profile renders the same tree annotated with actuals, so
        // show it alone when present; the bare plan otherwise.
        match &self.profile {
            Some(p) => write!(f, "{p}"),
            None => f.write_str(self.plan.trim_end()),
        }
    }
}

/// An EXTRA/EXCESS database.
pub struct Database {
    pub(crate) store: ObjectStore,
    pub(crate) catalog: RwLock<Catalog>,
    pub(crate) ops: RwLock<OperatorTable>,
    pub(crate) planner: RwLock<PlannerConfig>,
    pub(crate) batch_size: std::sync::atomic::AtomicUsize,
    pub(crate) worker_threads: std::sync::atomic::AtomicUsize,
    pub(crate) profiling: std::sync::atomic::AtomicBool,
    pub(crate) recovery: Option<RecoveryReport>,
    pub(crate) metrics: Option<DbMetrics>,
    pub(crate) tracer: Option<Arc<RingTracer>>,
    pub(crate) slow_log: Option<Arc<SlowQueryLog<QueryProfile>>>,
    /// Bumped on every successful catalog mutation (DDL, grants,
    /// analyze...); replication subscribers re-fetch the catalog image
    /// when their epoch trails this (`docs/REPLICATION.md`). Starts at
    /// 1 so a subscriber's initial epoch of 0 always fetches.
    pub(crate) catalog_epoch: std::sync::atomic::AtomicU64,
    /// The shared replication source, created on first
    /// [`Database::replication_source`] call and kept alive by its
    /// subscribers.
    pub(crate) repl: parking_lot::Mutex<crate::replication::SourceSlot>,
    /// Present iff this database is a read replica: the replay latch,
    /// horizon and lag the session layer consults on every statement.
    pub(crate) replica: Option<Arc<crate::replication::ReplicaState>>,
    /// The `sys.*` virtual-collection providers (built-ins plus any an
    /// embedder registered via [`Database::register_system_view`]).
    pub(crate) sysviews: RwLock<Vec<Arc<dyn crate::sysview::SystemView>>>,
    /// Registry of open sessions, surfaced through `sys.sessions`.
    pub(crate) sessions: crate::sysview::SessionRegistry,
}

/// Configuration for a [`Database`], applied atomically at
/// [`DatabaseBuilder::build`]. Replaces the old mutable setters.
#[derive(Default)]
pub struct DatabaseBuilder {
    storage: Option<StorageManager>,
    path: Option<PathBuf>,
    durability: Option<Durability>,
    pool_pages: Option<usize>,
    batch_size: Option<usize>,
    worker_threads: Option<usize>,
    planner: Option<PlannerConfig>,
    profiling: bool,
    metrics: Option<bool>,
    trace: Option<TraceConfig>,
}

impl DatabaseBuilder {
    /// Storage manager to build over (file-backed, or an in-memory pool
    /// of a specific size). Defaults to an in-memory 4096-page pool.
    /// Mutually exclusive with [`DatabaseBuilder::path`].
    pub fn storage(mut self, sm: StorageManager) -> Self {
        self.storage = Some(sm);
        self
    }

    /// Open (or create) a file-backed database at `path`. Crash recovery
    /// runs before the first statement; inspect the outcome via
    /// [`Database::recovery`]. Defaults to [`Durability::Fsync`] unless
    /// [`DatabaseBuilder::durability`] says otherwise.
    pub fn path(mut self, path: impl Into<PathBuf>) -> Self {
        self.path = Some(path.into());
        self
    }

    /// Durability level for a file-backed database (see
    /// [`exodus_storage::Durability`] for the exact contract):
    ///
    /// * [`Durability::None`] — no write-ahead log; crash loses
    ///   everything since the last explicit flush. The write path is
    ///   byte-identical to the pre-WAL engine (benchmarks use this).
    /// * [`Durability::Buffered`] — every update statement is logged and
    ///   survives a process crash, but not an OS crash or power loss.
    /// * [`Durability::Fsync`] — the log is fsynced at each statement
    ///   boundary; survives power loss.
    ///
    /// Requires [`DatabaseBuilder::path`].
    pub fn durability(mut self, level: Durability) -> Self {
        self.durability = Some(level);
        self
    }

    /// Buffer-pool size in pages for a [`DatabaseBuilder::path`]-opened
    /// database (default 4096).
    pub fn pool_pages(mut self, n: usize) -> Self {
        self.pool_pages = Some(n);
        self
    }

    /// Rows per execution batch. `1` degenerates to row-at-a-time
    /// iteration (useful for comparisons); the default is
    /// [`excess_exec::DEFAULT_BATCH_SIZE`]. Clamped to at least 1.
    pub fn batch_size(mut self, n: usize) -> Self {
        self.batch_size = Some(n);
        self
    }

    /// Worker threads available to each query — its degree of
    /// parallelism. **DOP-1 determinism:** at the default of `1` every
    /// query runs entirely on the calling thread, so execution order
    /// (and thus any timing or buffer-pool counters) is fully
    /// deterministic; at higher values results are still merged in
    /// deterministic scan order, but thread scheduling varies. `0` is
    /// rejected by [`DatabaseBuilder::build`] — it is not a degree of
    /// parallelism (the old setter silently treated it as 1).
    pub fn worker_threads(mut self, n: usize) -> Self {
        self.worker_threads = Some(n);
        self
    }

    /// Planner configuration (experiment E8 ablations).
    pub fn planner(mut self, config: PlannerConfig) -> Self {
        self.planner = Some(config);
        self
    }

    /// Profile every statement: per-operator metrics are attached to
    /// each [`QueryResult`] (`result.profile`). Off by default — the
    /// disabled path costs one pointer check per batch pull.
    pub fn profiling(mut self, on: bool) -> Self {
        self.profiling = on;
        self
    }

    /// System-wide metrics (the `exodus-obs` registry): WAL, buffer
    /// pool, recovery, executor and statement counters, readable via
    /// [`Database::metrics_snapshot`]. **On by default**; the enabled
    /// cost is a few relaxed atomic adds per statement/batch. Pass
    /// `false` for a zero-instrumentation build (snapshots return
    /// `None` and `observe` reports no counters).
    pub fn metrics(mut self, on: bool) -> Self {
        self.metrics = Some(on);
        self
    }

    /// Enable structured tracing spans and the slow-query log (see
    /// [`TraceConfig`]). Off by default. Implies
    /// [`DatabaseBuilder::profiling`] so slow-query entries carry a
    /// full [`QueryProfile`].
    pub fn trace(mut self, config: TraceConfig) -> Self {
        self.trace = Some(config);
        self
    }

    /// Build the database.
    pub fn build(self) -> DbResult<Arc<Database>> {
        if self.worker_threads == Some(0) {
            return Err(DbError::Catalog(
                "worker_threads must be at least 1 (1 = run queries on the calling \
                 thread, deterministically)"
                    .into(),
            ));
        }
        if self.storage.is_some() && self.path.is_some() {
            return Err(DbError::Catalog(
                "storage(..) and path(..) are mutually exclusive; path opens its own \
                 storage manager"
                    .into(),
            ));
        }
        if self.path.is_none()
            && matches!(
                self.durability,
                Some(Durability::Buffered | Durability::Fsync)
            )
        {
            return Err(DbError::Catalog(
                "durability requires a file-backed database; set path(..)".into(),
            ));
        }
        let (sm, recovery) = match self.path {
            Some(path) => {
                let (sm, report) = StorageManager::open(
                    &path,
                    self.pool_pages.unwrap_or(4096),
                    self.durability.unwrap_or(Durability::Fsync),
                )?;
                (sm, Some(report))
            }
            None => {
                let sm = self
                    .storage
                    .unwrap_or_else(|| StorageManager::in_memory(self.pool_pages.unwrap_or(4096)));
                (sm, None)
            }
        };
        let db = Database::assemble(sm, recovery, self.metrics.unwrap_or(true), self.trace);
        if let Some(config) = self.planner {
            *db.planner.write() = config;
        }
        if let Some(n) = self.batch_size {
            db.batch_size
                .store(n.max(1), std::sync::atomic::Ordering::Relaxed);
        }
        if let Some(n) = self.worker_threads {
            db.worker_threads
                .store(n, std::sync::atomic::Ordering::Relaxed);
        }
        // Tracing implies profiling: the slow-query log keeps each
        // over-threshold statement's QueryProfile.
        let profiling = self.profiling || db.tracer.is_some();
        db.profiling
            .store(profiling, std::sync::atomic::Ordering::Relaxed);
        Ok(db)
    }
}

impl Database {
    /// Configure a new database.
    pub fn builder() -> DatabaseBuilder {
        DatabaseBuilder::default()
    }

    /// An in-memory database with the built-in ADTs registered.
    pub fn in_memory() -> Arc<Database> {
        Self::with_storage(StorageManager::in_memory(4096))
    }

    /// A database over an explicit storage manager (e.g. file-backed, or
    /// with a specific buffer-pool size).
    pub fn with_storage(sm: StorageManager) -> Arc<Database> {
        Self::with_storage_report(sm, None)
    }

    fn with_storage_report(sm: StorageManager, recovery: Option<RecoveryReport>) -> Arc<Database> {
        Self::assemble(sm, recovery, true, None)
    }

    fn assemble(
        sm: StorageManager,
        recovery: Option<RecoveryReport>,
        metrics_on: bool,
        trace: Option<TraceConfig>,
    ) -> Arc<Database> {
        // Genesis runs inside a logged unit so the store's root pages
        // appear in the WAL from LSN 1: a replica bootstrapping by
        // replaying the whole log reproduces them (a no-op without a
        // WAL).
        let genesis = sm.begin_unit().expect("genesis unit");
        let store = ObjectStore::new(sm).expect("fresh store");
        genesis.commit().expect("genesis commit");
        Self::assemble_with(store, Catalog::new(), recovery, None, metrics_on, trace)
    }

    /// Assemble a read replica over a store attached to shipped roots
    /// and a catalog decoded from the primary's image
    /// (`crate::replication::Replica::connect`).
    pub(crate) fn assemble_replica(
        store: ObjectStore,
        catalog: Catalog,
        recovery: Option<RecoveryReport>,
        state: Arc<crate::replication::ReplicaState>,
        metrics_on: bool,
        trace: Option<TraceConfig>,
    ) -> Arc<Database> {
        Self::assemble_with(store, catalog, recovery, Some(state), metrics_on, trace)
    }

    fn assemble_with(
        store: ObjectStore,
        catalog: Catalog,
        recovery: Option<RecoveryReport>,
        replica: Option<Arc<crate::replication::ReplicaState>>,
        metrics_on: bool,
        trace: Option<TraceConfig>,
    ) -> Arc<Database> {
        let sm = store.storage().clone();
        let metrics = metrics_on.then(|| {
            let registry = Arc::new(MetricsRegistry::new());
            sm.register_metrics(&registry);
            if let Some(report) = &recovery {
                report.register_metrics(&registry);
            }
            let exec = excess_exec::ExecMetrics::register(&registry);
            DbMetrics::register(registry, exec)
        });
        let (tracer, slow_log) = match trace {
            Some(config) => {
                let tracer = Arc::new(RingTracer::new(config.span_capacity));
                if let Some(report) = &recovery {
                    // Recovery ran inside StorageManager::open, before
                    // any tracer existed; record it retroactively as an
                    // immediately-closed span carrying the report.
                    drop(tracer.start(
                        "recovery",
                        format!(
                            "scanned {} records, replayed {} units, rolled back {}",
                            report.records_scanned, report.units_replayed, report.units_rolled_back
                        ),
                    ));
                }
                let log = Arc::new(SlowQueryLog::new(
                    config.slow_query_threshold_ns,
                    config.slow_query_capacity,
                ));
                (Some(tracer), Some(log))
            }
            None => (None, None),
        };
        let mut ops = OperatorTable::new();
        sync_operators(&mut ops, &catalog.adts);
        Arc::new(Database {
            store,
            catalog: RwLock::new(catalog),
            ops: RwLock::new(ops),
            planner: RwLock::new(PlannerConfig::default()),
            batch_size: std::sync::atomic::AtomicUsize::new(excess_exec::DEFAULT_BATCH_SIZE),
            worker_threads: std::sync::atomic::AtomicUsize::new(1),
            profiling: std::sync::atomic::AtomicBool::new(false),
            recovery,
            metrics,
            tracer,
            slow_log,
            catalog_epoch: std::sync::atomic::AtomicU64::new(1),
            repl: parking_lot::Mutex::new(crate::replication::SourceSlot::default()),
            replica,
            sysviews: RwLock::new(crate::sysview::builtin_views()),
            sessions: crate::sysview::SessionRegistry::default(),
        })
    }

    /// The crash-recovery report from opening a file-backed database via
    /// [`DatabaseBuilder::path`] (`None` for in-memory databases).
    pub fn recovery(&self) -> Option<&RecoveryReport> {
        self.recovery.as_ref()
    }

    /// The storage durability level ([`Durability::None`] for in-memory
    /// databases and pre-WAL storage managers).
    pub fn durability(&self) -> Durability {
        self.store.storage().durability()
    }

    /// Force every dirty page to the volume, fsync it, and prune the
    /// write-ahead log to the records written since this call. The next
    /// open recovers from a (near-)empty log. No-op consistency-wise:
    /// an interrupted checkpoint changes no logical state.
    pub fn checkpoint(&self) -> DbResult<()> {
        if self.replica.is_some() {
            return Err(DbError::ReadOnly(
                "a replica checkpoints when the primary's checkpoint arrives in the \
                 replication stream; checkpoint the primary instead"
                    .into(),
            ));
        }
        self.store.storage().checkpoint()?;
        Ok(())
    }

    /// The object store.
    pub fn store(&self) -> &ObjectStore {
        &self.store
    }

    /// Read access to the catalog (benchmark harnesses and tools).
    pub fn read_catalog(&self) -> parking_lot::RwLockReadGuard<'_, Catalog> {
        self.catalog.read()
    }

    /// Bulk-append members to a named collection, bypassing the SQL layer
    /// (used by benchmark loaders; maintains integrity edges but not
    /// secondary indexes — build indexes after loading).
    pub fn bulk_append(&self, collection: &str, members: Vec<Value>) -> DbResult<Vec<Oid>> {
        if self.replica.is_some() {
            return Err(DbError::ReadOnly(
                "a read-only replica cannot load data; bulk-append on the primary".into(),
            ));
        }
        // The whole load is one write transaction (lock order: writer
        // slot before catalog), so readers either see none of the batch
        // or all of it. Resolve the collection only *after* the
        // transaction holds the writer gate and the catalog lock: a
        // resolution taken before the gate could race a concurrent
        // `destroy` and append into freed heap structures. An error
        // return aborts via the WriteTxn drop guard.
        let txn = self.store.storage().begin_txn()?;
        let cat = self.catalog.read();
        let obj = cat
            .named
            .get(collection)
            .cloned()
            .ok_or_else(|| DbError::Catalog(format!("no collection '{collection}'")))?;
        let elem = self.store.collection_elem(obj.oid)?;
        let mut oids = Vec::with_capacity(members.len());
        for m in members {
            match elem.mode {
                Ownership::Own => {
                    self.store.append_member(&cat.types, obj.oid, m)?;
                }
                _ => {
                    let v = match m {
                        v @ Value::Ref(_) => v,
                        tuple => Value::Ref(self.store.create_object(
                            &cat.types,
                            &QualType::own(elem.ty.clone()),
                            tuple,
                        )?),
                    };
                    if let Value::Ref(oid) = &v {
                        oids.push(*oid);
                    }
                    self.store.append_member(&cat.types, obj.oid, v)?;
                }
            }
        }
        drop(cat);
        txn.commit()?;
        Ok(oids)
    }

    /// Rows per execution batch. `1` degenerates to row-at-a-time
    /// iteration (useful for comparisons); the default is
    /// [`excess_exec::DEFAULT_BATCH_SIZE`].
    pub fn batch_size(&self) -> usize {
        self.batch_size.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Worker threads available to each query (degree of parallelism).
    pub fn worker_threads(&self) -> usize {
        self.worker_threads
            .load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Whether every statement is profiled (set via
    /// [`DatabaseBuilder::profiling`]).
    pub fn profiling(&self) -> bool {
        self.profiling.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// The registry every layer registers its instruments into, for
    /// components that add their own metric families on top of the
    /// engine's (the wire-protocol server registers its `server_*`
    /// families here so one `/metrics` exposition covers the whole
    /// process). `None` when built with [`DatabaseBuilder::metrics`]
    /// off.
    pub fn metrics_registry(&self) -> Option<Arc<MetricsRegistry>> {
        self.metrics.as_ref().map(|m| m.registry.clone())
    }

    /// Open a tracing span on the database's tracer, if tracing is on
    /// (for components layered above the session, e.g. the server's
    /// connection handling). Bind the guard with a name
    /// (`let _span = ...`) — `_` drops it immediately.
    pub fn start_span(&self, name: &'static str, detail: impl Into<String>) -> Option<SpanGuard> {
        self.span(name, detail)
    }

    /// A point-in-time view of every registered metric — WAL, buffer
    /// pool, recovery, executor and statement instruments — in
    /// deterministic (name-sorted) order. `None` when the database was
    /// built with [`DatabaseBuilder::metrics`] off. Encode with
    /// [`MetricsSnapshot::to_json`] or [`MetricsSnapshot::to_prometheus`].
    pub fn metrics_snapshot(&self) -> Option<MetricsSnapshot> {
        self.metrics.as_ref().map(|m| m.registry.snapshot())
    }

    /// The slow-query log, slowest first: statements at or above the
    /// configured threshold, each with its [`QueryProfile`] (the profile
    /// renders the full annotated plan). Empty unless
    /// [`DatabaseBuilder::trace`] was set.
    pub fn slow_queries(&self) -> Vec<SlowQuery<QueryProfile>> {
        self.slow_log
            .as_ref()
            .map(|log| log.entries())
            .unwrap_or_default()
    }

    /// Completed tracing spans, oldest first (children complete before
    /// their parents). Empty unless [`DatabaseBuilder::trace`] was set.
    pub fn trace_spans(&self) -> Vec<Span> {
        self.tracer.as_ref().map(|t| t.spans()).unwrap_or_default()
    }

    /// Open a tracing span, if tracing is on. Bind the guard with a
    /// name (`let _span = ...`) — `_` drops it immediately.
    pub(crate) fn span(&self, name: &'static str, detail: impl Into<String>) -> Option<SpanGuard> {
        self.tracer.as_ref().map(|t| t.start(name, detail))
    }

    /// The executor's metric handles, cloned into each statement's
    /// `ExecCtx`.
    pub(crate) fn exec_metrics(&self) -> Option<std::sync::Arc<excess_exec::ExecMetrics>> {
        self.metrics.as_ref().map(|m| m.exec.clone())
    }

    /// Register a new ADT at runtime, extending the parser's operator
    /// table with the ADT's registered operators.
    pub fn register_adt(&self, adt: Arc<dyn AdtType>) -> DbResult<()> {
        if self.replica.is_some() {
            return Err(DbError::ReadOnly(
                "custom ADTs are not replicated; a replica resolves the built-in ADTs \
                 only (docs/REPLICATION.md)"
                    .into(),
            ));
        }
        let mut cat = self.catalog.write();
        cat.adts.register(adt)?;
        self.catalog_epoch
            .fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        let mut ops = self.ops.write();
        sync_operators(&mut ops, &cat.adts);
        Ok(())
    }

    /// Open an admin session.
    pub fn session(self: &Arc<Self>) -> Session {
        self.session_as(ADMIN)
    }

    /// Open a session as a specific user.
    pub fn session_as(self: &Arc<Self>, user: &str) -> Session {
        if let Some(m) = &self.metrics {
            m.active_sessions.inc();
        }
        let info = self.sessions.register(user);
        Session {
            db: self.clone(),
            user: user.to_string(),
            ranges: RangeEnv::default(),
            txn: None,
            lock_timeout: None,
            info,
        }
    }

    /// One-shot convenience: run statements in a fresh admin session.
    pub fn run(self: &Arc<Self>, src: &str) -> DbResult<Vec<Response>> {
        self.session().run(src)
    }

    /// One-shot convenience: run and return the last statement's rows.
    pub fn query(self: &Arc<Self>, src: &str) -> DbResult<QueryResult> {
        self.session().query(src)
    }
}

pub(crate) fn sync_operators(ops: &mut OperatorTable, adts: &extra_model::AdtRegistry) {
    for (sym, prec, assoc, arity) in adts.operator_symbols() {
        let a = match assoc {
            Assoc::Left => OpAssoc::Left,
            Assoc::Right => OpAssoc::Right,
        };
        ops.register(sym, prec, a, arity == 1);
    }
}

/// A session: a user plus the session's `range of` declarations and, at
/// most, one open explicit transaction.
pub struct Session {
    db: Arc<Database>,
    /// The session's user.
    pub user: String,
    ranges: RangeEnv,
    /// The open explicit transaction (`begin` ... `commit`/`abort`).
    /// Holds the storage writer slot, so at most one session can have
    /// one at a time; everything the session executes while it is open
    /// runs at the transaction's own timestamp.
    txn: Option<exodus_storage::WriteTxn>,
    /// How long a write statement may wait on the storage writer gate
    /// before failing with the retryable [`DbError::Busy`]. `None`
    /// (the default) blocks indefinitely, preserving the historical
    /// in-process behavior; the server sets a bound so one remote
    /// client holding a transaction cannot wedge a service thread
    /// forever.
    lock_timeout: Option<std::time::Duration>,
    /// This session's row in the database's session registry (feeds
    /// `sys.sessions`); unregistered on drop.
    info: Arc<crate::sysview::SessionInfo>,
}

impl Drop for Session {
    fn drop(&mut self) {
        // An explicit transaction left open when the session dies is
        // aborted (the WriteTxn drop rolls it back and frees the writer
        // slot).
        self.txn = None;
        self.db.sessions.unregister(self.info.id);
        if let Some(m) = &self.db.metrics {
            m.active_sessions.dec();
        }
    }
}

impl Session {
    /// Bound how long write statements may wait on the storage writer
    /// gate before failing with the retryable [`DbError::Busy`]
    /// This session's process-unique id — the `id` attribute of its
    /// `sys.sessions` row and the attribution key in `sys.slow_queries`.
    pub fn session_id(&self) -> u64 {
        self.info.id
    }

    /// Annotate this session's `sys.sessions` row with the remote peer
    /// address (the wire server calls this; a set peer flips the row's
    /// `kind` from `local` to `wire`).
    pub fn set_peer(&self, peer: Option<String>) {
        self.info.set_peer(peer);
    }

    /// Annotate this session's `sys.sessions` row with an admission /
    /// lifecycle state (`"admitted"`, `"draining"`, ...).
    pub fn set_session_state(&self, state: &str) {
        self.info.set_state(state);
    }

    /// Bound how long write statements may wait on the storage writer
    /// gate before failing with the retryable [`DbError::Busy`]
    /// (code 2001). `None` restores the default: block indefinitely.
    pub fn set_lock_timeout(&mut self, limit: Option<std::time::Duration>) {
        self.lock_timeout = limit;
    }

    /// Acquire the writer gate, honoring the session's lock timeout.
    fn acquire_write_txn(&self, db: &Arc<Database>) -> DbResult<exodus_storage::WriteTxn> {
        let Some(limit) = self.lock_timeout else {
            return Ok(db.store.storage().begin_txn()?);
        };
        let deadline = std::time::Instant::now() + limit;
        loop {
            if let Some(txn) = db.store.storage().try_begin_txn()? {
                return Ok(txn);
            }
            if std::time::Instant::now() >= deadline {
                return Err(DbError::Busy(format!(
                    "writer gate still held after {limit:?}; retry after backoff"
                )));
            }
            std::thread::sleep(std::time::Duration::from_micros(200));
        }
    }

    /// Run one or more statements.
    pub fn run(&mut self, src: &str) -> DbResult<Vec<Response>> {
        let stmts = {
            let _span = self.db.span("parse", src);
            let ops = self.db.ops.read();
            parse_program(src, &ops)?
        };
        let mut out = Vec::with_capacity(stmts.len());
        for stmt in stmts {
            out.push(self.execute(&stmt)?);
        }
        Ok(out)
    }

    /// Run statements and return the last one's rows (it must be a
    /// retrieve).
    pub fn query(&mut self, src: &str) -> DbResult<QueryResult> {
        let responses = self.run(src)?;
        match responses.into_iter().next_back() {
            Some(Response::Rows(r)) => Ok(r),
            _ => Err(DbError::Catalog(
                "the last statement was not a retrieve".into(),
            )),
        }
    }

    /// Explain a statement's physical plan without executing it
    /// (EXPLAIN). The source may also carry an explicit
    /// `explain [analyze]` prefix, which takes precedence.
    pub fn explain(&mut self, src: &str) -> DbResult<Explanation> {
        self.explain_inner(src, false)
    }

    /// Execute a statement with per-operator profiling and return the
    /// plan annotated with observed metrics (EXPLAIN ANALYZE). Update
    /// statements are applied — exactly once.
    pub fn explain_analyze(&mut self, src: &str) -> DbResult<Explanation> {
        self.explain_inner(src, true)
    }

    /// Execute a statement — exactly once — and report the metric
    /// activity it caused (`observe <stmt>`). The source may also
    /// carry an explicit `observe` prefix, which is not doubled.
    pub fn observe(&mut self, src: &str) -> DbResult<Observation> {
        let stmts = {
            let ops = self.db.ops.read();
            parse_program(src, &ops)?
        };
        let stmt = stmts
            .into_iter()
            .next_back()
            .ok_or_else(|| DbError::Catalog("nothing to observe".into()))?;
        let stmt = match stmt {
            s @ Stmt::Observe { .. } => s,
            other => Stmt::Observe {
                stmt: Box::new(other),
            },
        };
        match self.execute(&stmt)? {
            Response::Observed(o) => Ok(o),
            _ => Err(DbError::Catalog("statement produced no observation".into())),
        }
    }

    fn explain_inner(&mut self, src: &str, analyze: bool) -> DbResult<Explanation> {
        let stmts = {
            let ops = self.db.ops.read();
            parse_program(src, &ops)?
        };
        let stmt = stmts
            .into_iter()
            .next_back()
            .ok_or_else(|| DbError::Catalog("nothing to explain".into()))?;
        let (analyze, inner) = match stmt {
            Stmt::Explain { analyze: a, stmt } => (analyze || a, *stmt),
            other => (analyze, other),
        };
        match self.execute(&Stmt::Explain {
            analyze,
            stmt: Box::new(inner),
        })? {
            Response::Explained(e) => Ok(e),
            _ => Err(DbError::Catalog("statement produced no explanation".into())),
        }
    }

    /// Execute a single parsed statement. Plain retrieves run under a
    /// shared catalog lock (concurrent readers proceed in parallel);
    /// everything else takes the exclusive lock.
    pub fn execute(&mut self, stmt: &Stmt) -> DbResult<Response> {
        let db = self.db.clone();
        self.info.bump_statements();
        if db.metrics.is_none() && db.tracer.is_none() {
            // Fully uninstrumented build: not even a clock read.
            return self.execute_inner(&db, stmt);
        }
        // Render the statement only when a tracer will keep it.
        let _span = db
            .tracer
            .as_ref()
            .map(|t| t.start("statement", stmt.to_string()));
        let t0 = std::time::Instant::now();
        let result = self.execute_inner(&db, stmt);
        let elapsed_ns = t0.elapsed().as_nanos() as u64;
        if let Some(m) = &db.metrics {
            m.statements.inc();
            m.statements_by_verb[verb_index(stmt)].inc();
            if result.is_err() {
                m.errors.inc();
            }
            m.statement_ns.observe(elapsed_ns);
        }
        if let Some(log) = &db.slow_log {
            if log.is_slow(elapsed_ns) {
                if let Some(m) = &db.metrics {
                    m.slow_queries.inc();
                }
                let profile = result.as_ref().ok().and_then(response_profile);
                log.record(
                    stmt.to_string(),
                    elapsed_ns,
                    self.info.id,
                    verb_of(stmt),
                    profile,
                );
            }
        }
        result
    }

    /// The statement path proper, shared by the instrumented wrapper
    /// above. Every statement executes through a transaction:
    ///
    /// * `begin` / `commit` / `abort` manage the session's explicit
    ///   transaction (which holds the storage writer slot for its whole
    ///   lifetime);
    /// * inside an explicit transaction, DML runs at the transaction's
    ///   own timestamp (DDL is refused — see [`txn_permits`]);
    /// * an autocommit read runs against a fresh [`exodus_storage::Snapshot`]
    ///   under the shared catalog lock (it never blocks, and never sees
    ///   another session's uncommitted writes);
    /// * any other autocommit statement runs inside an implicit
    ///   single-statement write transaction. The writer slot is always
    ///   acquired *before* the catalog lock (lock order: writer gate,
    ///   then catalog), so a session blocked on the gate never holds a
    ///   lock a reader needs.
    fn execute_inner(&mut self, db: &Arc<Database>, stmt: &Stmt) -> DbResult<Response> {
        // A replica session routes through the read-only path before
        // any write machinery: even `begin` would append to the local
        // log and diverge it from the primary's stream.
        if let Some(state) = db.replica.clone() {
            return self.replica_execute(db, &state, stmt);
        }
        match stmt {
            Stmt::Begin => return self.begin_txn(db),
            Stmt::Commit => return self.commit_txn(db),
            Stmt::Abort => return self.abort_txn(db),
            // A range declaration is pure session state: it reads no
            // data and writes no pages, so it needs neither the writer
            // gate nor a snapshot. Routing it through the implicit
            // write transaction would make a reader session's
            // `range of R is C; retrieve ...` block on a concurrent
            // writer — exactly what snapshot reads promise not to do.
            Stmt::RangeOf {
                var,
                universal,
                path,
            } => {
                self.ranges.declare(var, *universal, path.clone());
                return Ok(Response::Done(format!("range of {var} declared")));
            }
            _ => {}
        }
        if let Some(txn) = &self.txn {
            if let Err(m) = txn_permits(stmt) {
                return Err(DbError::Txn(m));
            }
            let snap = txn.ts();
            if let Stmt::Retrieve { into: None, .. } = stmt {
                let cat = db.catalog.read();
                return dml::retrieve_at(
                    db,
                    &cat,
                    &self.ranges,
                    &self.user,
                    stmt,
                    &Params::default(),
                    db.profiling(),
                    snap,
                )
                .map(Response::Rows);
            }
            let mut cat = db.catalog.write();
            let response = exec_statement(
                db,
                &mut cat,
                &mut self.ranges,
                &self.user,
                stmt,
                &Params::default(),
                0,
            );
            if response.is_ok() && stmt_bumps_epoch(stmt) {
                db.catalog_epoch
                    .fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            }
            return response;
        }
        if let Stmt::Retrieve { into: None, .. } = stmt {
            // Autocommit read: a registered snapshot (not `TS_LATEST`) so
            // a concurrent writer's in-flight rows stay invisible and
            // vacuum cannot reclaim versions this statement still needs.
            let snap = db.store.storage().begin_snapshot();
            let cat = db.catalog.read();
            return dml::retrieve_at(
                db,
                &cat,
                &self.ranges,
                &self.user,
                stmt,
                &Params::default(),
                db.profiling(),
                snap.ts(),
            )
            .map(Response::Rows);
        }
        // Implicit single-statement transaction: acquire the writer slot
        // first, then the catalog lock. Commit happens even when the
        // statement itself failed — partial page effects of a failed
        // statement were already applied and logged, exactly as the old
        // per-statement unit behaved — so error semantics are unchanged.
        let txn = self.acquire_write_txn(db)?;
        let mut cat = db.catalog.write();
        let response = exec_statement(
            db,
            &mut cat,
            &mut self.ranges,
            &self.user,
            stmt,
            &Params::default(),
            0,
        );
        // The epoch bumps while the exclusive catalog lock is still
        // held, so a replication poll can never capture the new
        // catalog under the old epoch.
        if response.is_ok() && stmt_bumps_epoch(stmt) {
            db.catalog_epoch
                .fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        }
        drop(cat);
        let _commit_span = db.span("wal_commit", "");
        txn.commit()?;
        let _ = db.store.vacuum();
        response
    }

    /// The replica statement path: `range of` is pure session state,
    /// `retrieve` (without `into`) runs against a snapshot pinned at
    /// the replay horizon under the replay latch, and everything else
    /// — anything that would append to the local log — is refused with
    /// the stable [`DbError::ReadOnly`] code. When the replica trails
    /// the primary past its configured lag bound, reads are shed with
    /// the retryable [`DbError::Lagging`] code instead.
    fn replica_execute(
        &mut self,
        db: &Arc<Database>,
        state: &Arc<crate::replication::ReplicaState>,
        stmt: &Stmt,
    ) -> DbResult<Response> {
        match stmt {
            Stmt::RangeOf {
                var,
                universal,
                path,
            } => {
                self.ranges.declare(var, *universal, path.clone());
                Ok(Response::Done(format!("range of {var} declared")))
            }
            Stmt::Retrieve { into: None, .. } => {
                if let Some(max) = state.max_lag {
                    let lag = state.lag.load(std::sync::atomic::Ordering::Relaxed);
                    if lag > max {
                        return Err(DbError::Lagging(format!(
                            "replay lag is {lag} records, over the configured bound of \
                             {max}; retry after the replica catches up, or read the \
                             primary"
                        )));
                    }
                }
                // Shared replay latch: the pump applies batches under
                // the exclusive side, so this read never observes a
                // half-applied page mutation.
                let _replay = state.latch.read();
                let snap = db.store.storage().begin_snapshot();
                let cat = db.catalog.read();
                dml::retrieve_at(
                    db,
                    &cat,
                    &self.ranges,
                    &self.user,
                    stmt,
                    &Params::default(),
                    db.profiling(),
                    snap.ts(),
                )
                .map(Response::Rows)
            }
            Stmt::Retrieve { into: Some(_), .. } => Err(DbError::ReadOnly(
                "retrieve ... into creates a named object; run it on the primary".into(),
            )),
            Stmt::Begin | Stmt::Commit | Stmt::Abort => Err(DbError::ReadOnly(
                "explicit transactions are not available on a read-only replica; run \
                 them on the primary"
                    .into(),
            )),
            other => Err(DbError::ReadOnly(format!(
                "a read-only replica can only serve retrieve queries; route '{}' to \
                 the primary",
                verb_of(other)
            ))),
        }
    }

    /// `begin`: open the session's explicit transaction.
    fn begin_txn(&mut self, db: &Arc<Database>) -> DbResult<Response> {
        if self.txn.is_some() {
            return Err(DbError::Txn(
                "a transaction is already open; commit or abort it first".into(),
            ));
        }
        let _span = db.span("txn", "begin");
        let txn = self.acquire_write_txn(db)?;
        self.txn = Some(txn);
        Ok(Response::Done("transaction started".into()))
    }

    /// `commit`: durably publish the open transaction's writes.
    fn commit_txn(&mut self, db: &Arc<Database>) -> DbResult<Response> {
        let txn = self
            .txn
            .take()
            .ok_or_else(|| DbError::Txn("no transaction is open; use begin first".into()))?;
        let _span = db.span("txn", "commit");
        let ts = txn.commit()?;
        let _ = db.store.vacuum();
        Ok(Response::Done(format!("committed at timestamp {ts}")))
    }

    /// `abort`: discard the open transaction's writes.
    fn abort_txn(&mut self, db: &Arc<Database>) -> DbResult<Response> {
        let txn = self
            .txn
            .take()
            .ok_or_else(|| DbError::Txn("no transaction is open; use begin first".into()))?;
        let _span = db.span("txn", "abort");
        txn.abort()?;
        let _ = db.store.vacuum();
        Ok(Response::Done("transaction aborted".into()))
    }
}

/// Whether a statement may run inside an explicit transaction. Only DML
/// — `retrieve` (including `into`), `append`, `delete`, `replace` — plus
/// `range of` declarations and `explain`/`observe` wrappers of those
/// qualify. DDL, grants and procedure execution are refused: they mutate
/// in-memory catalog state the page-level rollback cannot restore.
fn txn_permits(stmt: &Stmt) -> Result<(), String> {
    match stmt {
        Stmt::Retrieve { .. }
        | Stmt::Append { .. }
        | Stmt::Delete { .. }
        | Stmt::Replace { .. }
        | Stmt::RangeOf { .. } => Ok(()),
        Stmt::Explain { stmt, .. } | Stmt::Observe { stmt } => txn_permits(stmt),
        other => Err(format!(
            "'{}' cannot run inside an explicit transaction; only retrieve, append, \
             delete, replace and range declarations can (commit or abort first)",
            verb_of(other)
        )),
    }
}

/// Whether a successful statement mutated catalog state a replica
/// needs re-shipped (DDL, grants, analyze, `retrieve into`...). DML
/// never does: B+-tree roots are fixed pages, so inserts and splits
/// never move anything the catalog points at.
fn stmt_bumps_epoch(stmt: &Stmt) -> bool {
    match stmt {
        Stmt::Retrieve { into, .. } => into.is_some(),
        Stmt::Append { .. }
        | Stmt::Delete { .. }
        | Stmt::Replace { .. }
        | Stmt::RangeOf { .. }
        | Stmt::Begin
        | Stmt::Commit
        | Stmt::Abort => false,
        Stmt::Explain { stmt, .. } | Stmt::Observe { stmt } => stmt_bumps_epoch(stmt),
        _ => true,
    }
}

/// The leading verb of a statement, for error messages.
fn verb_of(stmt: &Stmt) -> &'static str {
    match stmt {
        Stmt::DefineType { .. } => "define type",
        Stmt::Create { .. } => "create",
        Stmt::Destroy { .. } => "destroy",
        Stmt::DropType { .. } => "drop type",
        Stmt::DefineFunction { .. } => "define function",
        Stmt::DefineProcedure { .. } => "define procedure",
        Stmt::DropFunction { .. } => "drop function",
        Stmt::DropProcedure { .. } => "drop procedure",
        Stmt::DefineIndex { .. } => "define index",
        Stmt::RangeOf { .. } => "range of",
        Stmt::Retrieve { .. } => "retrieve",
        Stmt::Append { .. } => "append",
        Stmt::Delete { .. } => "delete",
        Stmt::Replace { .. } => "replace",
        Stmt::Execute { .. } => "execute",
        Stmt::Grant { .. } => "grant",
        Stmt::Revoke { .. } => "revoke",
        Stmt::CreateUser { .. } => "create user",
        Stmt::CreateGroup { .. } => "create group",
        Stmt::AddToGroup { .. } => "add user",
        Stmt::Explain { .. } => "explain",
        Stmt::Observe { .. } => "observe",
        Stmt::Analyze { .. } => "analyze",
        Stmt::Begin => "begin",
        Stmt::Commit => "commit",
        Stmt::Abort => "abort",
    }
}

/// The execution profile carried by a response, looking through
/// `observe` wrappers (for the slow-query log).
fn response_profile(r: &Response) -> Option<QueryProfile> {
    match r {
        Response::Rows(rows) => rows.profile.clone(),
        Response::Explained(e) => e.profile.clone(),
        Response::Observed(o) => response_profile(&o.response),
        Response::Done(_) => None,
    }
}

/// The statement interpreter (shared by sessions and procedure bodies).
pub(crate) fn exec_statement(
    db: &Database,
    cat: &mut Catalog,
    ranges: &mut RangeEnv,
    user: &str,
    stmt: &Stmt,
    params: &Params,
    depth: u32,
) -> DbResult<Response> {
    match stmt {
        Stmt::DefineType {
            name,
            inherits,
            attrs,
        } => define_type(cat, name, inherits, attrs),
        Stmt::Create { qty, name, key } => create_named(db, cat, qty, name, key.as_deref()),
        Stmt::Destroy { name } => destroy_named(db, cat, user, name),
        Stmt::DropType { name } => drop_type(cat, name),
        Stmt::DefineFunction {
            name,
            params: ps,
            returns,
            body,
        } => define_function(db, cat, name, ps, returns, body),
        Stmt::DefineProcedure {
            name,
            params: ps,
            body,
        } => define_procedure(cat, name, ps, body),
        Stmt::DropFunction { name } => {
            let before = cat.functions.len();
            cat.functions.retain(|f| f.name != *name);
            if cat.functions.len() == before {
                return Err(DbError::Catalog(format!("no function '{name}'")));
            }
            Ok(Response::Done(format!("function {name} dropped")))
        }
        Stmt::DropProcedure { name } => {
            if cat.procedures.remove(name).is_none() {
                return Err(DbError::Catalog(format!("no procedure '{name}'")));
            }
            Ok(Response::Done(format!("procedure {name} dropped")))
        }
        Stmt::DefineIndex {
            name,
            collection,
            attr,
            unique,
        } => define_index(db, cat, name, collection, attr, *unique),
        Stmt::RangeOf {
            var,
            universal,
            path,
        } => {
            ranges.declare(var, *universal, path.clone());
            Ok(Response::Done(format!("range of {var} declared")))
        }
        Stmt::Retrieve { into: None, .. } => {
            dml::retrieve(db, cat, ranges, user, stmt, params, db.profiling()).map(Response::Rows)
        }
        Stmt::Retrieve { into: Some(_), .. } => {
            dml::retrieve_into(db, cat, ranges, user, stmt, params, db.profiling())
                .map(Response::Rows)
        }
        Stmt::Append { .. } => dml::append(db, cat, ranges, user, stmt, params, None),
        Stmt::Delete { .. } => dml::delete(db, cat, ranges, user, stmt, params, None),
        Stmt::Replace { .. } => dml::replace(db, cat, ranges, user, stmt, params, None),
        Stmt::Execute { .. } => {
            dml::execute_procedure(db, cat, ranges, user, stmt, params, depth, None)
        }
        Stmt::Explain { analyze, stmt } => {
            explain_stmt(db, cat, ranges, user, stmt, params, depth, *analyze)
        }
        Stmt::Observe { stmt } => observe_stmt(db, cat, ranges, user, stmt, params, depth),
        Stmt::Analyze { collection } => analyze_collection(db, cat, collection),
        Stmt::Grant {
            privileges,
            object,
            grantees,
        } => {
            require_admin(user, "grant")?;
            for g in grantees {
                if !cat.auth.grantee_exists(g) {
                    return Err(DbError::Catalog(format!("no user or group '{g}'")));
                }
                cat.auth.grant(object, g, privileges);
            }
            Ok(Response::Done(format!("granted on {object}")))
        }
        Stmt::Revoke {
            privileges,
            object,
            grantees,
        } => {
            require_admin(user, "revoke")?;
            for g in grantees {
                cat.auth.revoke(object, g, privileges);
            }
            Ok(Response::Done(format!("revoked on {object}")))
        }
        Stmt::CreateUser { name } => {
            require_admin(user, "create user")?;
            if !cat.auth.create_user(name) {
                return Err(DbError::Catalog(format!("user '{name}' already exists")));
            }
            Ok(Response::Done(format!("user {name} created")))
        }
        Stmt::CreateGroup { name } => {
            require_admin(user, "create group")?;
            if !cat.auth.create_group(name) {
                return Err(DbError::Catalog(format!("group '{name}' already exists")));
            }
            Ok(Response::Done(format!("group {name} created")))
        }
        Stmt::AddToGroup { user: u, group } => {
            require_admin(user, "add user to group")?;
            if !cat.auth.user_exists(u) {
                return Err(DbError::Catalog(format!("no user '{u}'")));
            }
            if !cat.auth.add_to_group(u, group) {
                return Err(DbError::Catalog(format!("no group '{group}'")));
            }
            Ok(Response::Done(format!("{u} added to {group}")))
        }
        // Transaction control is handled by the session before dispatch
        // (`Session::execute_inner`); reaching here means the verb was
        // nested somewhere it cannot work (a procedure body, `observe`,
        // `explain`).
        Stmt::Begin | Stmt::Commit | Stmt::Abort => Err(DbError::Txn(format!(
            "'{}' is a session-level statement; it cannot run inside \
             procedures, explain, or observe",
            verb_of(stmt)
        ))),
    }
}

/// `explain [analyze] <stmt>`: render the physical plan; under
/// `analyze`, also execute the statement — exactly once — with
/// per-operator profiling. Plan-only explain of an update statement
/// mutates nothing (the bindings query is planned but never run).
#[allow(clippy::too_many_arguments)]
fn explain_stmt(
    db: &Database,
    cat: &mut Catalog,
    ranges: &mut RangeEnv,
    user: &str,
    inner: &Stmt,
    params: &Params,
    depth: u32,
    analyze: bool,
) -> DbResult<Response> {
    let explanation = match inner {
        Stmt::Retrieve { into, .. } => {
            let plan = dml::explain_plan(db, cat, ranges, user, inner, params)?;
            let profile = if analyze {
                let result = if into.is_some() {
                    dml::retrieve_into(db, cat, ranges, user, inner, params, true)?
                } else {
                    dml::retrieve(db, cat, ranges, user, inner, params, true)?
                };
                result.profile
            } else {
                None
            };
            Explanation { plan, profile }
        }
        Stmt::Append { .. } | Stmt::Delete { .. } | Stmt::Replace { .. } | Stmt::Execute { .. } => {
            let mut sink = dml::ExplainSink {
                analyze,
                ..Default::default()
            };
            match inner {
                Stmt::Append { .. } => {
                    dml::append(db, cat, ranges, user, inner, params, Some(&mut sink))?;
                }
                Stmt::Delete { .. } => {
                    dml::delete(db, cat, ranges, user, inner, params, Some(&mut sink))?;
                }
                Stmt::Replace { .. } => {
                    dml::replace(db, cat, ranges, user, inner, params, Some(&mut sink))?;
                }
                Stmt::Execute { .. } => {
                    dml::execute_procedure(
                        db,
                        cat,
                        ranges,
                        user,
                        inner,
                        params,
                        depth,
                        Some(&mut sink),
                    )?;
                }
                _ => unreachable!("matched above"),
            }
            Explanation {
                plan: sink
                    .plan
                    .ok_or_else(|| DbError::Catalog("statement produced no plan".into()))?,
                profile: sink.profile,
            }
        }
        _ => {
            return Err(DbError::Catalog(
                "explain supports retrieve and update statements".into(),
            ))
        }
    };
    Ok(Response::Explained(explanation))
}

/// `observe <stmt>`: execute the statement — exactly once — and report
/// the metric activity it caused: wall-clock time plus every counter
/// delta (zeros dropped). With metrics disabled the statement still
/// runs; the counter list is just empty.
fn observe_stmt(
    db: &Database,
    cat: &mut Catalog,
    ranges: &mut RangeEnv,
    user: &str,
    inner: &Stmt,
    params: &Params,
    depth: u32,
) -> DbResult<Response> {
    let before = db.metrics_snapshot();
    let t0 = std::time::Instant::now();
    let response = exec_statement(db, cat, ranges, user, inner, params, depth)?;
    let elapsed_ns = t0.elapsed().as_nanos() as u64;
    let counters = match (before, db.metrics_snapshot()) {
        (Some(b), Some(a)) => MetricsSnapshot::counter_deltas(&b, &a),
        _ => Vec::new(),
    };
    Ok(Response::Observed(Observation {
        response: Box::new(response),
        elapsed_ns,
        counters,
    }))
}

fn require_admin(user: &str, action: &str) -> DbResult<()> {
    if user == ADMIN {
        Ok(())
    } else {
        Err(DbError::Auth(format!("only {ADMIN} may {action}")))
    }
}

// ---------------------------------------------------------------------------
// DDL
// ---------------------------------------------------------------------------

fn lower_attrs(cat: &Catalog, attrs: &[AttrDecl]) -> DbResult<Vec<Attribute>> {
    attrs
        .iter()
        .map(|a| {
            Ok(Attribute {
                name: a.name.clone(),
                qty: lower_qual(&a.qty, &cat.types, &cat.adts)?,
            })
        })
        .collect()
}

fn define_type(
    cat: &mut Catalog,
    name: &str,
    inherits: &[InheritClause],
    attrs: &[AttrDecl],
) -> DbResult<Response> {
    if cat.named.contains_key(name) || cat.adts.contains(name) {
        return Err(DbError::Catalog(format!(
            "the name '{name}' is already in use"
        )));
    }
    let specs: Vec<InheritSpec> = inherits
        .iter()
        .map(|c| InheritSpec {
            base: c.base.clone(),
            renames: c.renames.clone(),
        })
        .collect();
    // Forward-declare so self-referential attribute types resolve
    // (`define type Person (kids: { own ref Person })`).
    let id = cat.types.declare(name)?;
    let lowered = match lower_attrs(cat, attrs) {
        Ok(l) => l,
        Err(e) => {
            let _ = cat.types.undefine(name);
            return Err(e);
        }
    };
    if let Err(e) = cat.types.complete(id, specs, lowered) {
        let _ = cat.types.undefine(name);
        return Err(e.into());
    }
    Ok(Response::Done(format!("type {name} defined")))
}

/// Default (all-null / empty) value for a freshly created instance.
pub(crate) fn default_value(qty: &QualType, types: &extra_model::TypeRegistry) -> Value {
    if qty.mode != Ownership::Own {
        return Value::Null;
    }
    match &qty.ty {
        Type::Set(_) => Value::empty_set(),
        Type::Array(Some(n), _) => Value::null_array(*n),
        Type::Array(None, _) => Value::Array(Vec::new()),
        Type::Schema(tid) => Value::Tuple(
            types
                .get(*tid)
                .attributes()
                .map(|a| default_value(&a.qty, types))
                .collect::<Vec<_>>(),
        ),
        Type::Tuple(attrs) => {
            Value::Tuple(attrs.iter().map(|a| default_value(&a.qty, types)).collect())
        }
        _ => Value::Null,
    }
}

fn create_named(
    db: &Database,
    cat: &mut Catalog,
    qty: &excess_lang::QualTypeExpr,
    name: &str,
    key: Option<&str>,
) -> DbResult<Response> {
    if cat.named.contains_key(name) || cat.types.contains(name) || cat.adts.contains(name) {
        return Err(DbError::Catalog(format!(
            "the name '{name}' is already in use"
        )));
    }
    let lowered = lower_qual(qty, &cat.types, &cat.adts)?;
    if lowered.mode != Ownership::Own {
        return Err(DbError::Catalog(
            "top-level named instances are owned by the database; drop the ref qualifier".into(),
        ));
    }
    let (oid, is_collection) = match &lowered.ty {
        Type::Set(elem) => (db.store.create_collection(elem)?, true),
        _ => {
            let v = default_value(&lowered, &cat.types);
            (db.store.create_object(&cat.types, &lowered, v)?, false)
        }
    };
    cat.named.insert(
        name.to_string(),
        NamedObject {
            name: name.to_string(),
            oid,
            qty: lowered,
            is_collection,
        },
    );
    // A key (paper: associated with set instances) is a unique index.
    if let Some(attr) = key {
        if !is_collection {
            cat.named.remove(name);
            return Err(DbError::Catalog(
                "keys are associated with set instances; this is not a set".into(),
            ));
        }
        if let Err(e) = define_index(db, cat, &format!("{name}_key"), name, attr, true) {
            cat.named.remove(name);
            return Err(e);
        }
    }
    Ok(Response::Done(format!("{name} created")))
}

fn destroy_named(db: &Database, cat: &mut Catalog, user: &str, name: &str) -> DbResult<Response> {
    let obj = cat
        .named
        .get(name)
        .cloned()
        .ok_or_else(|| DbError::Catalog(format!("no named object '{name}'")))?;
    if !cat.auth.allowed(user, name, Privilege::Delete) {
        return Err(DbError::Auth(format!("{user} may not destroy {name}")));
    }
    db.store.delete_object(&cat.types, obj.oid)?;
    cat.named.remove(name);
    cat.indexes.retain(|i| i.collection != name);
    Ok(Response::Done(format!("{name} destroyed")))
}

fn drop_type(cat: &mut Catalog, name: &str) -> DbResult<Response> {
    let id = cat.types.lookup(name)?;
    if cat.types.has_dependents(id) {
        return Err(DbError::Catalog(format!(
            "type '{name}' has dependent types; drop them first"
        )));
    }
    fn mentions(ty: &Type, id: extra_model::TypeId) -> bool {
        match ty {
            Type::Schema(t) => *t == id,
            Type::Set(e) | Type::Array(_, e) => mentions(&e.ty, id),
            Type::Tuple(attrs) => attrs.iter().any(|a| mentions(&a.qty.ty, id)),
            _ => false,
        }
    }
    if let Some(obj) = cat.named.values().find(|o| mentions(&o.qty.ty, id)) {
        return Err(DbError::Catalog(format!(
            "type '{name}' is used by named instance '{}'",
            obj.name
        )));
    }
    cat.types.undefine(name)?;
    Ok(Response::Done(format!("type {name} dropped")))
}

fn define_function(
    db: &Database,
    cat: &mut Catalog,
    name: &str,
    params: &[Param],
    returns: &excess_lang::QualTypeExpr,
    body: &Stmt,
) -> DbResult<Response> {
    let lowered_params: Vec<(String, QualType)> = params
        .iter()
        .map(|p| Ok((p.name.clone(), lower_qual(&p.qty, &cat.types, &cat.adts)?)))
        .collect::<DbResult<_>>()?;
    let lowered_returns = lower_qual(returns, &cat.types, &cat.adts)?;
    let attached_to = lowered_params.first().and_then(|(_, q)| match q.ty {
        Type::Schema(t) => Some(t),
        _ => None,
    });
    if cat
        .functions
        .iter()
        .any(|f| f.name == name && f.attached_to == attached_to)
    {
        return Err(DbError::Catalog(format!(
            "function '{name}' is already defined for this receiver type"
        )));
    }
    // Validate the body with the parameters in scope. Parameters of
    // schema type are reference-valued at runtime.
    let view = CatalogView {
        cat,
        store: &db.store,
        db: Some(db),
    };
    let mut ctx = SemaCtx::new(&cat.types, &cat.adts, &view);
    for (p, q) in &lowered_params {
        ctx.vars.insert(p.clone(), runtime_param_type(q));
    }
    let env = RangeEnv::default();
    let resolver = Resolver::new(&ctx, &env);
    let checked = resolver.check_retrieve(body)?;
    if checked.output.len() != 1 {
        return Err(DbError::Catalog(
            "a function body must retrieve exactly one target".into(),
        ));
    }
    let def = FunctionDef {
        name: name.to_string(),
        params: lowered_params
            .iter()
            .map(|(p, q)| (p.clone(), runtime_param_type(q)))
            .collect(),
        returns: lowered_returns,
        body: body.clone(),
        attached_to,
    };
    cat.functions.push(def);
    Ok(Response::Done(format!("function {name} defined")))
}

/// A parameter declared with a schema type is passed by reference.
pub(crate) fn runtime_param_type(q: &QualType) -> QualType {
    match (&q.mode, &q.ty) {
        (Ownership::Own, Type::Schema(_)) => QualType::reference(q.ty.clone()),
        _ => q.clone(),
    }
}

fn define_procedure(
    cat: &mut Catalog,
    name: &str,
    params: &[Param],
    body: &[Stmt],
) -> DbResult<Response> {
    if cat.procedures.contains_key(name) {
        return Err(DbError::Catalog(format!(
            "procedure '{name}' already exists"
        )));
    }
    excess_sema::validate_procedure_body(body)?;
    let lowered: Vec<(String, QualType)> = params
        .iter()
        .map(|p| {
            Ok((
                p.name.clone(),
                runtime_param_type(&lower_qual(&p.qty, &cat.types, &cat.adts)?),
            ))
        })
        .collect::<DbResult<_>>()?;
    cat.procedures.insert(
        name.to_string(),
        ProcedureDef {
            name: name.to_string(),
            params: lowered,
            body: body.to_vec(),
        },
    );
    Ok(Response::Done(format!("procedure {name} defined")))
}

fn define_index(
    db: &Database,
    cat: &mut Catalog,
    name: &str,
    collection: &str,
    attr: &str,
    unique: bool,
) -> DbResult<Response> {
    if cat.indexes.iter().any(|i| i.name == name) {
        return Err(DbError::Catalog(format!("index '{name}' already exists")));
    }
    let obj = cat
        .named
        .get(collection)
        .cloned()
        .ok_or_else(|| DbError::Catalog(format!("no collection '{collection}'")))?;
    if !obj.is_collection {
        return Err(DbError::Catalog(format!("'{collection}' is not a set")));
    }
    let elem = db.store.collection_elem(obj.oid)?;
    let view = CatalogView {
        cat,
        store: &db.store,
        db: Some(db),
    };
    let ctx = SemaCtx::new(&cat.types, &cat.adts, &view);
    let attr_qty = ctx.attr_type(&elem, attr)?;
    // The access-method applicability check: orderable attribute types
    // only (for ADTs, the registry's table decides).
    let indexable = match &attr_qty.ty {
        Type::Base(_) => true,
        Type::Adt(id) => cat.adts.indexable(*id),
        _ => false,
    };
    if !indexable {
        return Err(DbError::Catalog(format!(
            "attribute '{attr}' has no ordered key encoding; a B+-tree does not apply"
        )));
    }
    let pos = ctx.attr_pos(&elem, attr)?;
    let tree = BTree::create(db.store.storage().pool())?;
    // Populate from the current members.
    let members: Vec<_> = db
        .store
        .scan_members(obj.oid)?
        .collect::<Result<Vec<_>, _>>()?;
    for (rid, member) in members {
        if let Some(key) = dml::member_attr_key(db, &member, pos, &cat.adts)? {
            tree.insert(db.store.storage().pool(), &key, rid.pack(), unique)
                .map_err(|e| match e {
                    exodus_storage::StorageError::DuplicateKey => DbError::Catalog(format!(
                        "cannot build unique index: duplicate {attr} values in {collection}"
                    )),
                    other => other.into(),
                })?;
        }
    }
    cat.indexes.push(IndexInfo {
        name: name.to_string(),
        collection: collection.to_string(),
        attr: attr.to_string(),
        root: tree.root(),
        unique,
    });
    Ok(Response::Done(format!(
        "index {name} built on {collection}({attr})"
    )))
}

/// Per-attribute accumulator for one `analyze` scan.
struct StatAcc {
    attr: String,
    pos: usize,
    /// Whether the attribute has a numeric key space (histogram-worthy).
    numeric: bool,
    nulls: u64,
    values: Vec<f64>,
    distinct: std::collections::HashSet<u64>,
}

/// A hash key identifying a scalar value for distinct counting.
fn distinct_key(v: &Value) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    match v {
        Value::Int(i) => (0u8, *i).hash(&mut h),
        // Ints and floats share a key space so `1` and `1.0` coincide.
        Value::Float(x) => {
            if x.fract() == 0.0 && x.abs() < i64::MAX as f64 {
                (0u8, *x as i64).hash(&mut h)
            } else {
                (1u8, x.to_bits()).hash(&mut h)
            }
        }
        Value::Bool(b) => (2u8, *b).hash(&mut h),
        Value::Str(s) => (3u8, s).hash(&mut h),
        Value::Enum(ord, _) => (4u8, *ord).hash(&mut h),
        Value::Adt(id, bytes) => (5u8, *id, bytes).hash(&mut h),
        Value::Ref(oid) => (6u8, *oid).hash(&mut h),
        // Structured values are not statted (their accumulators are never
        // built); this arm only backstops schema evolution.
        _ => 7u8.hash(&mut h),
    }
    h.finish()
}

/// `analyze <collection>`: scan the members once and record per-attribute
/// optimizer statistics — row count, distinct-count estimate, equi-depth
/// histogram, null fraction. The serialized payload is persisted through
/// a heap record inside the statement's logged transaction, so a crash
/// either keeps the whole analyze or none of it. Runs as an implicit
/// write transaction (holding the writer gate), so the scan sees exactly
/// the committed state it stamps statistics for.
fn analyze_collection(db: &Database, cat: &mut Catalog, collection: &str) -> DbResult<Response> {
    let obj = cat
        .named
        .get(collection)
        .cloned()
        .ok_or_else(|| DbError::Catalog(format!("no collection '{collection}'")))?;
    if !obj.is_collection {
        return Err(DbError::Catalog(format!("'{collection}' is not a set")));
    }
    let elem = db.store.collection_elem(obj.oid)?;
    // Attributes with a scalar runtime shape get accumulators; owned
    // structured attributes (nested tuples/sets/arrays) are skipped.
    let attr_decls: Vec<(String, QualType)> = match &elem.ty {
        Type::Schema(tid) => cat
            .types
            .get(*tid)
            .attributes()
            .map(|a| (a.name.clone(), a.qty.clone()))
            .collect(),
        Type::Tuple(attrs) => attrs
            .iter()
            .map(|a| (a.name.clone(), a.qty.clone()))
            .collect(),
        _ => Vec::new(),
    };
    let mut accs: Vec<StatAcc> = attr_decls
        .iter()
        .enumerate()
        .filter_map(|(pos, (name, qty))| {
            let scalar =
                qty.mode != Ownership::Own || matches!(qty.ty, Type::Base(_) | Type::Adt(_));
            scalar.then(|| StatAcc {
                attr: name.clone(),
                pos,
                numeric: matches!(&qty.ty, Type::Base(b) if b.is_integer() || b.is_float()),
                nulls: 0,
                values: Vec::new(),
                distinct: std::collections::HashSet::new(),
            })
        })
        .collect();
    let mut scan = db.store.scan_members_batch(obj.oid)?;
    let mut row_count = 0u64;
    loop {
        let batch = scan.next_batch(1024)?;
        if batch.is_empty() {
            break;
        }
        row_count += batch.len() as u64;
        for (_, member) in &batch {
            // Collections of `{own ref T}` hand back references; chase
            // them to the tuple the statistics describe.
            let mut member = member.clone();
            while let Value::Ref(oid) = member {
                member = db.store.value_of(oid)?;
            }
            let fields = match &member {
                Value::Tuple(fs) => fs.as_slice(),
                _ => &[],
            };
            for acc in &mut accs {
                match fields.get(acc.pos) {
                    None | Some(Value::Null) => acc.nulls += 1,
                    Some(v) => {
                        acc.distinct.insert(distinct_key(v));
                        if acc.numeric {
                            match v {
                                Value::Int(i) => acc.values.push(*i as f64),
                                Value::Float(x) => acc.values.push(*x),
                                _ => {}
                            }
                        }
                    }
                }
            }
        }
    }
    let attrs = accs
        .into_iter()
        .map(|mut acc| {
            let n = acc.values.len();
            let bounds = if acc.numeric && n > 0 {
                acc.values
                    .sort_unstable_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
                // Equi-depth boundaries: bounds[i] is the value at rank
                // i·n/B, so each bucket holds an equal share of the rows.
                (0..=HISTOGRAM_BUCKETS)
                    .map(|i| acc.values[(i * (n - 1)) / HISTOGRAM_BUCKETS])
                    .collect()
            } else {
                Vec::new()
            };
            AttrStats {
                attr: acc.attr,
                distinct: acc.distinct.len() as u64,
                null_frac: if row_count == 0 {
                    0.0
                } else {
                    acc.nulls as f64 / row_count as f64
                },
                bounds,
            }
        })
        .collect();
    let stats = CollectionStats { row_count, attrs };

    // Persist the payload inside this statement's logged transaction:
    // the heap pages dirtied here are logged (and fsynced) by the
    // enclosing commit, so recovery replays the analyze atomically.
    let sm = db.store.storage();
    let file = match cat.stats_file {
        Some(f) => f,
        None => {
            let f = sm.create_file()?;
            cat.stats_file = Some(f);
            f
        }
    };
    let bytes = stats.to_bytes();
    let record = match cat.stats.get(collection) {
        Some(entry) => sm.update(file, entry.record, &bytes)?,
        None => sm.insert(file, &bytes)?,
    };
    let n_attrs = stats.attrs.len();
    cat.stats.insert(
        collection.to_string(),
        crate::catalog::StatsEntry { stats, record },
    );
    Ok(Response::Done(format!(
        "analyzed {collection}: {row_count} rows, {n_attrs} attributes"
    )))
}
