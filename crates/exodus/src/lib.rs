//! # exodus-db
//!
//! The EXTRA/EXCESS database: the end-to-end system of "A Data Model and
//! Query Language for EXODUS" (Carey, DeWitt & Vandenberg, SIGMOD 1988).
//!
//! This crate ties the layers together:
//!
//! * the EXODUS-style storage manager (`exodus-storage`),
//! * the EXTRA data model (`extra-model`),
//! * the EXCESS front end, analyzer, optimizer and executor
//!   (`excess-lang` / `excess-sema` / `excess-algebra` / `excess-exec`),
//!
//! and adds what the paper's §4 describes around them: the catalog of
//! named persistent objects, EXCESS **functions** and **procedures**
//! (derived data and generalized IDM-style stored commands), secondary
//! indexes with table-driven applicability, dynamic **ADT registration**
//! (extending the parser's operator table at runtime), and **System R /
//! IDM-style authorization** (users, groups, grants, and data abstraction
//! by granting access only through functions and procedures).
//!
//! # Quickstart
//!
//! ```
//! use exodus_db::Database;
//!
//! let db = Database::in_memory();
//! let mut session = db.session();
//! session.run(r#"
//!     define type Person (name: varchar, age: int4);
//!     create { own ref Person } People;
//!     append to People (name = "ann", age = 30);
//!     append to People (name = "bob", age = 40);
//! "#).unwrap();
//! let result = session.query(
//!     "retrieve (P.name) from P in People where P.age > 35").unwrap();
//! assert_eq!(result.rows.len(), 1);
//! ```

#![deny(rustdoc::broken_intra_doc_links)]
pub mod catalog;
pub mod client;
pub mod database;
pub mod dml;
pub mod error;
mod observe;
pub mod replication;
pub mod sysview;

pub use catalog::{Auth, Catalog, CatalogView};
pub use client::Client;
pub use database::{Database, DatabaseBuilder, Explanation, Observation, Response, Session};
pub use error::{DbError, DbResult, CODE_TABLE};
pub use replication::{Batch, InProcessStream, ReplStream, Replica, ReplicaOptions, Source};
pub use sysview::{SessionInfo, SysCtx, SystemView};

// Re-exports so downstream users need only this crate.
pub use excess_exec as exec;
pub use excess_exec::{BufferDelta, OpProfile, QueryProfile, QueryResult, Row, WorkerStats};
pub use exodus_obs as obs;
pub use exodus_obs::{
    validate_exposition, MetricSample, MetricsSnapshot, SampleValue, SlowQuery, Span, TraceConfig,
};
pub use exodus_storage::{BufferStats, Durability, RecoveryReport};
pub use extra_model::{AdtRegistry, AdtType, Value};
