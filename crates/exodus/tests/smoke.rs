//! End-to-end smoke tests for the database facade.

use exodus_db::{Database, Value};

#[test]
fn quickstart_flow() {
    let db = Database::in_memory();
    let mut s = db.session();
    s.run(
        r#"
        define type Person (name: varchar, age: int4);
        create { own ref Person } People;
        append to People (name = "ann", age = 30);
        append to People (name = "bob", age = 40);
    "#,
    )
    .unwrap();
    let r = s
        .query("retrieve (P.name, P.age) from P in People where P.age > 35")
        .unwrap();
    assert_eq!(r.columns, vec!["name", "age"]);
    assert_eq!(r.rows, vec![vec![Value::str("bob"), Value::Int(40)]]);
}

#[test]
fn session_ranges_persist() {
    let db = Database::in_memory();
    let mut s = db.session();
    s.run(
        r#"
        define type Person (name: varchar, age: int4);
        create { own ref Person } People;
        append to People (name = "ann", age = 30);
        range of P is People
    "#,
    )
    .unwrap();
    let r = s.query("retrieve (P.name)").unwrap();
    assert_eq!(r.rows.len(), 1);
}

#[test]
fn implicit_join_through_ref() {
    let db = Database::in_memory();
    let mut s = db.session();
    s.run(
        r#"
        define type Department (dname: varchar, floor: int4);
        define type Employee (name: varchar, salary: float8, dept: ref Department);
        create { own ref Department } Departments;
        create { own ref Employee } Employees;
        append to Departments (dname = "toy", floor = 2);
        append to Departments (dname = "shoe", floor = 1);
    "#,
    )
    .unwrap();
    // Wire employees to departments.
    s.run(
        r#"
        range of D is Departments;
        append to Employees (name = "ann", salary = 40000.0);
        append to Employees (name = "bob", salary = 50000.0);
        range of E is Employees;
        replace E (dept = D) where E.name = "ann" and D.dname = "toy";
        replace E (dept = D) where E.name = "bob" and D.dname = "shoe"
    "#,
    )
    .unwrap();
    let r = s.query("retrieve (E.name) where E.dept.floor = 2").unwrap();
    assert_eq!(r.rows, vec![vec![Value::str("ann")]]);
}

#[test]
fn delete_and_update() {
    let db = Database::in_memory();
    let mut s = db.session();
    s.run(
        r#"
        define type Person (name: varchar, age: int4);
        create { own ref Person } People;
        append to People (name = "a", age = 10);
        append to People (name = "b", age = 20);
        append to People (name = "c", age = 30);
        range of P is People;
        replace P (age = P.age + 1) where P.age >= 20;
        delete P where P.age > 25
    "#,
    )
    .unwrap();
    let r = s
        .query("retrieve (P.name, P.age) order by P.age asc")
        .unwrap();
    assert_eq!(
        r.rows,
        vec![
            vec![Value::str("a"), Value::Int(10)],
            vec![Value::str("b"), Value::Int(21)],
        ]
    );
}
