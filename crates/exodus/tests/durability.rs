//! The builder's durability surface: file-backed open, recovery reports,
//! statement-level logged units, checkpointing, and the builder's
//! validation rules.

use std::path::PathBuf;

use exodus_db::{Database, Durability, Value};

fn temp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("exodus-db-dur-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

#[test]
fn file_backed_database_reports_clean_recovery() {
    let dir = temp_dir("clean");
    let db = Database::builder()
        .path(dir.join("db.vol"))
        .durability(Durability::Fsync)
        .build()
        .unwrap();
    let report = db.recovery().expect("file-backed open runs recovery");
    assert!(report.was_clean());
    assert_eq!(db.durability(), Durability::Fsync);

    let mut s = db.session();
    s.run(
        r#"
        define type Person (name: varchar, age: int4);
        create { own ref Person } People;
        append to People (name = "ann", age = 30);
    "#,
    )
    .unwrap();
    let r = s.query("retrieve (P.name) from P in People").unwrap();
    assert_eq!(r.rows, vec![vec![Value::str("ann")]]);

    db.checkpoint().unwrap();
    // The WAL directory exists next to the volume and survives checkpoint.
    assert!(dir.join("db.vol.wal").is_dir());
    drop(db);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn durability_none_skips_the_log() {
    let dir = temp_dir("none");
    let db = Database::builder()
        .path(dir.join("db.vol"))
        .durability(Durability::None)
        .build()
        .unwrap();
    assert_eq!(db.durability(), Durability::None);
    let mut s = db.session();
    s.run(
        r#"
        define type P (k: int4);
        create { own P } Ks;
        append to Ks (k = 1);
    "#,
    )
    .unwrap();
    assert!(
        !dir.join("db.vol.wal").exists(),
        "None must not write a log"
    );
    drop(db);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn in_memory_database_has_no_recovery_report() {
    let db = Database::builder().build().unwrap();
    assert!(db.recovery().is_none());
    assert_eq!(db.durability(), Durability::None);
    // Checkpoint on an in-memory database is a harmless flush.
    db.checkpoint().unwrap();
}

#[test]
fn builder_rejects_conflicting_storage_configuration() {
    let err = match Database::builder().durability(Durability::Fsync).build() {
        Err(e) => e,
        Ok(_) => panic!("durability without path must be rejected"),
    };
    assert!(err.to_string().contains("path"), "{err}");

    let dir = temp_dir("conflict");
    let err = match Database::builder()
        .storage(exodus_storage::StorageManager::in_memory(64))
        .path(dir.join("db.vol"))
        .build()
    {
        Err(e) => e,
        Ok(_) => panic!("storage + path must be rejected"),
    };
    assert!(err.to_string().contains("mutually exclusive"), "{err}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn bulk_append_is_logged_as_one_unit() {
    let dir = temp_dir("bulk");
    let db = Database::builder()
        .path(dir.join("db.vol"))
        .durability(Durability::Buffered)
        .build()
        .unwrap();
    db.run("define type P (k: int4); create { own P } Ks;")
        .unwrap();
    let tuples = (0..100)
        .map(|i| Value::Tuple(vec![Value::Int(i)]))
        .collect();
    db.bulk_append("Ks", tuples).unwrap();
    let r = db.query("retrieve (K.k) from K in Ks").unwrap();
    assert_eq!(r.len(), 100);
    drop(db);
    std::fs::remove_dir_all(&dir).unwrap();
}
