//! Statistics-driven planning end to end: `analyze`, the batch join
//! operators it enables, estimate quality, and plan stability.
//!
//! The join rewrites are strictly gated on recorded statistics, so every
//! test first pins the unanalyzed plan shape, then checks what `analyze`
//! changes — and that results never do.

use std::sync::Arc;

use exodus_db::{Database, Value};

/// `n_emps` employees over `n_depts` departments, wired through `ref`
/// department attributes. Deterministic layout: department `i` is on
/// floor `i % 10 + 1` with budget `50_000 + 1_000 i`; employee `i` has
/// level `i % 7 + 1`, salary `20_000 + 800 (i % 100)`, and references
/// department `(31 i) % n_depts`.
fn university(n_depts: usize, n_emps: usize, workers: usize) -> Arc<Database> {
    let db = Database::builder().worker_threads(workers).build().unwrap();
    db.run(
        r#"
        define type Department (dname: varchar, floor: int4, budget: float8);
        define type Employee (name: varchar, level: int4, salary: float8, dept: ref Department);
        create { own ref Department } Departments;
        create { own ref Employee } Employees;
    "#,
    )
    .unwrap();
    let depts: Vec<Value> = (0..n_depts)
        .map(|i| {
            Value::Tuple(vec![
                Value::Str(format!("dept{i:04}")),
                Value::Int((i % 10) as i64 + 1),
                Value::Float(50_000.0 + i as f64 * 1_000.0),
            ])
        })
        .collect();
    let dept_oids = db.bulk_append("Departments", depts).unwrap();
    let emps: Vec<Value> = (0..n_emps)
        .map(|i| {
            Value::Tuple(vec![
                Value::Str(format!("emp{i:06}")),
                Value::Int((i % 7) as i64 + 1),
                Value::Float(20_000.0 + (i % 100) as f64 * 800.0),
                Value::Ref(dept_oids[(i * 31) % dept_oids.len()]),
            ])
        })
        .collect();
    db.bulk_append("Employees", emps).unwrap();
    db
}

/// Rows sorted by debug rendering — join operators may emit matches in a
/// different (deterministic) order than a nested loop.
fn sorted(mut rows: Vec<Vec<Value>>) -> Vec<Vec<Value>> {
    rows.sort_by_key(|r| format!("{r:?}"));
    rows
}

#[test]
fn analyze_reports_and_feeds_cardinality() {
    let db = university(10, 500, 1);
    let mut s = db.session();
    let r = s.run("analyze Employees").unwrap();
    let msg = format!("{:?}", r[0]);
    assert!(msg.contains("500 rows"), "{msg}");
    // Histogram-backed stats are now visible to the planner: an
    // equality estimate on `level` uses the distinct count (7 values),
    // not the fixed 5% selectivity guess (which would say 25 rows).
    let e = s
        .explain_analyze("retrieve (E.name) from E in Employees where E.level = 3")
        .unwrap();
    let profile = e.profile.expect("explain analyze profiles");
    let filter = profile
        .nodes
        .iter()
        .find(|n| n.label.starts_with("Filter"))
        .expect("plan filters on level");
    let est = filter.est_rows.expect("planner annotates estimates");
    assert!(
        (70.0..=72.0).contains(&est),
        "distinct-count estimate (500/7 ≈ 71) expected, got {est}"
    );
}

#[test]
fn path_query_uses_hash_join_after_analyze() {
    let db = university(10, 500, 1);
    let mut s = db.session();
    s.run("range of E is Employees").unwrap();
    let q = "retrieve (E.name, E.dept.dname, E.dept.budget) where E.dept.floor = 2";

    let before = s.explain(q).unwrap().plan;
    assert!(
        !before.contains("HashJoin") && !before.contains("IndexJoin"),
        "unanalyzed plan must keep row-at-a-time dereferences:\n{before}"
    );
    let rows_before = s.query(q).unwrap().rows;
    assert_eq!(rows_before.len(), 50);

    s.run("analyze Departments").unwrap();
    let after = s.explain(q).unwrap().plan;
    assert!(
        after.contains("HashJoin $E__dept over Departments on ref"),
        "analyzed plan must hoist the dereference:\n{after}"
    );
    let rows_after = s.query(q).unwrap().rows;
    assert_eq!(sorted(rows_before), sorted(rows_after));
}

#[test]
fn hash_join_matches_fallback_on_null_and_late_refs() {
    let db = university(10, 400, 1);
    let mut s = db.session();
    // Two employees with a null dept reference.
    s.run(
        r#"
        append to Employees (name = "nodept1", level = 1, salary = 1.0);
        append to Employees (name = "nodept2", level = 2, salary = 2.0);
        range of E is Employees
    "#,
    )
    .unwrap();
    let filter_q = "retrieve (E.name) where E.dept.floor = 2";
    let proj_q = "retrieve (E.name, E.dept.dname, E.dept.floor)";

    let filter_before = s.query(filter_q).unwrap().rows;
    let filter_count = filter_before.len();
    let proj_before = s.query(proj_q).unwrap().rows;
    // Null refs project as nulls and fail the filter.
    assert_eq!(proj_before.len(), 402);
    assert!(proj_before
        .iter()
        .any(|r| r[0] == Value::str("nodept1") && r[1] == Value::Null));

    s.run("analyze Departments").unwrap();
    for q in [filter_q, proj_q] {
        let plan = s.explain(q).unwrap().plan;
        assert!(plan.contains("HashJoin"), "{q}:\n{plan}");
    }
    assert_eq!(
        sorted(filter_before),
        sorted(s.query(filter_q).unwrap().rows)
    );
    assert_eq!(sorted(proj_before), sorted(s.query(proj_q).unwrap().rows));

    // Members appended *after* analyze still join correctly: the build
    // side re-scans per statement, and probe misses fall back to an
    // ordinary dereference.
    s.run(
        r#"
        append to Departments (dname = "late", floor = 2, budget = 1.0);
        range of L is Employees;
        append to Employees (name = "latecomer", level = 1, salary = 3.0)
    "#,
    )
    .unwrap();
    let rows = s.query(filter_q).unwrap().rows;
    assert_eq!(rows.len(), filter_count);
}

#[test]
fn equi_join_selected_by_cost_and_matches_nested_loop() {
    let db = university(40, 600, 1);
    let mut s = db.session();
    let q = "retrieve (E.name, D.dname) from E in Employees, D in Departments \
             where E.level = D.floor and E.salary > 90000.0";

    let before_plan = s.explain(q).unwrap().plan;
    assert!(
        before_plan.contains("NestedLoop") && !before_plan.contains("HashJoin"),
        "unanalyzed two-range join stays a nested loop:\n{before_plan}"
    );
    let before = s.query(q).unwrap().rows;
    assert!(!before.is_empty());

    s.run("analyze Departments; analyze Employees").unwrap();
    let after_plan = s.explain(q).unwrap().plan;
    assert!(
        after_plan.contains("HashJoin") && after_plan.contains("on floor = "),
        "analyzed equi join should build a hash table on floor:\n{after_plan}"
    );
    assert_eq!(sorted(before), sorted(s.query(q).unwrap().rows));
}

#[test]
fn index_join_wins_with_large_indexed_build_side() {
    // 5 000 departments against 20 employees: hashing the whole build
    // side costs ~2|D|, probing the floor index costs |E| log |D| — the
    // cost model must pick the index join.
    let db = university(5_000, 20, 1);
    let mut s = db.session();
    s.run("define index by_floor on Departments (floor)")
        .unwrap();
    let q = "retrieve (E.name, D.budget) from E in Employees, D in Departments \
             where D.floor = E.level";

    let before = s.query(q).unwrap().rows;
    s.run("analyze Departments; analyze Employees").unwrap();
    let plan = s.explain(q).unwrap().plan;
    assert!(
        plan.contains("IndexJoin D over Departments using by_floor on floor = "),
        "large indexed build side should probe the index:\n{plan}"
    );
    assert_eq!(sorted(before), sorted(s.query(q).unwrap().rows));
}

/// Satellite (c): after `analyze`, planner estimates for equality,
/// range, and path-join predicates stay within a bounded factor of the
/// observed row counts.
#[test]
fn estimates_track_actuals_after_analyze() {
    let db = university(10, 2_000, 1);
    let mut s = db.session();
    s.run("analyze Departments; analyze Employees; range of E is Employees")
        .unwrap();
    // (query, actual rows): level is uniform over 7 values, salary over
    // 100 values, and dept floors reach employees via the hoisted join.
    let cases = [
        ("retrieve (E.name) where E.level = 3", 286u64),
        ("retrieve (E.name) where E.salary > 60000.0", 980),
        ("retrieve (E.name) where E.dept.floor = 2", 200),
    ];
    for (q, actual) in cases {
        let e = s.explain_analyze(q).unwrap();
        let profile = e.profile.expect("explain analyze profiles");
        let filter = profile
            .nodes
            .iter()
            .find(|n| n.label.starts_with("Filter"))
            .unwrap_or_else(|| panic!("no Filter node for {q}:\n{}", e.plan));
        assert_eq!(filter.rows_out, actual, "{q} changed its result size");
        let est = filter.est_rows.expect("planner annotates estimates");
        let factor = est / actual as f64;
        assert!(
            (0.5..=2.0).contains(&factor),
            "{q}: estimate {est:.0} vs actual {actual} (factor {factor:.2}) \
             outside [0.5, 2.0]:\n{}",
            e.plan
        );
    }
}

#[test]
fn aggregate_over_plan_hoists_deref_join() {
    let db = university(10, 500, 1);
    let mut s = db.session();
    s.run("range of E is Employees").unwrap();
    let q = "retrieve (total = sum(E.dept.budget over E))";
    let before = s.query(q).unwrap().rows;
    s.run("analyze Departments").unwrap();
    let after = s.query(q).unwrap().rows;
    // Float summation order is preserved: the reference-mode join is
    // 1:1 with the probe input, so the aggregate folds identical values
    // in identical order.
    assert_eq!(before, after);
}

#[test]
fn plans_stable_without_analyze_and_deterministic_across_dop() {
    let queries = [
        "retrieve (E.name, E.dept.dname) where E.dept.floor = 2",
        "retrieve (E.name, D.dname) from E in Employees, D in Departments \
         where E.level = D.floor and E.salary > 90000.0",
        "retrieve (E.name) where E.salary > 60000.0 order by E.name asc",
    ];
    let plans = |workers: usize, analyzed: bool| -> Vec<String> {
        let db = university(10, 500, workers);
        let mut s = db.session();
        s.run("range of E is Employees").unwrap();
        if analyzed {
            s.run("analyze Departments; analyze Employees").unwrap();
        }
        queries.iter().map(|q| s.explain(q).unwrap().plan).collect()
    };

    // Unanalyzed: no batch join operator may appear at any DOP (the
    // statistics gate keeps seed plan shapes byte-identical).
    let u1 = plans(1, false);
    for p in &u1 {
        assert!(
            !p.contains("HashJoin") && !p.contains("IndexJoin"),
            "unanalyzed plan changed shape:\n{p}"
        );
    }
    assert_eq!(u1, plans(4, false), "unanalyzed plans diverge across DOP");
    assert_eq!(u1, plans(1, false), "unanalyzed plans not deterministic");

    // Analyzed: identical statistics must produce identical plans
    // regardless of the session's worker budget (the 500-member
    // collections sit below the parallel cutoff at every DOP).
    let a1 = plans(1, true);
    assert_eq!(a1, plans(4, true), "analyzed plans diverge across DOP");
    assert_eq!(a1, plans(1, true), "analyzed plans not deterministic");
    assert!(a1[0].contains("HashJoin"), "{}", a1[0]);
}

#[test]
fn analyze_survives_restart_at_storage_level() {
    // The catalog is rebuilt per process, but the durable half of
    // `analyze` — the serialized payload in the stats heap — must
    // survive a restart byte-identical (crash-interrupted analyzes are
    // covered by the storage kill-at-every-point harness).
    let dir = std::env::temp_dir().join(format!("exodus-stats-dur-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let (bytes_before, file, record) = {
        let db = Database::builder()
            .path(dir.join("db.vol"))
            .durability(exodus_db::Durability::Fsync)
            .build()
            .unwrap();
        db.run(
            r#"
            define type Department (dname: varchar, floor: int4);
            create { own ref Department } Departments;
            append to Departments (dname = "toy", floor = 2);
            append to Departments (dname = "shoe", floor = 1);
            analyze Departments;
        "#,
        )
        .unwrap();
        let cat = db.read_catalog();
        let entry = cat.stats.get("Departments").expect("stats recorded");
        assert_eq!(entry.stats.row_count, 2);
        (
            entry.stats.to_bytes(),
            cat.stats_file.expect("stats file created"),
            entry.record,
        )
    };
    let db = Database::builder()
        .path(dir.join("db.vol"))
        .durability(exodus_db::Durability::Fsync)
        .build()
        .unwrap();
    let pool = db.store().storage().pool().clone();
    let recovered = exodus_storage::heap::HeapFile::open(file)
        .scan(pool)
        .map(|r| r.expect("stats heap scans after recovery"))
        .find(|(rid, _)| *rid == record)
        .map(|(_, bytes)| bytes)
        .expect("stats record survived restart");
    assert_eq!(recovered, bytes_before);
    let decoded =
        excess_sema::CollectionStats::from_bytes(&recovered).expect("recovered payload decodes");
    assert_eq!(decoded.row_count, 2);
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
}
