//! Multi-statement transactions: snapshot isolation, atomic visibility,
//! and abort-leaves-no-trace, exercised at DOP 1 and DOP 4.
//!
//! The MVCC contract under test:
//!
//! * a statement's snapshot is fixed when the statement starts, so a
//!   reader opened before a writer's commit never sees the writer's
//!   rows — and never blocks on the writer either;
//! * a transaction's own statements read at its write timestamp and so
//!   see its uncommitted writes;
//! * `commit` makes all of a transaction's writes visible atomically to
//!   snapshots taken afterwards;
//! * `abort` leaves no trace.

use std::sync::Arc;

use exodus_db::{Database, DbError, Session, Value};

/// Enough members to clear the executor's parallelism threshold (4096),
/// so DOP-4 fixtures genuinely scan in parallel.
const SCALE: usize = 6000;

const COUNT_Q: &str = "range of B is Box; retrieve (n = count(B.n over B))";

fn box_db(scale: usize, workers: usize) -> Arc<Database> {
    let db = Database::builder().worker_threads(workers).build().unwrap();
    db.run("define type Item (tag: varchar, n: int4); create { own ref Item } Box")
        .unwrap();
    if scale > 0 {
        let members = (0..scale)
            .map(|i| Value::Tuple(vec![Value::str("base"), Value::Int(i as i64)]))
            .collect();
        db.bulk_append("Box", members).unwrap();
    }
    db
}

fn count(session: &mut Session) -> i64 {
    let result = session.query(COUNT_Q).unwrap();
    match result.rows[0][0] {
        Value::Int(n) => n,
        ref v => panic!("count returned {v:?}"),
    }
}

/// Uncommitted writes are visible to their own transaction, invisible
/// to everyone else, and reading them never blocks: a concurrent
/// autocommit reader completes — seeing the old state — while the
/// writer's transaction is still open.
#[test]
fn open_txn_invisible_to_others_visible_to_itself() {
    for workers in [1, 4] {
        let db = box_db(SCALE, workers);
        let base = SCALE as i64;
        let mut writer = db.session();
        writer.run("begin").unwrap();
        for i in 0..3 {
            writer
                .run(&format!(r#"append to Box (tag = "open", n = {i})"#))
                .unwrap();
        }
        // Read-your-writes inside the transaction.
        assert_eq!(count(&mut writer), base + 3, "DOP {workers}");
        // Another session on this thread snapshots the committed state.
        assert_eq!(count(&mut db.session()), base, "DOP {workers}");
        // A reader on another thread finishes while the writer holds
        // its transaction open: join() proves it never blocked.
        let observed = std::thread::scope(|s| {
            let db = db.clone();
            s.spawn(move || count(&mut db.session())).join().unwrap()
        });
        assert_eq!(observed, base, "DOP {workers}");

        writer.run("commit").unwrap();
        // Visible to snapshots taken after the commit — atomically.
        assert_eq!(count(&mut db.session()), base + 3, "DOP {workers}");
        let tags = db
            .query(r#"retrieve (B.n) from B in Box where B.tag = "open""#)
            .unwrap();
        assert_eq!(tags.rows.len(), 3, "DOP {workers}");
    }
}

/// `begin; ...writes...; abort` leaves no trace: appended rows vanish,
/// deleted rows come back, replaced fields revert.
#[test]
fn abort_leaves_no_trace() {
    for workers in [1, 4] {
        let db = box_db(SCALE, workers);
        let base = SCALE as i64;
        let mut session = db.session();
        session.run("range of B is Box").unwrap();
        session.run("begin").unwrap();
        session
            .run(r#"append to Box (tag = "doomed", n = -1)"#)
            .unwrap();
        session.run("delete B where B.n = 0").unwrap();
        session
            .run(r#"replace B (tag = "mangled") where B.n = 1"#)
            .unwrap();
        assert_eq!(
            count(&mut session),
            base,
            "DOP {workers}: +1 append -1 delete"
        );
        session.run("abort").unwrap();

        assert_eq!(count(&mut session), base, "DOP {workers}");
        for (q, rows) in [
            (r#"retrieve (B.n) from B in Box where B.tag = "doomed""#, 0),
            (r#"retrieve (B.n) from B in Box where B.tag = "mangled""#, 0),
            (r#"retrieve (B.tag) from B in Box where B.n = 0"#, 1),
        ] {
            assert_eq!(db.query(q).unwrap().rows.len(), rows, "DOP {workers}: {q}");
        }
        // The session is reusable after abort.
        session
            .run(r#"begin; append to Box (tag = "kept", n = 7000); commit"#)
            .unwrap();
        assert_eq!(count(&mut session), base + 1, "DOP {workers}");
    }
}

/// Concurrent stress: one writer commits batches of 5 rows (and aborts
/// batches of 3 in between) while readers continuously count. Every
/// count a reader ever sees is the baseline plus a whole number of
/// committed batches — never a partial batch, never an aborted row.
#[test]
fn readers_see_only_whole_committed_batches() {
    const COMMITS: usize = 8;
    const BATCH: i64 = 5;
    for workers in [1, 4] {
        let db = box_db(SCALE, workers);
        let base = SCALE as i64;
        std::thread::scope(|s| {
            let writer_db = db.clone();
            s.spawn(move || {
                let mut session = writer_db.session();
                for round in 0..COMMITS {
                    session.run("begin").unwrap();
                    for i in 0..BATCH {
                        session
                            .run(&format!(r#"append to Box (tag = "c{round}", n = {i})"#))
                            .unwrap();
                    }
                    session.run("commit").unwrap();
                    session
                        .run(r#"begin; append to Box (tag = "x", n = 0); append to Box (tag = "x", n = 1); append to Box (tag = "x", n = 2); abort"#)
                        .unwrap();
                }
            });
            for _ in 0..2 {
                let reader_db = db.clone();
                s.spawn(move || {
                    let mut session = reader_db.session();
                    let mut last = base;
                    for _ in 0..30 {
                        let n = count(&mut session);
                        assert!(
                            (n - base) % BATCH == 0,
                            "DOP {workers}: reader saw a torn commit or aborted rows: {n}"
                        );
                        assert!(n >= last, "DOP {workers}: count went backwards");
                        last = n;
                    }
                });
            }
        });
        let mut session = db.session();
        assert_eq!(
            count(&mut session),
            base + COMMITS as i64 * BATCH,
            "DOP {workers}"
        );
        assert_eq!(
            db.query(r#"retrieve (B.n) from B in Box where B.tag = "x""#)
                .unwrap()
                .rows
                .len(),
            0,
            "DOP {workers}: aborted rows survived"
        );
    }
}

/// Transaction-control misuse is a clear `DbError::Txn`, and DDL is
/// refused inside an explicit transaction.
#[test]
fn transaction_misuse_is_refused() {
    let db = box_db(0, 1);
    let mut session = db.session();
    for (src, needle) in [
        ("commit", "no transaction is open"),
        ("abort", "no transaction is open"),
    ] {
        let err = session.run(src).expect_err(src);
        let DbError::Txn(m) = err else {
            panic!("'{src}' raised {err}, expected a transaction error");
        };
        assert!(m.contains(needle), "'{src}': {m}");
    }
    session.run("begin").unwrap();
    let err = session.run("begin").expect_err("nested begin");
    assert!(
        matches!(&err, DbError::Txn(m) if m.contains("already open")),
        "nested begin raised {err}"
    );
    let err = session
        .run("define type Sneaky (n: int4)")
        .expect_err("DDL inside txn");
    assert!(
        matches!(err, DbError::Txn(_)),
        "DDL inside txn raised {err}"
    );
    // The transaction survives the refusals and can still commit work.
    session
        .run(r#"append to Box (tag = "ok", n = 1); commit"#)
        .unwrap();
    assert_eq!(count(&mut session), 1);
}
