//! Concurrency tests: parallel query execution must be deterministic,
//! and mixed query/DML sessions on a shared database must behave as if
//! serialized.

use std::sync::Arc;

use exodus_db::{Database, Value};

/// Enough members to clear the executor's parallelism threshold (4096).
const SCALE: usize = 6000;

/// Build the fixture with the worker-thread count fixed at construction
/// time. The load is deterministic, so fixtures built at different DOPs
/// hold identical data.
fn people_db_with(scale: usize, workers: usize) -> Arc<Database> {
    let db = Database::builder().worker_threads(workers).build().unwrap();
    db.run(
        r#"
        define type Person (name: varchar, age: int4, salary: float8);
        create { own ref Person } People;
        create { own ref Person } Log;
    "#,
    )
    .unwrap();
    let members = (0..scale)
        .map(|i| {
            Value::Tuple(vec![
                Value::str(&format!("p{i}")),
                Value::Int((i % 97) as i64),
                // Irregular float values so summation order matters.
                Value::Float(1.0 + (i as f64) * 0.001 + ((i % 13) as f64) * 0.07),
            ])
        })
        .collect();
    db.bulk_append("People", members).unwrap();
    db
}

const QUERIES: &[&str] = &[
    "range of P is People; retrieve (total = sum(P.salary over P))",
    "range of P is People; retrieve (n = count(P.name over P where P.age > 48))",
    "retrieve (P.name, P.salary) from P in People where P.age = 13 and P.salary > 3.0",
];

/// Satellite: morsel-parallel execution returns results identical to
/// DOP=1 — same rows, same order, bit-identical floats (the exchange
/// merges worker output in serial scan order).
#[test]
fn parallel_results_match_serial() {
    let serial_db = people_db_with(SCALE, 1);
    let parallel_db = people_db_with(SCALE, 4);
    for q in QUERIES {
        let serial = serial_db.query(q).unwrap();
        let parallel = parallel_db.query(q).unwrap();
        assert_eq!(serial.columns, parallel.columns, "{q}");
        assert_eq!(serial.rows, parallel.rows, "{q}");
        // Belt and braces for any future order-relaxing exchange: the
        // multisets must agree too.
        let mut a: Vec<String> = serial.rows.iter().map(|r| format!("{r:?}")).collect();
        let mut b: Vec<String> = parallel.rows.iter().map(|r| format!("{r:?}")).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b, "{q}");
    }
}

/// Satellite: N sessions hammering one `Arc<Database>` with a mix of
/// queries and DML produce exactly the results a serial run would.
#[test]
fn concurrent_sessions_mixed_queries_and_dml() {
    let db = people_db_with(SCALE, 4);
    // Serial baseline before any concurrency.
    let baseline: Vec<_> = QUERIES.iter().map(|q| db.query(q).unwrap()).collect();

    const WRITERS: usize = 2;
    const READERS: usize = 3;
    const APPENDS_PER_WRITER: usize = 25;
    const READS_PER_READER: usize = 8;

    std::thread::scope(|s| {
        for w in 0..WRITERS {
            let db = db.clone();
            s.spawn(move || {
                let mut session = db.session();
                for i in 0..APPENDS_PER_WRITER {
                    session
                        .run(&format!(
                            r#"append to Log (name = "w{w}-{i}", age = {i}, salary = 1.5)"#
                        ))
                        .unwrap();
                }
            });
        }
        for _ in 0..READERS {
            let db = db.clone();
            let baseline = &baseline;
            s.spawn(move || {
                let mut session = db.session();
                for i in 0..READS_PER_READER {
                    let q = QUERIES[i % QUERIES.len()];
                    let got = session.query(q).unwrap();
                    // `People` is never mutated, so every interleaving
                    // must see the baseline result exactly.
                    let want = &baseline[i % QUERIES.len()];
                    assert_eq!(want.rows, got.rows, "{q}");
                }
            });
        }
    });

    let n = db
        .query("range of L is Log; retrieve (n = count(L.name over L))")
        .unwrap();
    assert_eq!(
        n.rows,
        vec![vec![Value::Int((WRITERS * APPENDS_PER_WRITER) as i64)]]
    );
}
